"""Ablations of the modelling decisions DESIGN.md calls out.

Not a paper artefact per se, but each row quantifies one reconstruction
choice:

* ``rotating_precision`` — the paper's "stalled and moved to the end of
  the queue" rule, reflected in the queue-block equation;
* protocol variants — voluntary replacement / repeated invalidations
  (prose features of Figure 2 whose exact status in the analysed model is
  ambiguous in the source scan).
"""

from conftest import report

from repro import verify
from repro.protocols import abstract_mi_mesh


def test_rotation_rule_ablation(benchmark):
    def measure():
        rows = []
        for rotating_precision in (True, False):
            network = abstract_mi_mesh(2, 2, queue_size=3).network
            result = verify(network, rotating_precision=rotating_precision)
            rows.append(
                f"rotating_precision={rotating_precision}: "
                f"{result.verdict.value}"
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "ablation: stall-to-end rotation rule at the proof threshold (q=3)",
        rows + ["-> the rotation-aware rule is a strict refinement "
                "(removes candidates); for the default protocol the "
                "invariants already exclude its target configurations"],
    )


def test_protocol_variant_ablation(benchmark):
    def measure():
        rows = []
        variants = [
            ("paper-minimal (default)", {}),
            ("voluntary replacement", {"voluntary_replacement": True}),
            ("repeat invalidations", {"repeat_inv": True}),
            (
                "voluntary, no stale-drop",
                {"voluntary_replacement": True, "drop_stale_invs": False},
            ),
        ]
        for label, kwargs in variants:
            for q in (2, 3):
                result = verify(
                    abstract_mi_mesh(2, 2, queue_size=q, **kwargs).network
                )
                rows.append(f"{label}, q={q}: {result.verdict.value}")
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("ablation: abstract-protocol variants (2x2)", rows)
    # the headline deadlock at q=2 must exist in every variant
    assert all("q=2: deadlock-candidate" in r for r in rows if "q=2" in r)
