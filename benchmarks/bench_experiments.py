"""E10 — cross-network sharding: experiment grids vs the sequential outer loop.

The paper's Figure-4 experiment iterates *whole networks* (mesh sizes ×
directory positions); PR 2/3 parallelised queries within one network, this
benchmark measures sharding the outer loop itself
(:class:`repro.core.Experiment`): every grid point ships as a picklable
``ScenarioSpec`` to a scenario worker, which builds its own encoding and
runs its minimal-queue-size search locally.

Three records, one acceptance gate each:

* **grid sharding** — the 2×2 / 2×3 / 3×3 directory-position grid answered
  by the inline ``jobs=1`` scheduler (the sequential outer loop) and by
  ``jobs=4`` scenario workers.  Verdicts must be byte-identical
  (``ExperimentResult.verdict_bytes``) on every machine; the ≥1.5×
  wall-clock gate only fires with ≥4 CPUs (as in ``bench_parallel.py`` —
  a 1-core container cannot show a wall win and pretending otherwise
  would make the benchmark flaky instead of informative).
* **resume** — the sharded result is checkpointed to JSON and the grid is
  re-run against it: zero scenarios may be rebuilt.
* **lazy invariants ablation** — the same grid with
  ``invariants="lazy"`` (batched strengthening: invariants generated only
  when a candidate survives plain block/idle) must be verdict-identical
  to eager mode, with the per-scenario on/off record preserved.

Results land in ``BENCH_experiments.json`` at the repository root.  Run
standalone (``python benchmarks/bench_experiments.py [--jobs 4] [--smoke]``).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from conftest import report

from repro.core import (
    Experiment,
    ScenarioSpec,
    sha_bytes,
    shutdown_scenario_executors,
)
from repro.fabrics import MeshTopology

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_experiments.json"

GRID_SPEEDUP_TARGET = 1.5  # acceptance: >= 1.5x with 4 workers on >= 4 cores


def build_grid(smoke: bool, invariants: str = "eager") -> Experiment:
    """Mesh sizes × directory positions, one search scenario per point."""
    meshes = [(2, 2), (2, 3)] if smoke else [(2, 2), (2, 3), (3, 3)]
    scenarios = []
    for width, height in meshes:
        for position in MeshTopology(width, height).probe_positions():
            scenarios.append(
                ScenarioSpec(
                    builder="abstract_mi_mesh",
                    kwargs={
                        "width": width,
                        "height": height,
                        "directory_node": position,
                    },
                    mode="search",
                    invariants=invariants,
                    label=f"{width}x{height} dir {position}",
                )
            )
    return Experiment("fig4-grid" + ("-smoke" if smoke else ""), scenarios)


def bench_grid_sharding(jobs: int, smoke: bool) -> tuple[dict, "ExperimentResult"]:
    experiment = build_grid(smoke)

    start = time.perf_counter()
    sequential = experiment.run(jobs=1)
    seq_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = experiment.run(jobs=jobs)
    par_s = time.perf_counter() - start

    seq_bytes, par_bytes = sequential.verdict_bytes(), sharded.verdict_bytes()
    assert seq_bytes == par_bytes, "sharded grid verdicts diverged"
    return {
        "scenarios": len(experiment),
        "grid": [s.label for s in sequential.scenarios],
        "minimal_sizes": [s.minimal_size for s in sequential.scenarios],
        "jobs": jobs,
        "sequential_s": round(seq_s, 3),
        "sharded_s": round(par_s, 3),
        "speedup": round(seq_s / par_s, 2),
        "verdicts_byte_identical": True,
        "verdict_sha": sha_bytes(seq_bytes),
    }, sharded


def bench_resume(jobs: int, smoke: bool, prior) -> dict:
    experiment = build_grid(smoke)
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as handle:
        checkpoint = handle.name
    try:
        prior.save(checkpoint)
        start = time.perf_counter()
        resumed = experiment.run(jobs=jobs, resume=checkpoint)
        resumed_s = time.perf_counter() - start
        assert resumed.computed == 0, (
            f"resume rebuilt {resumed.computed} completed scenarios"
        )
        assert resumed.reused == len(experiment)
        assert resumed.verdict_bytes() == prior.verdict_bytes()
    finally:
        os.unlink(checkpoint)
    return {
        "scenarios": len(experiment),
        "rebuilt": resumed.computed,
        "reused": resumed.reused,
        "resumed_s": round(resumed_s, 3),
    }


def bench_lazy_ablation(jobs: int, smoke: bool, eager) -> dict:
    lazy_grid = build_grid(smoke, invariants="lazy")
    start = time.perf_counter()
    lazy = lazy_grid.run(jobs=jobs)
    lazy_s = time.perf_counter() - start
    # Verdict payloads embed the scenario key (which names the invariant
    # mode), so compare the semantic content: minima and probe maps.
    eager_verdicts = [(s.minimal_size, s.probes) for s in eager.scenarios]
    lazy_verdicts = [(s.minimal_size, s.probes) for s in lazy.scenarios]
    assert eager_verdicts == lazy_verdicts, (
        "lazy invariant strengthening changed verdicts"
    )
    return {
        "jobs": jobs,
        "lazy_s": round(lazy_s, 3),
        "verdicts_match_eager": True,
        "per_scenario": [
            {
                "label": s.label,
                "invariants_used": s.invariants_used,
                "lazy_escalations": s.lazy_escalations,
            }
            for s in lazy.scenarios
        ],
    }


def run_benchmarks(jobs: int = 4, smoke: bool = False) -> dict:
    cpus = os.cpu_count() or 1
    grid, sharded = bench_grid_sharding(jobs, smoke)
    results = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": cpus,
        "smoke": smoke,
        "speedup_asserted": cpus >= 4 and jobs >= 4,
        "grid_sharding": grid,
        "resume": bench_resume(jobs, smoke, sharded),
        "lazy_invariants": bench_lazy_ablation(jobs, smoke, sharded),
    }
    shutdown_scenario_executors()
    return results


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    grid = results["grid_sharding"]
    rows = [
        f"grid ({grid['scenarios']} scenarios): sequential "
        f"{grid['sequential_s']}s vs sharded {grid['sharded_s']}s "
        f"({grid['speedup']}x, jobs={grid['jobs']})",
        f"resume: {results['resume']['rebuilt']} rebuilt / "
        f"{results['resume']['reused']} reused in "
        f"{results['resume']['resumed_s']}s",
        f"lazy invariants: verdict-identical, "
        f"{sum(p['lazy_escalations'] for p in results['lazy_invariants']['per_scenario'])}"
        " escalations",
        f"cpus={results['cpu_count']}, "
        f"speedup asserted: {results['speedup_asserted']}",
    ]
    report(
        "E10: experiment grid sharding vs sequential outer loop "
        "(BENCH_experiments.json)",
        rows,
    )


def check_acceptance(results: dict) -> None:
    """Verdict identity and zero-rebuild resume always; wall-clock targets
    only where achievable (as in ``bench_parallel.py``)."""
    grid = results["grid_sharding"]
    assert grid["verdicts_byte_identical"]
    assert results["resume"]["rebuilt"] == 0
    assert results["lazy_invariants"]["verdicts_match_eager"]
    if results["speedup_asserted"]:
        assert grid["speedup"] >= GRID_SPEEDUP_TARGET, (
            f"grid sharding speedup {grid['speedup']}x with "
            f"{grid['jobs']} workers is below the "
            f"{GRID_SPEEDUP_TARGET}x acceptance target"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="scenario worker count (default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid (2x2 + 2x3) for CI containers")
    args = parser.parse_args()
    results = run_benchmarks(jobs=args.jobs, smoke=args.smoke)
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
