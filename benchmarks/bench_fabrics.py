"""Topology × protocol grid: minima and wrap-deadlock records.

The generalized fabric API (``Topology`` + the generic router builder)
makes the experiment grid two-dimensional: every protocol family runs on
every fabric shape.  This benchmark pins that surface down with three
records:

* **protocol grid** — minimal deadlock-free queue sizes for
  ``{mesh 2x2, torus 2x2, ring 4} × {abstract MI, MSI}``, answered by the
  sequential scheduler and by sharded scenario workers.  Verdicts must be
  byte-identical (``ExperimentResult.verdict_bytes``) — the sha is gated
  against the committed baseline on every runner.
* **wrap deadlock** — the dateline ablation: torus / ring traffic fabrics
  *without* escape VCs must produce a deadlock witness (the wrap links
  close the channel-dependence cycle), and the same fabrics *with* the
  dateline scheme must verify deadlock-free.
* **expected minima** — the measured minima are asserted exactly
  (abstract MI: 3 on all three fabrics; MSI: 4 on all three), so a
  protocol or fabric regression fails the run itself, not only the sha
  comparison.

Results land in ``BENCH_fabrics.json`` at the repository root.  Run
standalone (``python benchmarks/bench_fabrics.py [--jobs 2] [--smoke]``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from conftest import report

from repro import Verdict, verify
from repro.core import (
    Experiment,
    ScenarioSpec,
    sha_bytes,
    shutdown_scenario_executors,
)
from repro.fabrics import traffic_ring, traffic_torus

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_fabrics.json"

# fabric label -> (builder, kwargs, expected minimum by protocol family)
GRID = [
    ("mesh 2x2", "abstract_mi_mesh", {"width": 2, "height": 2}, 3),
    ("torus 2x2", "abstract_mi_torus", {"width": 2, "height": 2}, 3),
    ("ring 4", "abstract_mi_ring", {"n_nodes": 4}, 3),
    ("mesh 2x2", "msi_mesh", {"width": 2, "height": 2}, 4),
    ("torus 2x2", "msi_torus", {"width": 2, "height": 2}, 4),
    ("ring 4", "msi_ring", {"n_nodes": 4}, 4),
]


def build_grid(smoke: bool) -> tuple[Experiment, list[int]]:
    scenarios, expected = [], []
    for fabric, builder, kwargs, minimum in GRID:
        family = "MSI" if builder.startswith("msi") else "MI"
        scenarios.append(
            ScenarioSpec(
                builder=builder,
                kwargs=kwargs,
                mode="search",
                max_size=8,
                label=f"{family} on {fabric}",
            )
        )
        expected.append(minimum)
    return Experiment("fabric-grid" + ("-smoke" if smoke else ""), scenarios), expected


def bench_protocol_grid(jobs: int, smoke: bool) -> dict:
    experiment, expected = build_grid(smoke)

    start = time.perf_counter()
    sequential = experiment.run(jobs=1)
    seq_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = experiment.run(jobs=jobs)
    par_s = time.perf_counter() - start

    seq_bytes, par_bytes = sequential.verdict_bytes(), sharded.verdict_bytes()
    assert seq_bytes == par_bytes, "sharded fabric-grid verdicts diverged"
    minima = [s.minimal_size for s in sequential.scenarios]
    assert minima == expected, (
        f"fabric-grid minima drifted: measured {minima}, expected {expected}"
    )
    return {
        "scenarios": len(experiment),
        "grid": [s.label for s in sequential.scenarios],
        "minimal_sizes": minima,
        "jobs": jobs,
        "sequential_s": round(seq_s, 3),
        "sharded_s": round(par_s, 3),
        "verdicts_byte_identical": True,
        "verdict_sha": sha_bytes(seq_bytes),
    }


def bench_wrap_deadlock() -> dict:
    """The dateline ablation on fabric-only traffic networks."""
    record = {}
    for label, build in (
        ("ring 4", lambda escape: traffic_ring(4, queue_size=3, escape_vcs=escape)),
        (
            "torus 4x2",
            lambda escape: traffic_torus(4, 2, queue_size=2, escape_vcs=escape),
        ),
    ):
        start = time.perf_counter()
        exposed = verify(build(False))
        protected = verify(build(True))
        elapsed = time.perf_counter() - start
        assert exposed.verdict is Verdict.DEADLOCK_CANDIDATE, (
            f"{label} without escape VCs must expose the wrap cycle"
        )
        assert exposed.witness is not None, f"{label} lost its wrap witness"
        assert protected.verdict is Verdict.DEADLOCK_FREE, (
            f"{label} with the dateline scheme must be deadlock-free"
        )
        record[label] = {
            "no_escape_verdict": exposed.verdict.value,
            "witness_extracted": True,
            "escape_verdict": protected.verdict.value,
            "elapsed_s": round(elapsed, 3),
        }
    record["verdicts_wrap_ablation"] = True
    return record


def run_benchmarks(jobs: int = 2, smoke: bool = False) -> dict:
    results = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "protocol_grid": bench_protocol_grid(jobs, smoke),
        "wrap_deadlock": bench_wrap_deadlock(),
    }
    shutdown_scenario_executors()
    return results


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    grid = results["protocol_grid"]
    rows = [
        f"{label}: minimal queue size {minimum}"
        for label, minimum in zip(grid["grid"], grid["minimal_sizes"])
    ]
    rows.append(
        f"grid: sequential {grid['sequential_s']}s vs sharded "
        f"{grid['sharded_s']}s (jobs={grid['jobs']}, byte-identical verdicts)"
    )
    for label in ("ring 4", "torus 4x2"):
        wrap = results["wrap_deadlock"][label]
        rows.append(
            f"{label} traffic: no-escape {wrap['no_escape_verdict']} "
            f"(witness extracted) / dateline {wrap['escape_verdict']}"
        )
    report(
        "topology x protocol grid: minima + wrap-deadlock ablation "
        "(BENCH_fabrics.json)",
        rows,
    )


def check_acceptance(results: dict) -> None:
    assert results["protocol_grid"]["verdicts_byte_identical"]
    assert results["wrap_deadlock"]["verdicts_wrap_ablation"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="scenario worker count (default 2)")
    parser.add_argument("--smoke", action="store_true",
                        help="record the smoke flag for the CI baseline gate")
    args = parser.parse_args()
    results = run_benchmarks(jobs=args.jobs, smoke=args.smoke)
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
