"""E3 — Figure 3: the cross-layer deadlock on the 2×2 mesh.

Regenerates: queue size 2 ⇒ deadlock (confirmed reachable by explicit
state search), queue size 3 ⇒ proved deadlock-free.
"""

from conftest import report

from repro import verify
from repro.core import enumerate_witnesses
from repro.mc import Explorer
from repro.protocols import abstract_mi_mesh


def test_deadlock_at_queue_size_2(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    result = benchmark.pedantic(
        lambda: verify(inst.network), rounds=1, iterations=1
    )
    assert not result.deadlock_free
    report(
        "E3: 2x2 abstract MI, queue size 2 (paper: deadlock, Figure 3)",
        [f"verdict = {result.verdict.value}",
         *(result.witness.pretty().splitlines() if result.witness else [])],
    )


def test_witness_confirmation(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    explorer = Explorer(inst.network)

    def confirm():
        for witness in enumerate_witnesses(inst.network, limit=12):
            confirmation = explorer.confirm_witness(
                witness.automaton_states, witness.queue_contents,
                max_states=400_000,
            )
            if confirmation.found_deadlock:
                return witness, confirmation
        raise AssertionError("no witness confirmed")

    witness, confirmation = benchmark.pedantic(confirm, rounds=1, iterations=1)
    report(
        "E3: reachability confirmation (paper used UPPAAL)",
        [f"states explored = {confirmation.states_explored}",
         f"trace length = {len(confirmation.trace)}",
         *witness.pretty().splitlines()],
    )


def test_free_at_queue_size_3(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=3)
    result = benchmark.pedantic(
        lambda: verify(inst.network), rounds=1, iterations=1
    )
    assert result.deadlock_free
    report(
        "E3: 2x2 abstract MI, queue size 3 (paper: deadlock-free)",
        [f"verdict = {result.verdict.value}",
         f"invariants = {result.stats['invariant_count']}"],
    )
