"""E4 — Figure 4: minimal queue sizes vs mesh size and directory position.

Regenerates the Figure-4 grid for 2×2 and 3×3 meshes (the paper's 4×4 and
6×6 scenarios behind the ``ADVOCAT_BIG`` environment variable — several
minutes in pure Python; they run with ``invariants="partial"`` so each
deep boundary search encodes only the ranked invariant rows it needs).
Each mesh's directory-position row is declared as an experiment grid
(:class:`repro.core.Experiment`) and answered by the deterministic
``jobs=1`` scheduler, so the reported numbers are exactly what the sharded
drivers (``examples/queue_sizing.py --jobs N``,
``benchmarks/bench_experiments.py``) must reproduce byte-for-byte.

Shape expectations: minimal size grows with mesh size; in this
reproduction's single-ejection-queue router the directory position does
not change the minimum (the paper's per-direction input queues make it
row-dependent instead — see EXPERIMENTS.md for the comparison).
"""

import os

from conftest import report

from repro.core import Experiment, ScenarioSpec
from repro.fabrics import MeshTopology


def _sweep(n: int, invariants: str = "eager") -> dict[tuple[int, int], int]:
    experiment = Experiment(
        f"fig4-{n}x{n}" + ("" if invariants == "eager" else f"-{invariants}"),
        [
            ScenarioSpec(
                builder="abstract_mi_mesh",
                kwargs={"width": n, "height": n, "directory_node": pos},
                mode="search",
                invariants=invariants,
            )
            for pos in MeshTopology(n, n).probe_positions()
        ],
    )
    result = experiment.run(jobs=1)
    return {
        pos: scenario.minimal_size
        for pos, scenario in zip(MeshTopology(n, n).probe_positions(), result.scenarios)
    }


def test_fig4_2x2(benchmark):
    sizes = benchmark.pedantic(lambda: _sweep(2), rounds=1, iterations=1)
    report(
        "E4/Figure 4: 2x2 minimal queue sizes per directory position",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
    assert sizes[(0, 0)] == 3


def test_fig4_3x3(benchmark):
    sizes = benchmark.pedantic(lambda: _sweep(3), rounds=1, iterations=1)
    report(
        "E4/Figure 4: 3x3 minimal queue sizes per directory position "
        "(paper 4x4: 15 centre / 23 edge; shape: grows with mesh size)",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
    assert all(size > 3 for size in sizes.values()), (
        "3x3 minima must exceed the 2x2 minimum"
    )


def test_fig4_4x4(benchmark):
    if not os.environ.get("ADVOCAT_BIG"):
        import pytest

        pytest.skip("set ADVOCAT_BIG=1 for the 4x4 sweep")
    sizes = benchmark.pedantic(
        lambda: _sweep(4, invariants="partial"), rounds=1, iterations=1
    )
    report(
        "E4/Figure 4: 4x4 minimal queue sizes (partial invariants)",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
    assert all(size > 8 for size in sizes.values()), (
        "4x4 minima must exceed the 3x3 minimum"
    )


def test_fig4_6x6(benchmark):
    if not os.environ.get("ADVOCAT_BIG"):
        import pytest

        pytest.skip("set ADVOCAT_BIG=1 for the 6x6 sweep")
    sizes = benchmark.pedantic(
        lambda: _sweep(6, invariants="partial"), rounds=1, iterations=1
    )
    report(
        "E4/Figure 4: 6x6 minimal queue sizes "
        "(paper: 29 per-VC / 58 without; partial invariants)",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
    assert all(size > 15 for size in sizes.values()), (
        "6x6 minima must exceed the 4x4 minimum"
    )
