"""E4 — Figure 4: minimal queue sizes vs mesh size and directory position.

Regenerates the Figure-4 grid for 2×2 and 3×3 meshes (4×4 behind the
``ADVOCAT_BIG`` environment variable — several minutes in pure Python).

Shape expectations: minimal size grows with mesh size; in this
reproduction's single-ejection-queue router the directory position does
not change the minimum (the paper's per-direction input queues make it
row-dependent instead — see EXPERIMENTS.md for the comparison).
"""

import os

from conftest import report

from repro.core import minimal_queue_size
from repro.protocols import abstract_mi_mesh


def _sweep(n: int) -> dict[tuple[int, int], int]:
    sizes = {}
    for y in range((n + 1) // 2):
        for x in range(y, (n + 1) // 2):
            sizing = minimal_queue_size(
                lambda q, p=(x, y): abstract_mi_mesh(
                    n, n, queue_size=q, directory_node=p
                ).network
            )
            sizes[(x, y)] = sizing.minimal_size
    return sizes


def test_fig4_2x2(benchmark):
    sizes = benchmark.pedantic(lambda: _sweep(2), rounds=1, iterations=1)
    report(
        "E4/Figure 4: 2x2 minimal queue sizes per directory position",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
    assert sizes[(0, 0)] == 3


def test_fig4_3x3(benchmark):
    sizes = benchmark.pedantic(lambda: _sweep(3), rounds=1, iterations=1)
    report(
        "E4/Figure 4: 3x3 minimal queue sizes per directory position "
        "(paper 4x4: 15 centre / 23 edge; shape: grows with mesh size)",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
    assert all(size > 3 for size in sizes.values()), (
        "3x3 minima must exceed the 2x2 minimum"
    )


def test_fig4_4x4(benchmark):
    if not os.environ.get("ADVOCAT_BIG"):
        import pytest

        pytest.skip("set ADVOCAT_BIG=1 for the 4x4 sweep")
    sizes = benchmark.pedantic(lambda: _sweep(4), rounds=1, iterations=1)
    report(
        "E4/Figure 4: 4x4 minimal queue sizes",
        [f"directory {pos}: {size}" for pos, size in sorted(sizes.items())],
    )
