"""E9 — the bus-abstraction baseline.

Regenerates the paper's premise: both protocols are deadlock-free when the
fabric is abstracted into synchronous handshaking (the paper proved this
with UPPAAL); the deadlocks of E3/E8 are therefore genuinely cross-layer.
"""

from conftest import report

from repro.mc import check_handshake_composition
from repro.protocols.abstract_mi import abstract_mi_ether
from repro.protocols.mi_gem5 import mi_ether


def test_abstract_mi_handshake(benchmark):
    result = benchmark(
        lambda: check_handshake_composition(abstract_mi_ether(3, 3))
    )
    assert result.deadlock_free
    report(
        "E9: abstract MI 3x3 under synchronous handshaking",
        [f"deadlock-free, {result.states_explored} product states"],
    )


def test_full_mi_handshake(benchmark):
    result = benchmark(lambda: check_handshake_composition(mi_ether(2, 2)))
    assert result.deadlock_free
    report(
        "E9: full MI 2x2 under synchronous handshaking",
        [f"deadlock-free, {result.states_explored} product states"],
    )
