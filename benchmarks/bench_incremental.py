"""E7 — incremental session vs from-scratch solving.

Measures the payoff of the assumption-based :class:`VerificationSession`
on three workloads (and records the encoding-flattening cost for the
term-construction fast path):

* **query fan-out** — every per-channel deadlock query of a 2×2 MI mesh,
  answered by one session vs a fresh encoding + solver per query;
* **Figure-4 sweep** — ``minimal_queue_size`` with the shared parametric
  session vs one :func:`verify` per probed size;
* **witness enumeration** — blocking-clause enumeration inside one
  session vs the seed behavior of re-encoding per witness.

Results land in ``BENCH_incremental.json`` at the repository root so the
performance trajectory is recorded across PRs.  Run standalone
(``python benchmarks/bench_incremental.py``) or via pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import report

from repro.core import (
    VarPool,
    VerificationSession,
    derive_colors,
    encode_deadlock,
    minimal_queue_size,
)
from repro.protocols import abstract_mi_mesh
from repro.smt import Result, Solver, conj, eq, neg
from repro.util import Stopwatch

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"


def _scratch_case_queries(network):
    """Seed-style baseline: fresh encoding + solver per per-channel query."""
    verdicts = []
    probe_colors = derive_colors(network)
    n_cases = len(
        encode_deadlock(network, probe_colors, VarPool()).cases
    )
    for index in range(n_cases):
        colors = derive_colors(network)
        pool = VarPool()
        encoding = encode_deadlock(network, colors, pool)
        solver = Solver()
        for term in encoding.definitions:
            solver.add(term)
        for term in encoding.domain:
            solver.add(term)
        solver.add(encoding.cases[index].term)
        verdicts.append(solver.check() == Result.UNSAT)
    return verdicts


def _session_case_queries(network):
    session = VerificationSession(network, parametric_queues=False)
    return [
        session.verify_case(case).deadlock_free
        for case in session.encoding.cases
    ]


def _scratch_enumerate(network, limit):
    """Seed behavior: every ``check`` re-encoded the growing formula."""
    colors = derive_colors(network)
    pool = VarPool()
    encoding = encode_deadlock(network, colors, pool)
    blocked = []
    witnesses = 0
    while witnesses < limit:
        solver = Solver()
        for term in encoding.definitions:
            solver.add(term)
        for term in encoding.domain:
            solver.add(term)
        solver.add(encoding.assertion)
        for clause in blocked:
            solver.add(clause)
        if solver.check() != Result.SAT:
            break
        model = solver.model()
        witnesses += 1
        shape = []
        for automaton in network.automata():
            for state in automaton.states:
                var = pool.state(automaton, state)
                shape.append(eq(var, model[var]))
        for queue in network.queues():
            for color in colors.of(network.channel_of(queue.i)):
                var = pool.occupancy(queue, color)
                shape.append(eq(var, model[var]))
        blocked.append(neg(conj(*shape)))
    return witnesses


def _timed(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


def run_benchmarks() -> dict:
    results: dict = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S")}

    # 1. Per-channel query fan-out -------------------------------------
    network = abstract_mi_mesh(2, 2, queue_size=3).network
    session_verdicts, session_s = _timed(_session_case_queries, network)
    scratch_verdicts, scratch_s = _timed(_scratch_case_queries, network)
    assert session_verdicts == scratch_verdicts, "fan-out verdict mismatch"
    results["query_fanout_2x2"] = {
        "queries": len(session_verdicts),
        "session_s": round(session_s, 3),
        "scratch_s": round(scratch_s, 3),
        "speedup": round(scratch_s / session_s, 2),
    }

    # 2. Figure-4 queue-size sweep -------------------------------------
    def build(size):
        return abstract_mi_mesh(2, 2, queue_size=size).network

    inc, inc_s = _timed(minimal_queue_size, build)
    scr, scr_s = _timed(
        lambda b: minimal_queue_size(b, incremental=False), build
    )
    assert inc.minimal_size == scr.minimal_size
    assert inc.probes == scr.probes
    results["fig4_sweep_2x2"] = {
        "minimal_size": inc.minimal_size,
        "probes": len(inc.probes),
        "session_s": round(inc_s, 3),
        "scratch_s": round(scr_s, 3),
        "speedup": round(scr_s / inc_s, 2),
    }

    # 3. Witness enumeration -------------------------------------------
    limit = 12
    enum_network = abstract_mi_mesh(2, 2, queue_size=2).network

    def session_enumerate():
        session = VerificationSession(enum_network, parametric_queues=False)
        return len(list(session.enumerate_witnesses(limit=limit)))

    session_count, senum_s = _timed(session_enumerate)
    scratch_count, scenum_s = _timed(_scratch_enumerate, enum_network, limit)
    assert session_count == scratch_count, "enumeration count mismatch"
    results["witness_enumeration_2x2"] = {
        "witnesses": session_count,
        "session_s": round(senum_s, 3),
        "scratch_s": round(scenum_s, 3),
        "speedup": round(scenum_s / senum_s, 2),
    }

    # 4. Encoding construction (flattened n-ary conj/disj) -------------
    watch = Stopwatch()
    encode_network = abstract_mi_mesh(3, 3, queue_size=2).network
    with watch.phase("encode 3x3"):
        encoding = encode_deadlock(
            encode_network, derive_colors(encode_network), VarPool()
        )
    results["encode_3x3"] = {
        "seconds": round(watch.durations["encode 3x3"], 3),
        "definitions": len(encoding.definitions),
        "cases": len(encoding.cases),
    }

    return results


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    rows = []
    for name, data in results.items():
        if isinstance(data, dict) and "speedup" in data:
            rows.append(
                f"{name}: session {data['session_s']}s vs scratch "
                f"{data['scratch_s']}s ({data['speedup']}x)"
            )
        elif isinstance(data, dict):
            rows.append(f"{name}: {data}")
    report("E7: incremental session vs from-scratch (BENCH_incremental.json)", rows)


def test_incremental_beats_scratch():
    results = run_benchmarks()
    _record_and_report(results)
    assert results["fig4_sweep_2x2"]["speedup"] > 1.0, (
        "session-based Figure-4 sweep must beat the from-scratch baseline"
    )
    assert results["query_fanout_2x2"]["speedup"] > 1.0
    assert results["witness_enumeration_2x2"]["speedup"] > 1.0


if __name__ == "__main__":
    bench_results = run_benchmarks()
    _record_and_report(bench_results)
    print(json.dumps(bench_results, indent=2))
