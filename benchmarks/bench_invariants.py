"""E5 — Section 5 "Experimental Results": the case-study invariants.

Regenerates: invariants (3) and (4) for every cache of the 2×2 abstract-MI
case study (the paper reports 6 invariants for its three caches) and the
invariant counts for the full MI protocol (paper: 14 in its 2×2 setting).
"""

from conftest import report

from repro.core import VarPool, derive_colors, generate_invariants
from repro.linalg import SparseVector, row_space_contains
from repro.protocols import Message, abstract_mi_mesh, mi_mesh


def _rows(invariants):
    result = []
    for inv in invariants:
        entries = {var.uid: coeff for var, coeff in inv.coeffs}
        if inv.constant:
            entries[0] = inv.constant
        result.append(SparseVector(entries))
    return result


def _queue_vars(inst, pool, colors, message):
    return [
        pool.occupancy(queue, message)
        for queue in inst.network.queues()
        if message in colors.of(inst.network.channel_of(queue.i))
    ]


def test_abstract_mi_invariants(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=2)

    def generate():
        pool = VarPool()
        colors = derive_colors(inst.network)
        return pool, colors, generate_invariants(inst.network, colors, pool)

    pool, colors, invariants = benchmark(generate)
    rows = _rows(invariants)
    dir_node = inst.directory_node
    confirmed = []
    for c, cache in sorted(inst.caches.items()):
        # Equation (3): 1 = #getX(c) + #ack(c) + c.I + d.M(c) + d.MI(c)
        entries = {0: -1}
        for var in _queue_vars(inst, pool, colors, Message("getX", c, dir_node)):
            entries[var.uid] = 1
        for var in _queue_vars(inst, pool, colors, Message("ack", dir_node, c)):
            entries[var.uid] = 1
        entries[pool.state(cache, "I").uid] = 1
        entries[pool.state(inst.directory, f"M_{c[0]}_{c[1]}").uid] = 1
        entries[pool.state(inst.directory, f"MI_{c[0]}_{c[1]}").uid] = 1
        eq3 = row_space_contains(rows, SparseVector(entries))
        # Equation (4): d.MI(c) = #putX(c) + #inv(c)
        entries = {}
        for var in _queue_vars(inst, pool, colors, Message("putX", c, dir_node)):
            entries[var.uid] = 1
        for var in _queue_vars(inst, pool, colors, Message("inv", dir_node, c)):
            entries[var.uid] = 1
        entries[pool.state(inst.directory, f"MI_{c[0]}_{c[1]}").uid] = -1
        eq4 = row_space_contains(rows, SparseVector(entries))
        confirmed.append(f"cache {c}: eq(3) derivable={eq3}, eq(4) derivable={eq4}")
        assert eq3 and eq4
    report(
        "E5: 2x2 abstract MI invariants "
        "(paper: 6 invariants = (3)+(4) per cache x 3 caches)",
        [f"basis size = {len(invariants)}"] + confirmed,
    )


def test_full_mi_invariants(benchmark):
    inst = mi_mesh(2, 2, queue_size=2)

    def generate():
        pool = VarPool()
        return generate_invariants(
            inst.network, derive_colors(inst.network), pool
        )

    invariants = benchmark(generate)
    cross_layer = [
        inv for inv in invariants
        if any(v.name.startswith("#") for v in inv.variables())
        and any(not v.name.startswith("#") for v in inv.variables())
    ]
    report(
        "E5/E8: full MI 2x2 invariants (paper reports 14 in its layout)",
        [f"basis size = {len(invariants)}",
         f"cross-layer (mix states and occupancies) = {len(cross_layer)}",
         "example: " + invariants[len(invariants) // 2].pretty()],
    )
    assert len(invariants) >= 10
