"""E5 + E11 — case-study invariants and the ranked-selection ablation.

Two halves:

* **pytest section (E5)** — regenerates invariants (3) and (4) for every
  cache of the 2×2 abstract-MI case study (the paper reports 6 invariants
  for its three caches) and the invariant counts for the full MI protocol
  (paper: 14 in its 2×2 setting).
* **standalone section (E11)** — the eager/lazy/partial invariant-mode
  ablation over the mesh family, written to ``BENCH_invariants.json``:
  per mesh the same size sweep is answered in all three modes and the
  record captures verdict byte-identity, the rows actually encoded
  (eager always pays the full set; partial escalates CEGAR-style through
  the ranked rows — see :mod:`repro.core.invariants`), the escalation
  counts/rank histogram, and the wall-clock split.

Run standalone:  ``python benchmarks/bench_invariants.py [--smoke]``
(``--smoke`` keeps it to the 2×2/3×3 meshes for CI containers; the full
run adds 4×4 and the 6×6 free-size probe).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from conftest import report

from repro.core import (
    VarPool,
    derive_colors,
    generate_invariants,
    sweep_queue_sizes,
    verdict_sha,
)
from repro.linalg import SparseVector, row_space_contains
from repro.protocols import Message, abstract_mi_mesh, mi_mesh

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_invariants.json"

ABLATION_MODES = ("eager", "lazy", "partial")


# ---------------------------------------------------------------------------
# E5 (pytest): the published case-study invariants are derivable
# ---------------------------------------------------------------------------


def _rows(invariants):
    result = []
    for inv in invariants:
        entries = {var.uid: coeff for var, coeff in inv.coeffs}
        if inv.constant:
            entries[0] = inv.constant
        result.append(SparseVector(entries))
    return result


def _queue_vars(inst, pool, colors, message):
    return [
        pool.occupancy(queue, message)
        for queue in inst.network.queues()
        if message in colors.of(inst.network.channel_of(queue.i))
    ]


def test_abstract_mi_invariants(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=2)

    def generate():
        pool = VarPool()
        colors = derive_colors(inst.network)
        return pool, colors, generate_invariants(inst.network, colors, pool)

    pool, colors, invariants = benchmark(generate)
    rows = _rows(invariants)
    dir_node = inst.directory_node
    confirmed = []
    for c, cache in sorted(inst.caches.items()):
        # Equation (3): 1 = #getX(c) + #ack(c) + c.I + d.M(c) + d.MI(c)
        entries = {0: -1}
        for var in _queue_vars(inst, pool, colors, Message("getX", c, dir_node)):
            entries[var.uid] = 1
        for var in _queue_vars(inst, pool, colors, Message("ack", dir_node, c)):
            entries[var.uid] = 1
        entries[pool.state(cache, "I").uid] = 1
        entries[pool.state(inst.directory, f"M_{c[0]}_{c[1]}").uid] = 1
        entries[pool.state(inst.directory, f"MI_{c[0]}_{c[1]}").uid] = 1
        eq3 = row_space_contains(rows, SparseVector(entries))
        # Equation (4): d.MI(c) = #putX(c) + #inv(c)
        entries = {}
        for var in _queue_vars(inst, pool, colors, Message("putX", c, dir_node)):
            entries[var.uid] = 1
        for var in _queue_vars(inst, pool, colors, Message("inv", dir_node, c)):
            entries[var.uid] = 1
        entries[pool.state(inst.directory, f"MI_{c[0]}_{c[1]}").uid] = -1
        eq4 = row_space_contains(rows, SparseVector(entries))
        confirmed.append(f"cache {c}: eq(3) derivable={eq3}, eq(4) derivable={eq4}")
        assert eq3 and eq4
    report(
        "E5: 2x2 abstract MI invariants "
        "(paper: 6 invariants = (3)+(4) per cache x 3 caches)",
        [f"basis size = {len(invariants)}"] + confirmed,
    )


def test_full_mi_invariants(benchmark):
    inst = mi_mesh(2, 2, queue_size=2)

    def generate():
        pool = VarPool()
        return generate_invariants(
            inst.network, derive_colors(inst.network), pool
        )

    invariants = benchmark(generate)
    cross_layer = [
        inv for inv in invariants
        if any(v.name.startswith("#") for v in inv.variables())
        and any(not v.name.startswith("#") for v in inv.variables())
    ]
    report(
        "E5/E8: full MI 2x2 invariants (paper reports 14 in its layout)",
        [f"basis size = {len(invariants)}",
         f"cross-layer (mix states and occupancies) = {len(cross_layer)}",
         "example: " + invariants[len(invariants) // 2].pretty()],
    )
    assert len(invariants) >= 10


# ---------------------------------------------------------------------------
# E11 (standalone): the eager / lazy / partial ablation
# ---------------------------------------------------------------------------


def _mesh_cases(smoke: bool) -> list[dict]:
    """The ablation grid: mesh → probed sizes.

    In this reproduction's single-ejection-queue router the minimal
    deadlock-free uniform size is ``caches = w*h - 1`` (EXPERIMENTS.md),
    so each small mesh probes the boundary pair (one deadlocked size, one
    free size) — the deadlocked probe is what forces escalation.  The
    6×6 mesh probes the free size only: a deadlocked 6×6 probe costs
    minutes per refinement step in pure Python without changing what the
    ablation shows.
    """
    cases = [
        {"mesh": (2, 2), "sizes": (2, 3)},
        {"mesh": (3, 3), "sizes": (7, 8)},
    ]
    if not smoke:
        cases.append({"mesh": (4, 4), "sizes": (14, 15)})
        cases.append({"mesh": (6, 6), "sizes": (35,)})
    return cases


def _verdict_sha(probes: dict[int, bool]) -> str:
    return verdict_sha(sorted(probes.items()))


def _run_mode(build, sizes, mode: str, rank_budget: int | None) -> dict:
    start = time.perf_counter()
    sizing = sweep_queue_sizes(
        build,
        sizes,
        jobs=1,
        invariants=mode,
        rank_budget=rank_budget,
        want_witness=False,
    )
    wall = time.perf_counter() - start
    entry = {
        "wall_s": round(wall, 3),
        "build_s": round(sizing.build_seconds, 3),
        "query_s": round(sizing.query_seconds, 3),
        "probes": {str(size): free for size, free in sorted(sizing.probes.items())},
        "verdict_sha": _verdict_sha(sizing.probes),
        "invariants_used": sizing.invariants_used,
        "invariants_generated": sizing.invariants_generated,
        "escalations": sizing.lazy_escalations,
    }
    if mode == "partial":
        entry["rank_histogram"] = {
            str(tier): count
            for tier, count in sorted(sizing.rank_histogram.items())
        }
    return entry


def run_benchmarks(smoke: bool = False, rank_budget: int | None = None) -> dict:
    meshes = []
    for case in _mesh_cases(smoke):
        width, height = case["mesh"]
        sizes = case["sizes"]

        def build(size, width=width, height=height):
            return abstract_mi_mesh(width, height, queue_size=size).network

        modes = {
            mode: _run_mode(build, sizes, mode, rank_budget)
            for mode in ABLATION_MODES
        }
        shas = {entry["verdict_sha"] for entry in modes.values()}
        assert len(shas) == 1, (
            f"{width}x{height}: verdicts diverged across invariant modes"
        )
        eager_rows = modes["eager"]["invariants_generated"]
        partial_rows = modes["partial"]["invariants_generated"]
        if width * height >= 9:
            # The acceptance gate: ranked selection must beat the full
            # set on every mesh >= 3x3.
            assert partial_rows < eager_rows, (
                f"{width}x{height}: partial mode encoded {partial_rows} "
                f"rows, not fewer than eager's {eager_rows}"
            )
        meshes.append(
            {
                "mesh": f"{width}x{height}",
                "sizes": list(sizes),
                "total_invariants": eager_rows,
                "verdict_sha": modes["eager"]["verdict_sha"],
                "modes": modes,
                "partial_rows_vs_eager": f"{partial_rows}/{eager_rows}",
                "partial_speedup_vs_eager": round(
                    modes["eager"]["wall_s"]
                    / max(modes["partial"]["wall_s"], 1e-9),
                    2,
                ),
            }
        )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "rank_budget": rank_budget,
        "verdicts_byte_identical": True,
        "meshes": meshes,
    }


def check_acceptance(results: dict) -> None:
    """Machine-independent gates (the wall-clock columns are informative).

    Verdict byte-identity across all three modes, eager always paying the
    full set, and partial encoding strictly fewer rows than eager on
    every mesh >= 3x3 — re-asserted here so a loaded record fails loudly
    even if the producing run's asserts were edited out.
    """
    assert results["verdicts_byte_identical"]
    for mesh in results["meshes"]:
        modes = mesh["modes"]
        assert len({m["verdict_sha"] for m in modes.values()}) == 1, mesh["mesh"]
        assert modes["eager"]["invariants_generated"] == mesh["total_invariants"]
        assert mesh["total_invariants"] > 0, mesh["mesh"]
        width, height = (int(n) for n in mesh["mesh"].split("x"))
        if width * height >= 9:
            assert (
                modes["partial"]["invariants_generated"]
                < modes["eager"]["invariants_generated"]
            ), mesh["mesh"]


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    rows = []
    for mesh in results["meshes"]:
        modes = mesh["modes"]
        rows.append(
            f"{mesh['mesh']} (sizes {mesh['sizes']}): "
            f"rows partial {mesh['partial_rows_vs_eager']} "
            f"(lazy {modes['lazy']['invariants_generated']}), "
            f"wall eager {modes['eager']['wall_s']}s / "
            f"lazy {modes['lazy']['wall_s']}s / "
            f"partial {modes['partial']['wall_s']}s, "
            f"verdict sha {mesh['verdict_sha']}"
        )
    report(
        "E11: invariant-mode ablation — eager vs lazy vs ranked-partial "
        "(BENCH_invariants.json)",
        rows,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="2x2 + 3x3 only (CI containers)")
    parser.add_argument("--rank-budget", type=int, default=None,
                        help="partial-mode initial escalation batch size")
    args = parser.parse_args()
    results = run_benchmarks(smoke=args.smoke, rank_budget=args.rank_budget)
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
