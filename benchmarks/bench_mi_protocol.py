"""E8 — the full MI protocol: deadlock finding vs proof.

The paper: verified up to 5×5; a too-small-queue cross-layer deadlock is
found in 32 minutes at 5×5, a proof of deadlock freedom takes 56 minutes.
At reproduction scale we time deadlock *finding* (small queues, SMT + MC
confirmation) against the *ground-truth proof* (exhaustive explicit-state
search at adequate queues), and record the SMT false-negative behaviour
the paper acknowledges.
"""

from conftest import report

from repro import verify
from repro.mc import Explorer
from repro.protocols import mi_mesh


def test_deadlock_finding_small_queues(benchmark):
    inst = mi_mesh(2, 2, queue_size=2)
    result = benchmark.pedantic(
        lambda: verify(inst.network), rounds=1, iterations=1
    )
    assert not result.deadlock_free
    report(
        "E8: full MI 2x2, queue size 2 — deadlock finding",
        [f"verdict = {result.verdict.value}",
         f"invariants = {result.stats['invariant_count']}",
         f"solver = {result.stats['solver']}"],
    )


def test_deadlock_confirmation(benchmark):
    inst = mi_mesh(2, 2, queue_size=2)
    result = benchmark.pedantic(
        lambda: Explorer(inst.network).find_deadlock(max_states=500_000),
        rounds=1, iterations=1,
    )
    assert result.found_deadlock
    report(
        "E8: explicit-state confirmation of the q=2 deadlock",
        [f"states = {result.states_explored}",
         f"trace = {len(result.trace)} steps"],
    )


def test_ground_truth_proof_adequate_queues(benchmark):
    inst = mi_mesh(2, 2, queue_size=3)
    result = benchmark.pedantic(
        lambda: Explorer(inst.network).find_deadlock(max_states=2_000_000),
        rounds=1, iterations=1,
    )
    assert result.exhausted and not result.found_deadlock
    smt = verify(inst.network)
    report(
        "E8: full MI 2x2, queue size 3 — proof (paper: 56 min at 5x5)",
        [f"explicit-state: exhausted, {result.states_explored} states, "
         "no deadlock",
         f"SMT verdict = {smt.verdict.value} "
         "(deadlock-candidate here is a false negative; the paper's method "
         "is sound but incomplete without packet-ordering invariants)"],
    )
