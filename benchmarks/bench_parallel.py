"""E8 — parallel worker-pool session vs the sequential session.

Two workloads, both answered twice from one shared
:class:`~repro.core.SessionSpec` (the build phase is deliberately outside
every timing — the point of the spec split is that it is paid once):

* **per-channel fan-out** — every deadlock case of a 3×3 MI mesh, answered
  by the sequential incremental session vs a
  :class:`~repro.core.ParallelVerificationSession` worker pool (pool
  startup, snapshot serialization and worker rehydration all *included*
  in the parallel wall time — this is the honest end-to-end cost);
* **sharded Figure-4 sweep** — the verdict-per-size curve of a 2×2 mesh
  probed on one session vs striped across workers with warm-start
  ordering inside each shard.

Verdict lists must be byte-identical between the two paths (asserted on
every run).  The wall-clock speedup assertion is gated on the machine
actually having CPUs to parallelise over: with fewer than 4 cores the
numbers are recorded but only sanity-checked — a 1-core container can
never show a 2x wall win, and pretending otherwise would make the
benchmark flaky instead of informative.

Results land in ``BENCH_parallel.json`` at the repository root.  Run
standalone (``python benchmarks/bench_parallel.py [--jobs 4]``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from conftest import report

from repro.core import (
    ParallelVerificationSession,
    SessionSpec,
    VerificationSession,
    sha_bytes,
    sweep_queue_sizes,
)
from repro.protocols import abstract_mi_mesh

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

FANOUT_SPEEDUP_TARGET = 2.0  # acceptance: >= 2x with 4 workers on >= 4 cores


def _verdict_bytes(results) -> bytes:
    """Canonical byte encoding of a verdict list (for byte-identity)."""
    return json.dumps(
        [r.verdict.value for r in results], separators=(",", ":")
    ).encode()


def bench_fanout(jobs: int, backend: str) -> dict:
    network = abstract_mi_mesh(3, 3, queue_size=2).network
    build_start = time.perf_counter()
    spec = SessionSpec(network, parametric_queues=True)
    build_s = time.perf_counter() - build_start

    sequential = VerificationSession(spec=spec)
    start = time.perf_counter()
    seq_results = sequential.verify_all_cases()
    seq_s = time.perf_counter() - start

    start = time.perf_counter()
    with ParallelVerificationSession(spec=spec, jobs=jobs, backend=backend) as pool:
        par_results = pool.verify_all_cases()
    par_s = time.perf_counter() - start

    seq_bytes, par_bytes = _verdict_bytes(seq_results), _verdict_bytes(par_results)
    assert seq_bytes == par_bytes, "parallel fan-out verdicts diverged"
    # Witness structure must survive the worker round-trip, too.
    for seq_r, par_r in zip(seq_results, par_results):
        assert (seq_r.witness is None) == (par_r.witness is None)
    return {
        "cases": len(seq_results),
        "jobs": jobs,
        "backend": backend,
        "spec_build_s": round(build_s, 3),
        "sequential_s": round(seq_s, 3),
        "parallel_s": round(par_s, 3),
        "speedup": round(seq_s / par_s, 2),
        "verdicts_byte_identical": True,
        "verdict_sha": sha_bytes(seq_bytes),
    }


def bench_sharded_sweep(jobs: int, backend: str) -> dict:
    sizes = range(1, 7)

    def build(size: int):
        return abstract_mi_mesh(2, 2, queue_size=size).network

    start = time.perf_counter()
    seq = sweep_queue_sizes(build, sizes, jobs=1)
    seq_s = time.perf_counter() - start

    start = time.perf_counter()
    par = sweep_queue_sizes(build, sizes, jobs=jobs, backend=backend)
    par_s = time.perf_counter() - start

    assert seq.probes == par.probes, "sharded sweep verdicts diverged"
    assert seq.minimal_size == par.minimal_size
    return {
        "sizes": len(seq.probes),
        "minimal_size": seq.minimal_size,
        "jobs": jobs,
        "sequential_s": round(seq_s, 3),
        "parallel_s": round(par_s, 3),
        "speedup": round(seq_s / par_s, 2),
    }


def run_benchmarks(jobs: int = 4, backend: str = "process") -> dict:
    cpus = os.cpu_count() or 1
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": cpus,
        "speedup_asserted": cpus >= 4 and jobs >= 4,
        "query_fanout_3x3": bench_fanout(jobs, backend),
        "sharded_fig4_sweep_2x2": bench_sharded_sweep(jobs, backend),
    }


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    rows = []
    for name, data in results.items():
        if isinstance(data, dict) and "speedup" in data:
            rows.append(
                f"{name}: sequential {data['sequential_s']}s vs parallel "
                f"{data['parallel_s']}s ({data['speedup']}x, "
                f"jobs={data['jobs']})"
            )
    rows.append(
        f"cpus={results['cpu_count']}, "
        f"speedup asserted: {results['speedup_asserted']}"
    )
    report("E8: parallel pool vs sequential session (BENCH_parallel.json)", rows)


def check_acceptance(results: dict) -> None:
    """Verdict identity always; wall-clock targets only where achievable."""
    fanout = results["query_fanout_3x3"]
    assert fanout["verdicts_byte_identical"]
    if results["speedup_asserted"]:
        assert fanout["speedup"] >= FANOUT_SPEEDUP_TARGET, (
            f"3x3 fan-out speedup {fanout['speedup']}x with "
            f"{fanout['jobs']} workers is below the "
            f"{FANOUT_SPEEDUP_TARGET}x acceptance target"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel paths (default 4)")
    parser.add_argument("--backend", choices=("process", "thread"),
                        default="process")
    args = parser.parse_args()
    results = run_benchmarks(jobs=args.jobs, backend=args.backend)
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
