"""E13 — clause-sharing strategy portfolio vs the best single mode.

Standalone benchmark behind ``BENCH_portfolio.json``: every mesh of the
E11 ablation grid is swept once per single invariant mode (eager / lazy /
partial, sequential) and once through a racing
:class:`~repro.core.portfolio.PortfolioSession` (full roster,
``force_race``), recording

* **verdict byte-identity** — the portfolio's probe map must hash
  identically to every single mode's (fatal anywhere, any CPU count);
* the **wall-clock race** — portfolio vs the best single mode.  The
  speedup column and its acceptance assert (portfolio <= best single
  + tolerance) only arm on >= 4 CPUs: below that the racers share one
  core and the race is round-robined, so the ratio measures scheduling
  overhead, not the portfolio;
* the **exchange/cancellation record** — per-strategy wins, imported
  rounds, and cancelled-slice counts across the sweep.

Run standalone:  ``python benchmarks/bench_portfolio.py [--smoke]``
(``--smoke`` keeps it to the 2×2/3×3 meshes for CI containers; the full
run adds 4×4 and the 6×6 free-size probe).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from conftest import report

from repro.core import PortfolioSession, sweep_queue_sizes, verdict_sha
from repro.protocols import abstract_mi_mesh

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_portfolio.json"

SINGLE_MODES = ("eager", "lazy", "partial")
# Portfolio-vs-best acceptance slack: geometric slicing and the merge
# layer cost a little; the race may not lose more than this.
SPEED_TOLERANCE = 0.25
SPEED_SLACK_S = 0.5
SPEEDUP_CPU_GATE = 4  # mirrors benchmarks/check_bench.py


def _mesh_cases(smoke: bool) -> list[dict]:
    """The E11 ablation grid (see bench_invariants): mesh → probed sizes."""
    cases = [
        {"mesh": (2, 2), "sizes": (2, 3)},
        {"mesh": (3, 3), "sizes": (7, 8)},
    ]
    if not smoke:
        cases.append({"mesh": (4, 4), "sizes": (14, 15)})
        cases.append({"mesh": (6, 6), "sizes": (35,)})
    return cases


def _verdict_sha(probes: dict[int, bool]) -> str:
    return verdict_sha(sorted(probes.items()))


def _run_single(build, sizes, mode: str) -> dict:
    start = time.perf_counter()
    sizing = sweep_queue_sizes(
        build, sizes, jobs=1, invariants=mode, want_witness=False
    )
    return {
        "wall_s": round(time.perf_counter() - start, 3),
        "probes": {
            str(size): free for size, free in sorted(sizing.probes.items())
        },
        "verdict_sha": _verdict_sha(sizing.probes),
    }


def _run_portfolio(build, sizes, slice_conflicts: int) -> dict:
    start = time.perf_counter()
    probes: dict[int, bool] = {}
    cancelled = 0
    imported_rounds = 0
    with PortfolioSession(
        network=build(sizes[0]),
        force_race=True,
        jobs=os.cpu_count(),
        slice_conflicts=slice_conflicts,
    ) as session:
        for size in sizes:
            session.resize_queues(size)
            result = session.race(want_witness=False)
            probes[size] = result.deadlock_free
            for racer in result.stats["portfolio"]["racers"]:
                cancelled += racer.get("cancelled", 0)
                imported_rounds += racer.get("imported_rounds", 0)
        wins = dict(session.strategy_wins)
        races = session.races
        backend = session.backend
        racers = len(session.strategies)
    return {
        "wall_s": round(time.perf_counter() - start, 3),
        "probes": {str(size): free for size, free in sorted(probes.items())},
        "verdict_sha": _verdict_sha(probes),
        "backend": backend,
        "racers": racers,
        "races": races,
        "strategy_wins": wins,
        "cancelled_slices": cancelled,
        "imported_rounds": imported_rounds,
    }


def run_benchmarks(smoke: bool = False, slice_conflicts: int = 3000) -> dict:
    cpus = os.cpu_count() or 1
    meshes = []
    for case in _mesh_cases(smoke):
        width, height = case["mesh"]
        sizes = case["sizes"]

        def build(size, width=width, height=height):
            return abstract_mi_mesh(width, height, queue_size=size).network

        singles = {
            mode: _run_single(build, sizes, mode) for mode in SINGLE_MODES
        }
        portfolio = _run_portfolio(build, sizes, slice_conflicts)
        shas = {entry["verdict_sha"] for entry in singles.values()}
        shas.add(portfolio["verdict_sha"])
        assert len(shas) == 1, (
            f"{width}x{height}: portfolio verdicts diverged from the "
            f"single modes ({shas})"
        )
        best_mode = min(singles, key=lambda mode: singles[mode]["wall_s"])
        best_wall = singles[best_mode]["wall_s"]
        entry = {
            "mesh": f"{width}x{height}",
            "sizes": list(sizes),
            "verdict_sha": portfolio["verdict_sha"],
            "single_modes": singles,
            "best_single": {"mode": best_mode, "wall_s": best_wall},
            "portfolio": portfolio,
        }
        if cpus >= SPEEDUP_CPU_GATE:
            # Only meaningful when the racers genuinely run in parallel;
            # committed 1-CPU baselines deliberately omit the field so
            # check_bench never compares across that line.
            entry["portfolio_speedup"] = round(
                best_wall / max(portfolio["wall_s"], 1e-9), 2
            )
        meshes.append(entry)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": cpus,
        "smoke": smoke,
        "slice_conflicts": slice_conflicts,
        "verdicts_byte_identical": True,
        "meshes": meshes,
    }


def check_acceptance(results: dict) -> None:
    """Machine-independent gates, plus the >= 4-CPU wall-clock race.

    Re-asserted on the loaded record so an edited producing run still
    fails loudly: the portfolio's verdict sha must match every single
    mode's on every mesh, every race must have a winner, and — when the
    producing machine could actually parallelise — the portfolio may not
    lose to the best single mode by more than the tolerance.
    """
    assert results["verdicts_byte_identical"]
    for mesh in results["meshes"]:
        singles = mesh["single_modes"]
        portfolio = mesh["portfolio"]
        shas = {entry["verdict_sha"] for entry in singles.values()}
        shas.add(portfolio["verdict_sha"])
        assert len(shas) == 1, mesh["mesh"]
        assert portfolio["races"] == len(mesh["sizes"]), mesh["mesh"]
        assert (
            sum(portfolio["strategy_wins"].values()) == portfolio["races"]
        ), mesh["mesh"]
        if results["cpu_count"] >= SPEEDUP_CPU_GATE:
            best = mesh["best_single"]["wall_s"]
            ceiling = best * (1.0 + SPEED_TOLERANCE) + SPEED_SLACK_S
            assert portfolio["wall_s"] <= ceiling, (
                f"{mesh['mesh']}: portfolio {portfolio['wall_s']}s lost to "
                f"best single mode {mesh['best_single']['mode']} "
                f"({best}s, ceiling {ceiling:.2f}s)"
            )


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    rows = []
    for mesh in results["meshes"]:
        portfolio = mesh["portfolio"]
        wins = ", ".join(
            f"{name}:{count}"
            for name, count in sorted(portfolio["strategy_wins"].items())
            if count
        )
        rows.append(
            f"{mesh['mesh']} (sizes {mesh['sizes']}): portfolio "
            f"{portfolio['wall_s']}s ({portfolio['backend']}, "
            f"{portfolio['racers']} racers) vs best single "
            f"{mesh['best_single']['mode']} "
            f"{mesh['best_single']['wall_s']}s; wins {wins or '<none>'}; "
            f"cancelled {portfolio['cancelled_slices']}, verdict sha "
            f"{mesh['verdict_sha']}"
        )
    report(
        "E13: strategy portfolio vs best single invariant mode "
        "(BENCH_portfolio.json)",
        rows,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="2x2 + 3x3 only (CI containers)")
    parser.add_argument("--slice-conflicts", type=int, default=3000,
                        help="first-slice conflict budget per racer")
    args = parser.parse_args()
    results = run_benchmarks(
        smoke=args.smoke, slice_conflicts=args.slice_conflicts
    )
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
