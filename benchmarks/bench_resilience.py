"""E14 — fault-tolerance drills: recovery latency, quarantine, polling overhead.

Standalone benchmark behind ``BENCH_resilience.json``.  The workload is
the 2x2 abstract-MI mesh's deadlock-case fan-out (``verify_all_cases``),
driven through three drills:

* **deadline-polling overhead** — the fan-out answered with no deadline
  vs under a generous :class:`~repro.core.resilience.Deadline` (wall
  clock + conflict budget, never expiring).  Best-of-N wall ratio; the
  acceptance asserts the cooperative-cancellation plumbing costs at most
  a few percent (the hot path is one ``time.monotonic`` per propagate
  cycle plus a per-query conflict charge).
* **recovery drill** — a *latched* ``query-worker:kill`` (exactly one
  pool worker dies, once).  The session must rebuild the pool, replay
  from the same snapshot, and report verdicts byte-identical to the
  sequential reference; ``recovery_latency_s`` is the wall-clock price
  of the crash vs the clean pooled run.
* **quarantine drill** — an *unlatched* kill (every fresh worker dies on
  its first job).  The session must burn its retry budget, degrade to
  in-process execution, and still answer identically.

Verdict byte-identity is machine-independent and gated fatally by
``benchmarks/check_bench.py`` (``verdict_sha`` + ``verdicts_*`` flags);
the wall-clock numbers are informational.

Run standalone:  ``python benchmarks/bench_resilience.py [--smoke]``
(the full run adds the 3x3 mesh to the overhead measurement).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from conftest import report

from repro.core import (
    Deadline,
    FaultPlan,
    ParallelVerificationSession,
    RetryPolicy,
    SessionSpec,
    VerificationSession,
    install_fault_plan,
    verdict_sha,
)
from repro.protocols import abstract_mi_mesh

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: Paired best-of repetitions for the overhead measurement.
OVERHEAD_REPS = 3
#: The polling plumbing may not cost more than this (ratio ceiling); a
#: small absolute slack absorbs timer granularity on sub-second runs.
OVERHEAD_CEILING = 1.02
OVERHEAD_SLACK_S = 0.05


def _spec(width: int, height: int, queue_size: int = 3) -> SessionSpec:
    network = abstract_mi_mesh(width, height, queue_size=queue_size).network
    return SessionSpec(network, parametric_queues=True)


def _verdict_sha(results) -> str:
    return verdict_sha([r.verdict.value for r in results])


def _fanout_wall(spec: SessionSpec, deadline: Deadline | None) -> float:
    session = VerificationSession(spec=spec)
    start = time.perf_counter()
    session.verify_all_cases(deadline=deadline)
    return time.perf_counter() - start


def _overhead_case(width: int, height: int) -> dict:
    spec = _spec(width, height)
    plain = []
    polled = []
    for _ in range(OVERHEAD_REPS):
        # Interleaved, fresh session each arm: warm-start and cache
        # effects hit both sides equally.
        plain.append(_fanout_wall(spec, None))
        polled.append(
            _fanout_wall(spec, Deadline(seconds=3600.0, conflicts=10**9))
        )
    best_plain = min(plain)
    best_polled = min(polled)
    return {
        "mesh": f"{width}x{height}",
        "plain_wall_s": round(best_plain, 4),
        "deadline_wall_s": round(best_polled, 4),
        "overhead_ratio": round(best_polled / max(best_plain, 1e-9), 4),
    }


def _recovery_drill(spec: SessionSpec, reference_sha: str) -> dict:
    """Latched single worker kill: one crash, one rebuild, same verdicts."""
    start = time.perf_counter()
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="process", force_pool=True
    ) as pool:
        clean = pool.verify_all_cases()
    clean_wall = time.perf_counter() - start
    assert _verdict_sha(clean) == reference_sha

    with tempfile.TemporaryDirectory() as latch:
        install_fault_plan(FaultPlan.parse("query-worker:kill@1"), latch_dir=latch)
        try:
            start = time.perf_counter()
            with ParallelVerificationSession(
                spec=spec, jobs=2, backend="process", force_pool=True
            ) as pool:
                recovered = pool.verify_all_cases()
                recoveries = pool.recoveries
                degraded = pool.degraded
            faulted_wall = time.perf_counter() - start
        finally:
            install_fault_plan(None)
    return {
        "verdict_sha": _verdict_sha(recovered),
        "verdicts_recovery_identical": _verdict_sha(recovered) == reference_sha,
        "recoveries": recoveries,
        "degraded": degraded,
        "clean_wall_s": round(clean_wall, 3),
        "faulted_wall_s": round(faulted_wall, 3),
        "recovery_latency_s": round(max(0.0, faulted_wall - clean_wall), 3),
    }


def _quarantine_drill(spec: SessionSpec, reference_sha: str) -> dict:
    """Unlatched kill: every fresh worker dies; must degrade inline."""
    policy = RetryPolicy(max_attempts=2, base_delay=0.01)
    install_fault_plan(FaultPlan.parse("query-worker:kill@1"))
    try:
        start = time.perf_counter()
        with ParallelVerificationSession(
            spec=spec,
            jobs=2,
            backend="process",
            force_pool=True,
            retry_policy=policy,
        ) as pool:
            results = pool.verify_all_cases()
            recoveries = pool.recoveries
            degraded = pool.degraded
        wall = time.perf_counter() - start
    finally:
        install_fault_plan(None)
    return {
        "verdict_sha": _verdict_sha(results),
        "verdicts_quarantine_identical": _verdict_sha(results) == reference_sha,
        "retries": recoveries,
        "degraded": degraded,
        "wall_s": round(wall, 3),
    }


def run_benchmarks(smoke: bool = False) -> dict:
    meshes = [(2, 2)] if smoke else [(2, 2), (3, 3)]
    overhead = [_overhead_case(width, height) for width, height in meshes]

    spec = _spec(2, 2)
    reference = VerificationSession(spec=spec).verify_all_cases()
    reference_sha = _verdict_sha(reference)

    recovery = _recovery_drill(spec, reference_sha)
    quarantine = _quarantine_drill(spec, reference_sha)

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "workload": "abstract_mi_mesh verify_all_cases fan-out (queue_size=3)",
        "verdict_sha": reference_sha,
        "overhead": overhead,
        "recovery": recovery,
        "quarantine": quarantine,
    }


def check_acceptance(results: dict) -> None:
    """Re-asserted on the loaded record: identity fatal, overhead bounded."""
    recovery = results["recovery"]
    quarantine = results["quarantine"]
    assert recovery["verdicts_recovery_identical"], recovery
    assert recovery["recoveries"] == 1 and not recovery["degraded"], recovery
    assert quarantine["verdicts_quarantine_identical"], quarantine
    assert quarantine["degraded"], quarantine
    for case in results["overhead"]:
        ceiling = (
            case["plain_wall_s"] * OVERHEAD_CEILING + OVERHEAD_SLACK_S
        )
        assert case["deadline_wall_s"] <= ceiling, (
            f"{case['mesh']}: deadline polling cost "
            f"{case['deadline_wall_s']}s vs plain {case['plain_wall_s']}s "
            f"(ceiling {ceiling:.4f}s)"
        )


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    recovery = results["recovery"]
    quarantine = results["quarantine"]
    rows = [
        f"{case['mesh']}: plain {case['plain_wall_s']}s vs deadline "
        f"{case['deadline_wall_s']}s (overhead x{case['overhead_ratio']})"
        for case in results["overhead"]
    ]
    rows.append(
        f"recovery drill: {recovery['recoveries']} rebuild(s), latency "
        f"{recovery['recovery_latency_s']}s, verdicts identical "
        f"{recovery['verdicts_recovery_identical']}"
    )
    rows.append(
        f"quarantine drill: {quarantine['retries']} retries -> degraded "
        f"{quarantine['degraded']} in {quarantine['wall_s']}s, verdicts "
        f"identical {quarantine['verdicts_quarantine_identical']}"
    )
    report(
        "E14: fault-tolerance drills (BENCH_resilience.json)",
        rows,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2x2 mesh only (CI containers); the full run adds 3x3",
    )
    args = parser.parse_args()
    results = run_benchmarks(smoke=args.smoke)
    check_acceptance(results)
    _record_and_report(results)


if __name__ == "__main__":
    main()
