"""E1/E2 — the running example (Figure 1, Sections 1 and 3).

Regenerates: the automatically derived cross-layer invariant of Section 1
and the two unreachable deadlock candidates of Section 3, plus the
deadlock-freedom proof.
"""

from conftest import report

from repro import verify
from repro.core import VarPool, derive_colors, generate_invariants
from repro.netlib import running_example


def test_invariant_generation(benchmark):
    example = running_example()

    def generate():
        pool = VarPool()
        return generate_invariants(
            example.network, derive_colors(example.network), pool
        )

    invariants = benchmark(generate)
    report(
        "E1: running-example invariants (paper Section 1)",
        [inv.pretty() for inv in invariants],
    )
    assert invariants


def test_detection_without_invariants(benchmark):
    example = running_example()
    result = benchmark.pedantic(
        lambda: verify(example.network, use_invariants=False),
        rounds=1, iterations=1,
    )
    report(
        "E2: block/idle-only candidates (paper Section 3 reports 2, both unreachable)",
        [result.verdict.value]
        + ([result.witness.pretty()] if result.witness else []),
    )
    assert not result.deadlock_free


def test_proof_with_invariants(benchmark):
    example = running_example()
    result = benchmark.pedantic(
        lambda: verify(example.network, use_invariants=True),
        rounds=1, iterations=1,
    )
    report(
        "E1: full verification of the running example",
        [f"verdict = {result.verdict.value}",
         f"invariants = {result.stats['invariant_count']}",
         f"solver = {result.stats['solver']}"],
    )
    assert result.deadlock_free
