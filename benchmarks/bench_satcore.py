"""SAT-core data path: flat-arena Cdcl vs the frozen pre-arena reference.

Measures the tentpole of the CDCL rewrite (``src/repro/smt/sat.py``)
against :mod:`repro.smt._sat_reference`, the byte-frozen object-per-clause
core it replaced:

* **propagation throughput** — deterministic random 3-CNF instances near
  the satisfiability phase transition, solved by both cores standalone
  (no theory attached); verdicts must agree, and the new core's
  ``profile()`` counters (visited watchers, blocker hits, analyze steps)
  are recorded alongside propagations/second for each core;
* **end-to-end query fan-out** — every per-channel deadlock query of an
  MI mesh answered through the full ``VerificationSession`` stack, once
  with the production arena core and once with ``repro.smt.solver.Cdcl``
  monkeypatched to the reference core.  Verdict SHAs must be identical.

Results land in ``BENCH_satcore.json`` at the repository root.  Run
standalone (``python benchmarks/bench_satcore.py [--smoke]``); CI runs the
``--smoke`` variant (smaller instances, 2×2 mesh with shallow queues) and
gates on the verdict SHAs via ``check_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from conftest import report

from repro.core import VerificationSession, verdict_sha
from repro.protocols import abstract_mi_mesh
from repro.smt import _sat_reference, sat
from repro.smt import solver as solver_mod

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_satcore.json"


# ----------------------------------------------------------------------
# Propagation throughput on raw CNF
# ----------------------------------------------------------------------
def _random_cnf(seed: int, n_vars: int, n_clauses: int) -> list[list[int]]:
    """A deterministic random 3-CNF instance (no duplicate vars per clause)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        vs = rng.sample(range(1, n_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def _solve_instances(core_cls, instances, n_vars):
    """Solve every instance on a fresh core; verdict list + totals."""
    verdicts = []
    propagations = 0
    start = time.perf_counter()
    for clauses in instances:
        core = core_cls(reduction=True, reduce_base=200)
        core.ensure_vars(n_vars)
        for clause in clauses:
            core.add_clause(clause)
        verdicts.append(core.solve())
        propagations += core.stats["propagations"]
    return verdicts, propagations, time.perf_counter() - start


def bench_propagation(smoke: bool) -> dict:
    n_vars = 60 if smoke else 100
    # Clause/variable ratio 4.2: near the 3-SAT phase transition, so the
    # runs mix deep propagation with real conflict analysis.
    n_clauses = int(n_vars * 4.2)
    n_instances = 4 if smoke else 8
    instances = [
        _random_cnf(1000 + seed, n_vars, n_clauses)
        for seed in range(n_instances)
    ]

    new_verdicts, new_props, new_s = _solve_instances(
        sat.Cdcl, instances, n_vars
    )
    old_verdicts, old_props, old_s = _solve_instances(
        _sat_reference.Cdcl, instances, n_vars
    )
    assert new_verdicts == old_verdicts, "raw-CNF verdicts diverged"
    assert new_props == old_props, "propagation trajectories diverged"

    # Hot-loop profile of the arena core over one representative instance.
    probe = sat.Cdcl(reduction=True, reduce_base=200)
    probe.ensure_vars(n_vars)
    for clause in instances[0]:
        probe.add_clause(clause)
    probe.solve()
    profile = probe.profile()

    return {
        "instances": n_instances,
        "vars": n_vars,
        "clauses": n_clauses,
        "propagations": new_props,
        "arena_s": round(new_s, 3),
        "reference_s": round(old_s, 3),
        "arena_props_per_s": int(new_props / new_s) if new_s else 0,
        "reference_props_per_s": int(old_props / old_s) if old_s else 0,
        "speedup": round(old_s / new_s, 2) if new_s else 0.0,
        "profile_first_instance": profile,
        "verdicts_cnf_equal": True,
        "verdict_sha": verdict_sha([str(v) for v in new_verdicts]),
    }


# ----------------------------------------------------------------------
# End-to-end query fan-out through the full session stack
# ----------------------------------------------------------------------
def _session_fanout(network):
    session = VerificationSession(network, parametric_queues=False)
    return [
        session.verify_case(case).deadlock_free
        for case in session.encoding.cases
    ]


def bench_fanout(smoke: bool) -> dict:
    network = abstract_mi_mesh(2, 2, queue_size=2 if smoke else 3).network

    arena_verdicts, arena_s = None, 0.0
    start = time.perf_counter()
    arena_verdicts = _session_fanout(network)
    arena_s = time.perf_counter() - start

    # Swap the reference core under the unchanged Solver/session stack:
    # the public Cdcl API is frozen, so only the module binding differs.
    production = solver_mod.Cdcl
    try:
        solver_mod.Cdcl = _sat_reference.Cdcl
        start = time.perf_counter()
        reference_verdicts = _session_fanout(network)
        reference_s = time.perf_counter() - start
    finally:
        solver_mod.Cdcl = production

    assert arena_verdicts == reference_verdicts, "fan-out verdicts diverged"
    return {
        "mesh": "2x2",
        "queries": len(arena_verdicts),
        "arena_s": round(arena_s, 3),
        "reference_s": round(reference_s, 3),
        "speedup": round(reference_s / arena_s, 2) if arena_s else 0.0,
        "verdicts_fanout_equal": True,
        "verdict_sha": verdict_sha(list(arena_verdicts)),
    }


def run_benchmarks(smoke: bool = False) -> dict:
    results: dict = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
        "propagation_throughput": bench_propagation(smoke),
        "query_fanout": bench_fanout(smoke),
    }
    return results


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    prop = results["propagation_throughput"]
    fan = results["query_fanout"]
    report(
        "SAT core: flat arena vs reference (BENCH_satcore.json)",
        [
            f"propagation: arena {prop['arena_s']}s vs reference "
            f"{prop['reference_s']}s ({prop['speedup']}x, "
            f"{prop['arena_props_per_s']} props/s)",
            f"fan-out ({fan['queries']} queries): arena {fan['arena_s']}s "
            f"vs reference {fan['reference_s']}s ({fan['speedup']}x)",
        ],
    )


def test_satcore_matches_reference():
    results = run_benchmarks(smoke=True)
    _record_and_report(results)
    assert results["propagation_throughput"]["verdicts_cnf_equal"]
    assert results["query_fanout"]["verdicts_fanout_equal"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instances and mesh (the CI configuration)",
    )
    args = parser.parse_args()
    results = run_benchmarks(smoke=args.smoke)
    _record_and_report(results)
    print(json.dumps(results, indent=2))
