"""E7 — scalability: model size and verification time.

The paper reports, for a 6×6 mesh with VCs and queue size 30: 67 seconds,
2844 primitives, 36 automata, 432 queues — and notes that verification
time does not depend on the queue size.

This benchmark regenerates both series at reproduction scale on the
experiment layer: the mesh axis is an :class:`repro.core.Experiment` grid
(one :class:`~repro.core.ScenarioSpec` per topology, single-size sweeps so
per-scenario ``build_seconds``/``query_seconds`` splits come out of the
result), and model-size counters come from the same ``ScenarioSpec``
descriptions the grid runs.  (Python vs the authors' native stack makes
absolute times incomparable; the shape — polynomial growth in mesh size,
flat in queue size — is the reproduction target.)
"""

import os

from conftest import report

from repro.core import Experiment, ScenarioSpec


def _mesh_spec(width: int, height: int, queue_size: int, vcs: int = 1,
               invariants: str = "eager") -> ScenarioSpec:
    return ScenarioSpec(
        builder="abstract_mi_mesh",
        kwargs={"width": width, "height": height, "vcs": vcs},
        mode="sweep",
        sizes=(queue_size,),
        invariants=invariants,
        label=f"{width}x{height} q{queue_size}"
              + (f" {vcs}VC" if vcs > 1 else "")
              + (f" [{invariants}]" if invariants != "eager" else ""),
    )


def test_model_size_scaling(benchmark):
    def measure():
        rows = []
        meshes = [(2, 2), (2, 3), (3, 3)]
        if os.environ.get("ADVOCAT_BIG"):
            meshes += [(4, 4), (6, 6)]
        for width, height in meshes:
            # The scenario *describes* the build; materialise it here.
            network = ScenarioSpec(
                builder="abstract_mi_mesh",
                kwargs={"width": width, "height": height,
                        "queue_size": 3, "vcs": 2},
            ).build()
            stats = network.stats()
            rows.append(
                f"{width}x{height} (2 VCs): {stats['primitives']} primitives, "
                f"{stats['automata']} automata, {stats['queues']} queues"
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "E7: model sizes (paper 6x6 w/ VCs: 2844 primitives, 36 automata, "
        "432 queues)",
        rows,
    )


def test_verification_time_scaling(benchmark):
    # The paper's headline axis ends at 6x6; the 4x4/6x6 points verify at
    # their free size with ranked-partial invariants (ADVOCAT_BIG only —
    # minutes in pure Python; see BENCH_invariants.json for the ablation).
    specs = [_mesh_spec(w, h, queue_size=3) for w, h in ((2, 2), (2, 3), (3, 3))]
    if os.environ.get("ADVOCAT_BIG"):
        specs.append(_mesh_spec(4, 4, queue_size=15, invariants="partial"))
        specs.append(_mesh_spec(6, 6, queue_size=35, invariants="partial"))
    experiment = Experiment("scalability-mesh-axis", specs)

    def measure():
        result = experiment.run(jobs=1)
        return [
            f"{scenario.label}: build {scenario.build_seconds:.2f}s + "
            f"query {scenario.query_seconds:.2f}s -> "
            + (
                "deadlock_free"
                if all(scenario.probes.values())
                else "deadlock_candidate"
            )
            for scenario in result.scenarios
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("E7: verification time vs mesh size", rows)


def test_runtime_independent_of_queue_size(benchmark):
    experiment = Experiment(
        "scalability-queue-axis",
        [_mesh_spec(2, 2, queue_size=size) for size in (3, 10, 30)],
    )

    def measure():
        result = experiment.run(jobs=1)
        rows, times = [], {}
        for size, scenario in zip((3, 10, 30), result.scenarios):
            times[size] = scenario.query_seconds
            verdict = (
                "deadlock_free" if scenario.probes[size]
                else "deadlock_candidate"
            )
            rows.append(f"queue size {size}: {times[size]:.2f}s -> {verdict}")
        return rows, times

    rows, times = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "E7: runtime vs queue size (paper: independent of queue size)",
        rows,
    )
    # flat within generous tolerance (pure-Python noise)
    assert times[30] < 10 * max(times[3], 0.05)
