"""E7 — scalability: model size and verification time.

The paper reports, for a 6×6 mesh with VCs and queue size 30: 67 seconds,
2844 primitives, 36 automata, 432 queues — and notes that verification
time does not depend on the queue size.

This benchmark regenerates both series at reproduction scale: model-size
counters and end-to-end verification time per mesh size, plus the
queue-size-independence check.  (Python vs the authors' native stack makes
absolute times incomparable; the shape — polynomial growth in mesh size,
flat in queue size — is the reproduction target.)
"""

import os

from conftest import report

from repro import verify
from repro.protocols import abstract_mi_mesh


def test_model_size_scaling(benchmark):
    def measure():
        rows = []
        meshes = [(2, 2), (2, 3), (3, 3)]
        if os.environ.get("ADVOCAT_BIG"):
            meshes += [(4, 4), (6, 6)]
        for width, height in meshes:
            inst = abstract_mi_mesh(width, height, queue_size=3, vcs=2)
            stats = inst.network.stats()
            rows.append(
                f"{width}x{height} (2 VCs): {stats['primitives']} primitives, "
                f"{stats['automata']} automata, {stats['queues']} queues"
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "E7: model sizes (paper 6x6 w/ VCs: 2844 primitives, 36 automata, "
        "432 queues)",
        rows,
    )


def test_verification_time_scaling(benchmark):
    import time

    def measure():
        rows = []
        for width, height in ((2, 2), (2, 3), (3, 3)):
            inst = abstract_mi_mesh(width, height, queue_size=3)
            start = time.perf_counter()
            result = verify(inst.network)
            elapsed = time.perf_counter() - start
            rows.append(
                f"{width}x{height}: {elapsed:.2f}s -> {result.verdict.value} "
                f"({result.stats['invariant_count']} invariants)"
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("E7: verification time vs mesh size", rows)


def test_runtime_independent_of_queue_size(benchmark):
    import time

    def measure():
        rows = []
        times = {}
        for queue_size in (3, 10, 30):
            inst = abstract_mi_mesh(2, 2, queue_size=queue_size)
            start = time.perf_counter()
            result = verify(inst.network)
            times[queue_size] = time.perf_counter() - start
            rows.append(
                f"queue size {queue_size}: {times[queue_size]:.2f}s "
                f"-> {result.verdict.value}"
            )
        return rows, times

    rows, times = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "E7: runtime vs queue size (paper: independent of queue size)",
        rows,
    )
    # flat within generous tolerance (pure-Python noise)
    assert times[30] < 10 * max(times[3], 0.05)
