"""E15 — verification service: tiered caching under a mixed query load.

Standalone benchmark behind ``BENCH_service.json``.  An in-process
:class:`~repro.core.service.VerificationService` (process-pool backend,
``hot_capacity`` *below* the distinct-spec count, so the hot tier churns)
is driven over real TCP by an :class:`~repro.core.AsyncServiceClient`
load generator in four phases:

* **cold** — every ``(spec, query)`` pair once: the build tier snapshots
  each network into the warm store and answers the first query in the
  same pool trip; distinct follow-up queries solve warm and promote
  their encoding into the hot tier (evicting under the capacity bound).
* **burst** — one batch of concurrent *identical* fresh queries: the
  single-flight path must coalesce all but one onto a single solve.
* **steady** — shuffled rounds of the full query mix, plus one
  guaranteed-fresh sizes-override query per round so the hot/warm tiers
  stay exercised; everything else answers from the content-addressed
  cold store.  Client-observed p50/p99 hit latency, hit rate and
  queries/sec come from this phase.
* **identity** — every distinct verdict the service served is re-derived
  by a fresh *sequential* eager solve (no server, no pool, no cache) and
  must match exactly; the canonical table is hashed into ``verdict_sha``
  (machine-independent, gated fatally by ``benchmarks/check_bench.py``).

The wall-clock acceptance is the tier contrast itself — cache-hit p50 at
least ``HIT_VS_COLD_TARGET``× faster than the cold-solve p50 — a ratio
of two measurements on the *same* machine, asserted everywhere (the
field is deliberately not named ``*_speedup``: it is not a parallelism
claim and needs no CPU gate).  Shutdown must leak no child processes.

Run standalone:  ``python benchmarks/bench_service.py [--smoke]``
(the full run adds a fourth station ring and the 2×2 abstract-MI mesh,
plus more steady rounds).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import random
import statistics
import tempfile
import time
from pathlib import Path

from conftest import report

from repro.core import (
    AsyncServiceClient,
    ScenarioSpec,
    ServiceSession,
    VerificationService,
    run_scenario,
    verdict_sha,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

HIT_RATE_TARGET = 0.9
HIT_VS_COLD_TARGET = 20.0
SIZE_MAX = 8
BURST_WIDTH = 8

#: The spec whose steady-phase sizes-override misses keep the solve path
#: warm (every round pins a never-seen-before uniform size).
MISS_SPEC = {"builder": "running_example", "kwargs": {"queue_size": 2}}
#: The spec the burst phase hammers with identical concurrent queries.
BURST_SPEC = {"builder": "producer_consumer", "kwargs": {"queue_size": 4}}
#: The spec the ``size`` query searches (small cap keeps it cheap).
SIZE_SPEC = {"builder": "producer_consumer", "kwargs": {"queue_size": 2}}


def _specs(smoke: bool) -> list[dict]:
    specs = [
        {"builder": "running_example", "kwargs": {"queue_size": 2}},
        {"builder": "producer_consumer", "kwargs": {"queue_size": 2}},
        {"builder": "token_ring", "kwargs": {"n_stations": 3, "queue_size": 1}},
    ]
    if not smoke:
        specs.append(
            {"builder": "token_ring", "kwargs": {"n_stations": 4, "queue_size": 1}}
        )
        specs.append(
            {
                "builder": "abstract_mi_mesh",
                "kwargs": {"width": 2, "height": 2, "queue_size": 3},
            }
        )
    return specs


def _label(spec: dict) -> str:
    kwargs = ",".join(f"{k}={v}" for k, v in sorted(spec["kwargs"].items()))
    return f"{spec['builder']}({kwargs})"


def _query_mix(specs: list[dict]) -> list[tuple[str, dict]]:
    """The repeating request set: (query label, request kwargs)."""
    mix = []
    for spec in specs:
        label = _label(spec)
        mix.append((f"{label}|verify", {"op": "verify", "spec": spec}))
        mix.append(
            (
                f"{label}|channel0",
                {"op": "verify_channel", "spec": spec, "params": {"case": 0}},
            )
        )
        mix.append((f"{label}|witness", {"op": "witness", "spec": spec}))
    mix.append(
        (
            f"{_label(SIZE_SPEC)}|size",
            {"op": "size", "spec": SIZE_SPEC, "params": {"max_size": SIZE_MAX}},
        )
    )
    return mix


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


async def _timed(client: AsyncServiceClient, request: dict) -> tuple[float, dict]:
    start = time.perf_counter()
    response = await client.request(**request)
    assert response.get("ok"), response
    return (time.perf_counter() - start) * 1000.0, response


async def _drive(service: VerificationService, smoke: bool, rounds: int) -> dict:
    """The four phases against a served (real TCP) endpoint."""
    rng = random.Random(0)
    specs = _specs(smoke)
    mix = _query_mix(specs)
    served: dict[str, str] = {}  # query label -> verdict (or size record)
    miss_sizes: list[int] = []

    def observe(label: str, response: dict) -> None:
        if "minimal_size" in response:
            verdict = json.dumps(
                [response["minimal_size"], response["probes"]],
                sort_keys=True,
            )
        else:
            verdict = response["verdict"]
        previous = served.setdefault(label, verdict)
        assert previous == verdict, (
            f"{label}: served verdict flapped: {previous!r} -> {verdict!r}"
        )

    await service.serve()
    port = service.port
    # One connection per steady-round request slot: the client serialises
    # requests per connection, so shared connections would charge a hit's
    # latency with its queue-neighbour's solve time.
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", port)
        for _ in range(len(mix) + 1)
    ]
    try:
        # -- cold phase: every pair once, sequentially ------------------
        # The cold-solve baseline is the build tier only (network build
        # + first solve); warm/hot follow-ups are already cache wins.
        cold_ms: list[float] = []
        tier_walk_ms: list[float] = []
        for label, request in mix:
            elapsed, response = await _timed(clients[0], request)
            assert response["cache"] in ("build", "warm", "hot"), response
            tier_walk_ms.append(elapsed)
            if response["cache"] == "build":
                cold_ms.append(elapsed)
            observe(label, response)

        # -- burst: concurrent identical fresh queries coalesce ---------
        # One connection per in-flight request (the client serialises
        # requests per connection, which would defeat the burst).
        before = service.stats()
        burst_label = f"{_label(BURST_SPEC)}|verify"
        burst_request = {"op": "verify", "spec": BURST_SPEC}
        burst_clients = [
            await AsyncServiceClient.connect("127.0.0.1", port)
            for _ in range(BURST_WIDTH)
        ]
        try:
            outcomes = await asyncio.gather(
                *(_timed(client, burst_request) for client in burst_clients)
            )
        finally:
            for client in burst_clients:
                await client.aclose()
        for _, response in outcomes:
            observe(burst_label, response)
        coalesced = service.stats()["coalesced"] - before["coalesced"]

        # -- steady phase A: closed-loop latency rounds -----------------
        # One outstanding request at a time: per-request latency is the
        # server's, not the queue's.  Each round shuffles the full mix
        # plus one guaranteed-fresh sizes-override miss.
        before = service.stats()
        steady_ms: list[float] = []
        hit_ms: list[float] = []
        steady_start = time.perf_counter()
        for round_index in range(rounds):
            size = 3 + round_index
            miss_sizes.append(size)
            requests = list(mix) + [
                (
                    f"{_label(MISS_SPEC)}|sizes={size}",
                    {
                        "op": "verify",
                        "spec": MISS_SPEC,
                        "params": {"sizes": size},
                    },
                )
            ]
            rng.shuffle(requests)
            for i, (label, request) in enumerate(requests):
                elapsed, response = await _timed(
                    clients[i % len(clients)], request
                )
                steady_ms.append(elapsed)
                if response["cache"] == "cold":
                    hit_ms.append(elapsed)
                observe(label, response)

        # -- steady phase B: concurrent throughput rounds ---------------
        # The whole mix in flight at once (one connection per request):
        # all archived by now, so this measures served-from-cache
        # queries/sec under genuine concurrency.
        throughput_requests = 0
        for _ in range(rounds):
            requests = list(mix)
            rng.shuffle(requests)
            outcomes = await asyncio.gather(
                *(
                    _timed(clients[i % len(clients)], request)
                    for i, (_, request) in enumerate(requests)
                )
            )
            throughput_requests += len(requests)
            for (label, _), (_, response) in zip(requests, outcomes):
                assert response["cache"] == "cold", response
                observe(label, response)
        steady_s = time.perf_counter() - steady_start
        after = service.stats()
        steady_queries = after["queries"] - before["queries"]
        steady_hits = after["hits"]["cold"] - before["hits"]["cold"]

        stats = service.stats()
    finally:
        for client in clients:
            await client.aclose()

    return {
        "served": served,
        "miss_sizes": miss_sizes,
        "cold_ms": cold_ms,
        "tier_walk_ms": tier_walk_ms,
        "burst_coalesced": coalesced,
        "steady_ms": steady_ms,
        "hit_ms": hit_ms,
        "throughput_requests": throughput_requests,
        "steady_s": steady_s,
        "steady_queries": steady_queries,
        "steady_hits": steady_hits,
        "stats": stats,
    }


def _sequential_reference(smoke: bool, miss_sizes: list[int]) -> dict[str, str]:
    """Re-derive every served verdict with fresh sequential eager solves."""
    answers: dict[str, str] = {}
    for spec in _specs(smoke) + [BURST_SPEC]:
        label = _label(spec)
        scenario = ScenarioSpec(
            builder=spec["builder"], kwargs=tuple(spec["kwargs"].items())
        )
        session_spec = scenario.session_spec(parametric_queues=True)
        session_spec.generate_invariants()
        snapshot = session_spec.snapshot()
        session = ServiceSession(snapshot.content_hash(), snapshot)
        try:
            answers[f"{label}|verify"] = session.run(None, None, False, None)[
                "verdict"
            ]
            if spec != BURST_SPEC:
                answers[f"{label}|channel0"] = session.run(
                    0, None, False, None
                )["verdict"]
                answers[f"{label}|witness"] = session.run(
                    None, None, True, None
                )["verdict"]
            if spec == MISS_SPEC:
                for size in miss_sizes:
                    answers[f"{label}|sizes={size}"] = session.run(
                        None, size, False, None
                    )["verdict"]
        finally:
            session.close()

    search = ScenarioSpec(
        builder=SIZE_SPEC["builder"],
        kwargs=tuple(SIZE_SPEC["kwargs"].items()),
        mode="search",
        low=1,
        max_size=SIZE_MAX,
    )
    result = run_scenario(search, query_jobs=1)
    answers[f"{_label(SIZE_SPEC)}|size"] = json.dumps(
        [
            result.minimal_size,
            {str(size): free for size, free in sorted(result.probes.items())},
        ],
        sort_keys=True,
    )
    return answers


def run_benchmarks(smoke: bool = False) -> dict:
    rounds = 5 if smoke else 20
    specs = _specs(smoke)

    cache_dir = tempfile.mkdtemp(prefix="bench-service-")

    async def _main() -> dict:
        service = VerificationService(
            cache_dir=cache_dir,
            hot_capacity=2,  # < len(specs): the hot tier must churn
            jobs=2,
            backend="process",
        )
        try:
            return await _drive(service, smoke, rounds)
        finally:
            await service.aclose()

    run = asyncio.run(_main())

    # Clean shutdown: aclose() must have reaped every pool worker.
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = len(multiprocessing.active_children())

    reference = _sequential_reference(smoke, run["miss_sizes"])
    assert set(run["served"]) == set(reference), (
        "served/reference query sets diverged"
    )
    mismatches = {
        label: (run["served"][label], reference[label])
        for label in reference
        if run["served"][label] != reference[label]
    }
    assert not mismatches, f"service verdicts diverged: {mismatches}"
    identity_table = sorted(
        [label, verdict] for label, verdict in reference.items()
    )

    cold_p50 = _percentile(run["cold_ms"], 0.50)
    hit_p50 = _percentile(run["hit_ms"], 0.50)
    stats = run["stats"]
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "workload": {
            "distinct_specs": len(specs) + 1,  # + the burst spec
            "specs": [_label(spec) for spec in specs],
            "hot_capacity": 2,
            "steady_rounds": rounds,
            "requests_per_round": len(_query_mix(specs)) + 1,
            "clients": len(_query_mix(specs)) + 1,
        },
        "cold": {
            "builds": len(run["cold_ms"]),
            "p50_ms": round(cold_p50, 3),
            "max_ms": round(max(run["cold_ms"]), 3),
            "tier_walk_p50_ms": round(_percentile(run["tier_walk_ms"], 0.50), 3),
        },
        "burst": {
            "width": BURST_WIDTH,
            "coalesced": run["burst_coalesced"],
        },
        "steady": {
            "requests": len(run["steady_ms"]) + run["throughput_requests"],
            "hit_p50_ms": round(hit_p50, 3),
            "hit_p99_ms": round(_percentile(run["hit_ms"], 0.99), 3),
            "mean_ms": round(statistics.fmean(run["steady_ms"]), 3),
            "queries_per_s": round(
                (len(run["steady_ms"]) + run["throughput_requests"])
                / run["steady_s"],
                1,
            ),
            "hit_rate": round(run["steady_hits"] / run["steady_queries"], 4),
        },
        "hit_vs_cold_x": round(cold_p50 / max(hit_p50, 1e-9), 1),
        "tiers": {
            "hits": stats["hits"],
            "evictions": stats["evictions"],
            "coalesced": stats["coalesced"],
            "rejected": stats["rejected"],
            "errors": stats["errors"],
            "verdicts_stored": stats["store"]["verdicts"],
        },
        "clean_shutdown": {"leaked_children": leaked},
        "verdicts_service_identical": True,
        "verdict_sha": verdict_sha(identity_table),
    }


def check_acceptance(results: dict) -> None:
    """Machine-independent gates, re-asserted on the loaded record.

    Verdict identity and cache hygiene are absolute; the latency gate is
    a same-machine ratio (hit p50 vs cold p50), so it holds on any
    runner fast or slow.
    """
    assert results["verdicts_service_identical"]
    assert results["clean_shutdown"]["leaked_children"] == 0
    assert results["tiers"]["evictions"] >= 1, (
        "hot tier never churned: capacity bound was not exercised"
    )
    assert results["tiers"]["errors"] == 0 and results["tiers"]["rejected"] == 0
    assert results["burst"]["coalesced"] >= BURST_WIDTH - 2, (
        f"only {results['burst']['coalesced']} of {BURST_WIDTH} concurrent "
        "identical queries coalesced"
    )
    assert results["steady"]["hit_rate"] >= HIT_RATE_TARGET, (
        f"steady-state hit rate {results['steady']['hit_rate']} below "
        f"{HIT_RATE_TARGET}"
    )
    assert results["hit_vs_cold_x"] >= HIT_VS_COLD_TARGET, (
        f"cache hits only {results['hit_vs_cold_x']}x faster than cold "
        f"solves (target {HIT_VS_COLD_TARGET}x)"
    )


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    steady = results["steady"]
    tiers = results["tiers"]
    report(
        "E15: verification service under mixed load (BENCH_service.json)",
        [
            f"{results['workload']['distinct_specs']} specs through "
            f"hot_capacity={results['workload']['hot_capacity']}: "
            f"{tiers['evictions']} eviction(s), hits {tiers['hits']}",
            f"cold p50 {results['cold']['p50_ms']}ms vs hit p50 "
            f"{steady['hit_p50_ms']}ms ({results['hit_vs_cold_x']}x), "
            f"hit p99 {steady['hit_p99_ms']}ms",
            f"steady: {steady['requests']} requests, hit rate "
            f"{steady['hit_rate']}, {steady['queries_per_s']} queries/s",
            f"burst: {results['burst']['coalesced']}/"
            f"{results['burst']['width'] - 1} coalesced; clean shutdown "
            f"({results['clean_shutdown']['leaked_children']} leaked children)",
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="3 specs + 5 steady rounds (CI containers); the full run "
        "adds a 4-station ring, the 2x2 abstract-MI mesh and 20 rounds",
    )
    args = parser.parse_args()
    results = run_benchmarks(smoke=args.smoke)
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
