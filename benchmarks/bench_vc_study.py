"""E6 — virtual channels: the deadlock survives, sizing changes.

Regenerates the paper's VC claims: adding request/response VCs does not
remove the cross-layer deadlock; per-VC minimal queue sizes are compared
against the no-VC case (the paper's 6×6 numbers are 29 with VCs vs 58
without; at reproduction scale the effect is visible as "per-VC minimum ≤
no-VC minimum").
"""

from conftest import report

from repro import verify
from repro.core import minimal_queue_size
from repro.protocols import abstract_mi_mesh


def test_deadlock_survives_vcs(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=2, vcs=2)
    result = benchmark.pedantic(
        lambda: verify(inst.network), rounds=1, iterations=1
    )
    assert not result.deadlock_free
    report(
        "E6: 2x2 with 2 VCs at queue size 2 (paper: VCs cannot resolve it)",
        [f"verdict = {result.verdict.value}"],
    )


def test_minimal_sizes_with_and_without_vcs(benchmark):
    def sweep():
        sizes = {}
        for vcs in (1, 2):
            sizing = minimal_queue_size(
                lambda q, v=vcs: abstract_mi_mesh(
                    2, 2, queue_size=q, vcs=v
                ).network
            )
            sizes[vcs] = sizing.minimal_size
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E6: minimal queue sizes (paper 6x6: 58 without VCs, 29 per VC)",
        [f"without VCs: {sizes[1]}", f"2 VCs, per-VC size: {sizes[2]}"],
    )
    assert sizes[2] <= sizes[1]
