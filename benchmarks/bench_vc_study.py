"""E6 — virtual channels: the deadlock survives, sizing changes.

Regenerates the paper's VC claims: adding request/response VCs does not
remove the cross-layer deadlock; per-VC minimal queue sizes are compared
against the no-VC case (the paper's 6×6 numbers are 29 with VCs vs 58
without; at reproduction scale the effect is visible as "per-VC minimum ≤
no-VC minimum").  The sizing comparison runs as a two-point experiment
grid over the ``vcs`` axis (:class:`repro.core.Experiment`).
"""

from conftest import report

from repro import verify
from repro.core import Experiment
from repro.protocols import abstract_mi_mesh


def test_deadlock_survives_vcs(benchmark):
    inst = abstract_mi_mesh(2, 2, queue_size=2, vcs=2)
    result = benchmark.pedantic(
        lambda: verify(inst.network), rounds=1, iterations=1
    )
    assert not result.deadlock_free
    report(
        "E6: 2x2 with 2 VCs at queue size 2 (paper: VCs cannot resolve it)",
        [f"verdict = {result.verdict.value}"],
    )


def test_minimal_sizes_with_and_without_vcs(benchmark):
    experiment = Experiment.grid(
        "vc-study",
        "abstract_mi_mesh",
        axes={"vcs": [1, 2]},
        base={"width": 2, "height": 2},
        mode="search",
    )

    def sweep():
        result = experiment.run(jobs=1)
        return {
            vcs: scenario.minimal_size
            for vcs, scenario in zip((1, 2), result.scenarios)
        }

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E6: minimal queue sizes (paper 6x6: 58 without VCs, 29 per VC)",
        [f"without VCs: {sizes[1]}", f"2 VCs, per-VC size: {sizes[2]}"],
    )
    assert sizes[2] <= sizes[1]
