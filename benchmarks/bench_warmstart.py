"""E9 — learned-clause lifecycle: warm-started workers, bounded sessions.

Two experiments over the solver stack's learned-clause lifecycle (PR 3):

* **cold vs warm worker first query** — a parent session primes one
  master-guard query on the 3×3 MI mesh, then two workers rehydrate from
  a cold snapshot (CNF image only — what every pool shipped before) and a
  warm one (``include_learned=True``: the parent's LBD-sorted learned
  tail plus saved phases).  The warm worker's first per-case query must
  skip the re-learning cost.  Both workers then answer the *full* 145
  deadlock-case fan-out; the verdict byte-encodings must be identical,
  and identical again with clause-database reduction on vs off.

* **bounded vs unbounded long session** — the monotone Figure-4 sweep
  (one ``verify()`` per queue size, sizes ascending, never revisited) is
  the workload with a genuinely cold tail: clauses conditioned on
  ``cap[q==k]`` pins go stale the moment the sweep moves past size ``k``.
  A 200-query session with reduction enabled (sweep-tuned knobs:
  ``reduce_base=200, reduce_growth=1.25, glue_cap=150`` — see README
  "Solver internals") must end with < 50 % of the learned clauses the
  unbounded session accumulates, at comparable throughput and identical
  verdicts.

Results land in ``BENCH_warmstart.json`` at the repository root.  Run
standalone (``python benchmarks/bench_warmstart.py [--smoke]``); CI runs
the ``--smoke`` variant (tiny mesh, short sweep, no wall-clock gates).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from conftest import report

from repro.core import SessionSpec, VerificationSession, verdict_sha
from repro.core.parallel import WorkerSession
from repro.protocols import abstract_mi_mesh

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_warmstart.json"

WARM_SPEEDUP_TARGET = 1.5  # acceptance: warm first query >= 1.5x faster
BOUNDED_RATIO_TARGET = 0.5  # acceptance: bounded ends < 50% of unbounded

# Sweep-tuned lifecycle knobs for the long-session experiment: frequent
# small reductions and a tight glue cap suit a workload that never
# revisits a configuration (see README "Solver internals").
SWEEP_REDUCTION_OPTS = {
    "reduce_base": 200,
    "reduce_growth": 1.25,
    "glue_cap": 150,
}


def bench_warm_worker(mesh: int) -> dict:
    """Cold vs warm worker rehydration on the per-case fan-out."""
    network = abstract_mi_mesh(mesh, mesh, queue_size=2).network
    spec = SessionSpec(network, parametric_queues=True)
    cases = len(spec.encoding.cases)

    parent = VerificationSession(spec=spec)
    start = time.perf_counter()
    parent.verify()  # priming: the master-guard query workers fan out from
    prime_s = time.perf_counter() - start

    snapshots = {
        "cold": spec.snapshot(),
        "warm": parent.snapshot(include_learned=True),
    }
    sizes = tuple(sorted(spec.initial_sizes.items()))
    runs = {}
    for name, snapshot in snapshots.items():
        worker = WorkerSession(snapshot)
        start = time.perf_counter()
        first = worker.check(0, sizes, want_witness=False)
        first_s = time.perf_counter() - start
        start = time.perf_counter()
        rest = [
            worker.check(index, sizes, want_witness=False)
            for index in range(1, cases)
        ]
        rest_s = time.perf_counter() - start
        runs[name] = {
            "first_query_s": round(first_s, 4),
            "remaining_queries_s": round(rest_s, 3),
            "first_query_conflicts": first[3]["conflicts"],
            "verdict_sha": verdict_sha([first[0]] + [p[0] for p in rest]),
        }

    # Reduction on/off must answer the same fan-out byte-identically.
    shas = {}
    for reduction in (True, False):
        session = VerificationSession(spec=spec, clause_reduction=reduction)
        shas[reduction] = verdict_sha(
            [r.verdict.value for r in session.verify_all_cases()]
        )
    # Worker payloads say "sat"/"unsat"; sessions say verdict labels —
    # compare within each vocabulary, then across via equality of pairs.
    assert runs["cold"]["verdict_sha"] == runs["warm"]["verdict_sha"], (
        "warm vs cold worker verdicts diverged"
    )
    assert shas[True] == shas[False], "reduction on/off verdicts diverged"
    cold_s, warm_s = (
        runs["cold"]["first_query_s"],
        runs["warm"]["first_query_s"],
    )
    return {
        "mesh": f"{mesh}x{mesh}",
        "cases": cases,
        "parent_prime_s": round(prime_s, 3),
        "learned_shipped": len(snapshots["warm"].solver.learned),
        "cold": runs["cold"],
        "warm": runs["warm"],
        "first_query_speedup": round(cold_s / warm_s, 2),
        "verdict_sha_warm_equals_cold": True,
        "verdict_sha_reduction_on_off_equal": True,
        "verdict_sha": runs["cold"]["verdict_sha"],
    }


def bench_bounded_session(n_sizes: int) -> dict:
    """Monotone Figure-4 sweep: reduction on vs off over one session."""
    network = abstract_mi_mesh(2, 2, queue_size=2).network
    spec = SessionSpec(network, parametric_queues=True)
    spec.generate_invariants()

    def run(reduction: bool):
        session = VerificationSession(
            spec=spec,
            clause_reduction=reduction,
            reduction_opts=SWEEP_REDUCTION_OPTS if reduction else None,
        )
        verdicts = []
        start = time.perf_counter()
        for size in range(1, n_sizes + 1):
            session.resize_queues(size)
            session.seed_phases_from_witness()
            verdicts.append(session.verify().verdict.value)
        if reduction:
            # End-of-workload housekeeping: a long-lived session compacts
            # before idling, so its retained state is the measured state.
            session.compact()
        elapsed = time.perf_counter() - start
        sat_stats = session.solver._sat.stats
        return {
            "verdicts": verdicts,
            "live_learned": session.solver.learned_count(),
            "learned_total": sat_stats["learned"],
            "reductions": sat_stats["reductions"],
            "deleted": sat_stats["reduced"],
            "kept_glue": sat_stats["kept_glue"],
            "time_s": round(elapsed, 2),
            "queries_per_s": round(n_sizes / elapsed, 1),
        }

    bounded = run(True)
    unbounded = run(False)
    assert bounded["verdicts"] == unbounded["verdicts"], (
        "bounded vs unbounded sweep verdicts diverged"
    )
    sha = verdict_sha(list(bounded.pop("verdicts")))
    unbounded.pop("verdicts")
    return {
        "workload": f"monotone sweep, sizes 1..{n_sizes}, 2x2 mesh + invariants",
        "queries": n_sizes,
        "reduction_opts": SWEEP_REDUCTION_OPTS,
        "bounded": bounded,
        "unbounded": unbounded,
        "live_clause_ratio": round(
            bounded["live_learned"] / max(1, unbounded["live_learned"]), 3
        ),
        "verdict_sha_reduction_on_off_equal": True,
        "verdict_sha": sha,
    }


def run_benchmarks(smoke: bool = False) -> dict:
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
        "targets_asserted": not smoke,
        "warm_worker_fanout": bench_warm_worker(mesh=2 if smoke else 3),
        "bounded_session_sweep": bench_bounded_session(
            n_sizes=40 if smoke else 200
        ),
    }


def check_acceptance(results: dict) -> None:
    """Verdict identity always; performance targets in full runs only."""
    fanout = results["warm_worker_fanout"]
    bounded = results["bounded_session_sweep"]
    assert fanout["verdict_sha_warm_equals_cold"]
    assert fanout["verdict_sha_reduction_on_off_equal"]
    assert bounded["verdict_sha_reduction_on_off_equal"]
    if not results["targets_asserted"]:
        return
    assert fanout["first_query_speedup"] >= WARM_SPEEDUP_TARGET, (
        f"warm first query only {fanout['first_query_speedup']}x faster "
        f"than cold (target {WARM_SPEEDUP_TARGET}x)"
    )
    assert bounded["live_clause_ratio"] < BOUNDED_RATIO_TARGET, (
        f"bounded session kept {bounded['live_clause_ratio']:.0%} of the "
        f"unbounded clause count (target < {BOUNDED_RATIO_TARGET:.0%})"
    )


def _record_and_report(results: dict) -> None:
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    fanout = results["warm_worker_fanout"]
    bounded = results["bounded_session_sweep"]
    report(
        "E9: learned-clause lifecycle (BENCH_warmstart.json)",
        [
            f"{fanout['mesh']} fan-out first query: cold "
            f"{fanout['cold']['first_query_s']}s vs warm "
            f"{fanout['warm']['first_query_s']}s "
            f"({fanout['first_query_speedup']}x, "
            f"{fanout['learned_shipped']} clauses shipped)",
            f"{bounded['queries']}-query sweep: bounded ends with "
            f"{bounded['bounded']['live_learned']} live clauses vs "
            f"{bounded['unbounded']['live_learned']} unbounded "
            f"(ratio {bounded['live_clause_ratio']}, "
            f"{bounded['bounded']['reductions']} reductions)",
            f"throughput: {bounded['bounded']['queries_per_s']} q/s bounded "
            f"vs {bounded['unbounded']['queries_per_s']} q/s unbounded",
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny mesh + short sweep; skips the wall-clock acceptance gates",
    )
    args = parser.parse_args()
    results = run_benchmarks(smoke=args.smoke)
    _record_and_report(results)
    check_acceptance(results)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
