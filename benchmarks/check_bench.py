#!/usr/bin/env python3
"""CI benchmark-regression gate: fresh ``BENCH_*.json`` vs committed baselines.

Compares freshly produced benchmark records (repository root, written by
the ``bench_*.py`` standalone runs) against the committed baselines in
``benchmarks/baselines/`` — records produced by the *same invocations* CI
uses, so the comparison is config-for-config.  The job fails on

* **verdict divergence** — any ``verdict_sha`` (or ``*_verdict_sha``)
  field differing from the baseline, or any ``verdicts_*`` boolean flag
  that is not ``True`` in the fresh record.  Verdict bytes are canonical
  and machine-independent, so this gate holds on every runner.
* **slowdown** — any ``speedup`` field falling more than ``--tolerance``
  (default 30%) below its baseline value.  Wall-clock ratios are only
  meaningful on runners that can actually parallelise, so this half of
  the gate arms itself on >= 4 CPUs (GitHub's hosted runners qualify;
  a laptop container does not produce false failures).
* **config drift** — fresh and baseline records disagreeing on their
  ``smoke`` flag, or a baseline sha path missing from the fresh record:
  both mean the gate is comparing different experiments, which is a CI
  misconfiguration, not a pass.

Usage::

    python benchmarks/check_bench.py BENCH_parallel.json BENCH_invariants.json
    python benchmarks/check_bench.py --baseline-dir benchmarks/baselines \
        --fresh-dir . --tolerance 0.3 BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = Path(__file__).resolve().parent / "baselines"
DEFAULT_TOLERANCE = 0.30
SPEEDUP_CPU_GATE = 4


def walk_fields(record, path=""):
    """Yield ``(dotted.path, value)`` for every leaf of a JSON record."""
    if isinstance(record, dict):
        for key, value in record.items():
            yield from walk_fields(value, f"{path}.{key}" if path else key)
    elif isinstance(record, list):
        for index, value in enumerate(record):
            yield from walk_fields(value, f"{path}[{index}]")
    else:
        yield path, record


def _leaf_name(path: str) -> str:
    return path.rsplit(".", 1)[-1]


def is_sha_field(path: str) -> bool:
    return _leaf_name(path).endswith("verdict_sha")


def is_verdict_flag(path: str) -> bool:
    name = _leaf_name(path)
    return name.startswith("verdicts_") or name.startswith("verdict_sha_")


def is_speedup_field(path: str) -> bool:
    name = _leaf_name(path)
    return name == "speedup" or name.endswith("_speedup")


def compare_records(
    name: str,
    fresh: dict,
    baseline: dict,
    tolerance: float,
    check_speed: bool,
) -> list[str]:
    """All gate failures for one record pair (empty = pass)."""
    failures: list[str] = []
    fresh_fields = dict(walk_fields(fresh))
    baseline_fields = dict(walk_fields(baseline))

    if baseline_fields.get("smoke") != fresh_fields.get("smoke"):
        # Keep going: the remaining checks are apples-to-oranges under
        # drift, but an early return here would hide every other failure
        # in this record from the report.
        failures.append(
            f"{name}: config drift — baseline smoke="
            f"{baseline_fields.get('smoke')} vs fresh "
            f"{fresh_fields.get('smoke')} (regenerate the baseline with "
            "the CI invocation)"
        )

    for path, value in baseline_fields.items():
        if is_sha_field(path):
            fresh_value = fresh_fields.get(path)
            if fresh_value is None:
                failures.append(
                    f"{name}: verdict field {path} missing from the fresh "
                    "record"
                )
            elif fresh_value != value:
                failures.append(
                    f"{name}: VERDICT DIVERGENCE at {path}: fresh "
                    f"{fresh_value} != baseline {value}"
                )

    for path, value in fresh_fields.items():
        if is_verdict_flag(path) and isinstance(value, bool) and not value:
            failures.append(f"{name}: verdict flag {path} is False")

    if check_speed:
        for path, value in baseline_fields.items():
            if not is_speedup_field(path):
                continue
            if not isinstance(value, (int, float)) or value <= 0:
                continue
            fresh_value = fresh_fields.get(path)
            if not isinstance(fresh_value, (int, float)):
                continue
            floor = value * (1.0 - tolerance)
            if fresh_value < floor:
                failures.append(
                    f"{name}: SLOWDOWN at {path}: fresh {fresh_value} is "
                    f">{tolerance:.0%} below baseline {value} "
                    f"(floor {floor:.2f})"
                )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("records", nargs="+",
                        help="record file names, e.g. BENCH_parallel.json")
    parser.add_argument("--baseline-dir", type=Path,
                        default=DEFAULT_BASELINE_DIR,
                        help="committed baseline directory")
    parser.add_argument("--fresh-dir", type=Path, default=REPO_ROOT,
                        help="where the fresh records were written")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup regression "
                             "(default 0.30)")
    args = parser.parse_args()

    cpus = os.cpu_count() or 1
    check_speed = cpus >= SPEEDUP_CPU_GATE
    print(
        f"check_bench: {len(args.records)} record(s), tolerance "
        f"{args.tolerance:.0%}, speed gate "
        f"{'ARMED' if check_speed else f'off ({cpus} < {SPEEDUP_CPU_GATE} CPUs)'}"
    )

    failures: list[str] = []
    for record in args.records:
        name = Path(record).name
        fresh_path = args.fresh_dir / name
        baseline_path = args.baseline_dir / name
        if not baseline_path.exists():
            failures.append(
                f"{name}: no committed baseline at {baseline_path} "
                "(generate one with the CI invocation and commit it)"
            )
            continue
        if not fresh_path.exists():
            failures.append(
                f"{name}: fresh record missing at {fresh_path} "
                "(did the benchmark step run?)"
            )
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        record_failures = compare_records(
            name, fresh, baseline, args.tolerance, check_speed
        )
        failures.extend(record_failures)
        print(f"  {name}: {'FAIL' if record_failures else 'ok'}")

    if failures:
        print("\nbenchmark-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
