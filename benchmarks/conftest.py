"""Shared benchmark helpers.

Every benchmark prints the rows/series of the paper artefact it
regenerates (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them); EXPERIMENTS.md records the captured values.
"""

from __future__ import annotations


def report(title: str, rows: list[str]) -> None:
    print(f"\n[{title}]")
    for row in rows:
        print(f"  {row}")
