#!/usr/bin/env python3
"""The Figure-3 cross-layer deadlock: abstract MI on a 2×2 mesh.

With all queues sized 2, the composition of a deadlock-free protocol and a
deadlock-free XY mesh deadlocks: the directory waits for the owner's putX,
which cannot reach it past an ejection queue full of other caches' stalled
requests.  With queue size 3 the same system verifies deadlock-free.

One parametric session carries the whole script: it finds the size-2
candidates, a replayed explicit-state trace *confirms* one is reachable,
and ``resize_queues(3)`` re-proves the system deadlock-free without
rebuilding the encoding.  With ``--jobs N`` the queries are answered by a
worker pool (``ParallelVerificationSession``) over the same encoding —
witness enumeration stays on the pool's local session, everything else
fans out.

Run:  python examples/mesh_deadlock.py [--jobs 4]
"""

import argparse

from repro import ParallelVerificationSession, VerificationSession
from repro.mc import Explorer
from repro.protocols import abstract_mi_mesh


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1,
                        help="answer queries on a pool of N workers")
    parser.add_argument("--stats", action="store_true",
                        help="print learned-clause lifecycle counters")
    args = parser.parse_args()

    # --- queue size 2: cross-layer deadlock --------------------------------
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    print(f"2x2 mesh, queue size 2: {inst.network.stats()}")
    if args.jobs > 1:
        make_session = ParallelVerificationSession(
            inst.network, jobs=args.jobs, parametric_queues=True
        )
        print(f"(parallel session, {args.jobs} workers)")
    else:
        make_session = VerificationSession(inst.network, parametric_queues=True)
    with make_session as session:
        session.add_invariants()
        result = session.verify()
        print(f"ADVOCAT verdict: {result.verdict.value}")
        assert not result.deadlock_free

        explorer = Explorer(inst.network)
        print("\nsearching for a reachable witness among SMT candidates ...")
        # No small limit: candidate order varies with hash seeding, and the
        # reachable witness must be found wherever it lands in the
        # enumeration.
        for witness in session.enumerate_witnesses(limit=10_000):
            confirmation = explorer.confirm_witness(
                witness.automaton_states, witness.queue_contents,
                max_states=400_000,
            )
            if confirmation.found_deadlock:
                print("confirmed reachable deadlock:")
                print(witness.pretty())
                print(f"\ncounterexample trace "
                      f"({len(confirmation.trace)} steps):")
                for kind, subject, detail in confirmation.trace:
                    print(f"  {kind:8s} {subject:14s} {detail}")
                break
        else:
            raise SystemExit("no SMT candidate confirmed — unexpected")

        # --- queue size 3: deadlock-free — same session, new capacities ----
        session.resize_queues(3)
        result3 = session.verify()
        print(f"\n2x2 mesh, queue size 3: {result3.verdict.value}")
        assert result3.deadlock_free
        print(f"({result3.stats['invariant_count']} invariants; "
              f"solver: {result3.stats['solver']})")

        if args.stats:
            solver_stats = result3.stats["solver"]
            print("learned-clause lifecycle (this query): "
                  + ", ".join(f"{key}={solver_stats[key]}"
                              for key in ("learned", "reductions", "reduced",
                                          "kept_glue")))
            if args.jobs <= 1:
                print(f"live learned clauses in the session: "
                      f"{session.solver.learned_count()}")

    inst3 = abstract_mi_mesh(2, 2, queue_size=3)
    exploration = Explorer(inst3.network).find_deadlock(max_states=500_000)
    print(
        f"explicit-state cross-check: exhausted={exploration.exhausted}, "
        f"deadlock={exploration.found_deadlock}"
    )
    print("\nqueue size 2 deadlocks, queue size 3 is free — matches the paper.")


if __name__ == "__main__":
    main()
