#!/usr/bin/env python3
"""E8: the full MI protocol (GEM5-inspired) on a 2×2 mesh.

Shows the three-layer story for the realistic protocol:

1. the protocol alone is deadlock-free under synchronous handshaking;
2. on the mesh with tiny queues, ADVOCAT finds a cross-layer deadlock that
   explicit-state search confirms reachable;
3. at adequate sizes, exhaustive explicit-state search certifies deadlock
   freedom, while the equality-invariant SMT check still reports candidates
   — the false negatives the paper acknowledges (ordering information is
   future work).

Run:  python examples/mi_protocol.py
"""

from repro import verify
from repro.core import VarPool, derive_colors, generate_invariants
from repro.mc import Explorer, check_handshake_composition
from repro.protocols import mi_mesh
from repro.protocols.mi_gem5 import mi_ether


def main() -> None:
    # 1. handshake baseline
    baseline = check_handshake_composition(mi_ether(2, 2))
    print(f"protocol alone (rendezvous): deadlock-free={baseline.deadlock_free}, "
          f"{baseline.states_explored} states")

    # 2. cross-layer deadlock at queue size 2
    inst = mi_mesh(2, 2, queue_size=2)
    print(f"\n2x2 mesh (2 caches + directory + DMA): {inst.network.stats()}")
    print(f"cache states: {inst.caches[(0, 1)].states}")
    print(f"directory states ({len(inst.directory.states)} = 4 + "
          f"{len(inst.caches)} caches): {inst.directory.states}")

    pool = VarPool()
    invariants = generate_invariants(inst.network, derive_colors(inst.network), pool)
    print(f"\n{len(invariants)} invariants derived; examples:")
    for invariant in invariants[:3]:
        print(f"  {invariant.pretty()}")

    result = verify(inst.network)
    print(f"\nqueue size 2: ADVOCAT verdict = {result.verdict.value}")
    confirmation = Explorer(inst.network).find_deadlock(max_states=500_000)
    print(f"explicit-state confirmation: reachable deadlock = "
          f"{confirmation.found_deadlock} "
          f"({confirmation.states_explored} states, "
          f"trace of {len(confirmation.trace)} steps)")

    # 3. adequate queues: ground truth is deadlock-free
    inst3 = mi_mesh(2, 2, queue_size=3)
    exploration = Explorer(inst3.network).find_deadlock(max_states=2_000_000)
    print(f"\nqueue size 3: exhaustive explicit-state search — "
          f"exhausted={exploration.exhausted}, "
          f"deadlock={exploration.found_deadlock} "
          f"({exploration.states_explored} states)")
    result3 = verify(inst3.network)
    print(f"queue size 3: ADVOCAT verdict = {result3.verdict.value} "
          "(a false negative if 'deadlock-candidate' — the method is sound "
          "but incomplete, as the paper notes)")


if __name__ == "__main__":
    main()
