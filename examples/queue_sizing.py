#!/usr/bin/env python3
"""Figure 4: minimal deadlock-free queue sizes per mesh and directory position.

For each mesh size and directory position, find the smallest uniform queue
size for which ADVOCAT proves deadlock freedom.  The grid is declared as an
:class:`repro.core.Experiment` — one picklable ``ScenarioSpec`` per
(mesh, directory) point — and ``--jobs N`` shards *whole topology builds*
across N scenario workers, each building its own encoding and running the
search locally (see EXPERIMENTS.md for the grid ↔ figure mapping).

In this reproduction's router model every node has a single rotating
ejection queue, so the binding constraint is the total number of foreign
packets that can stall in front of the directory — which grows with the
cache count but not with the directory position (see EXPERIMENTS.md for
the comparison against the paper's per-direction numbers).

``--sweep`` probes the full Figure-4 *curve* (every size up to
``--max-size``) instead of binary-searching the boundary;
``--invariants`` picks the strengthening mode — ``eager`` (full set up
front), ``lazy`` (full set on the first surviving candidate),
``partial`` (ranked rows, CEGAR-style escalation — the mode that opens
the 4x4 and 6x6 meshes, where the full set is the dominant encoding
cost; tune with ``--rank-budget``) or ``none``; ``--save``/``--resume``
checkpoint the grid so an interrupted run re-builds nothing.

``--portfolio`` answers every probe through a racing
:class:`repro.core.PortfolioSession` instead of committing to one
strategy: diverse configurations (eager/lazy/partial × reduction and
phase-seed variants) race from the same snapshot, the first verdict
wins, losers are cancelled, and learned clauses flow between racers.
``--query-jobs`` caps the racer count; resumed runs seed each scenario
family's learned leader from the checkpoint's win record.

Run:  python examples/queue_sizing.py [--max-mesh 3] [--jobs 4] [--sweep]
      python examples/queue_sizing.py --max-mesh 6 --invariants partial
"""

import argparse

from repro.core import Experiment, ScenarioSpec
from repro.fabrics import MeshTopology


def fig4_experiment(
    max_mesh: int,
    sweep: bool = False,
    max_size: int = 6,
    invariants: str = "eager",
    rank_budget: int | None = None,
) -> Experiment:
    """The Figure-4 grid: mesh sizes × directory positions.

    Meshes beyond 3x3 (the paper's 4x4 and 6x6 scenarios) are included
    whenever ``max_mesh`` asks for them; on those, ``invariants=
    "partial"`` is the practical setting — the boundary searches probe
    deep size ranges and the ranked selection keeps each probe's
    encoding small.
    """
    scenarios = []
    for n in range(2, max_mesh + 1):
        for position in MeshTopology(n, n).probe_positions():
            scenarios.append(
                ScenarioSpec(
                    builder="abstract_mi_mesh",
                    kwargs={"width": n, "height": n, "directory_node": position},
                    mode="sweep" if sweep else "search",
                    sizes=tuple(range(1, max_size + 1)) if sweep else (),
                    invariants=invariants,
                    rank_budget=rank_budget,
                    label=f"{n}x{n} directory at {position}",
                )
            )
    return Experiment("fig4-queue-sizing", scenarios)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-mesh", type=int, default=3,
                        help="largest n for the n x n sweep (default 3)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard whole topology builds over N workers")
    parser.add_argument("--sweep", action="store_true",
                        help="probe the full size curve instead of the boundary")
    parser.add_argument("--max-size", type=int, default=6,
                        help="largest queue size probed with --sweep (default 6)")
    parser.add_argument("--invariants", default=None,
                        choices=["eager", "lazy", "partial", "none"],
                        help="invariant strengthening mode (default eager; "
                             "partial = ranked rows with CEGAR escalation, "
                             "recommended for --max-mesh 4/6)")
    parser.add_argument("--rank-budget", type=int, default=None,
                        help="partial mode: initial escalation batch size")
    parser.add_argument("--lazy", action="store_true",
                        help="alias for --invariants lazy")
    parser.add_argument("--portfolio", action="store_true",
                        help="race the strategy portfolio per probe (first "
                             "verdict wins, learned clauses shared); "
                             "--query-jobs caps the racer count")
    parser.add_argument("--query-jobs", type=int, default=None,
                        help="inner per-scenario worker budget (racers with "
                             "--portfolio); default 1")
    parser.add_argument("--save", metavar="PATH",
                        help="checkpoint results to PATH after each scenario")
    parser.add_argument("--resume", metavar="PATH",
                        help="skip scenarios already answered in PATH")
    parser.add_argument("--stats", action="store_true",
                        help="print per-scenario solver lifecycle totals")
    args = parser.parse_args()

    invariants = args.invariants or ("lazy" if args.lazy else "eager")
    experiment = fig4_experiment(
        args.max_mesh,
        sweep=args.sweep,
        max_size=args.max_size,
        invariants=invariants,
        rank_budget=args.rank_budget,
    )
    result = experiment.run(
        jobs=args.jobs,
        query_jobs=args.query_jobs,
        resume=args.resume,
        save_path=args.save,
        portfolio=True if args.portfolio else None,
    )
    if result.reused:
        print(f"(resumed: {result.reused} scenarios reused, "
              f"{result.computed} computed)")

    for scenario in result.scenarios:
        probed = ", ".join(
            f"{size}:{'free' if free else 'dl'}"
            for size, free in sorted(scenario.probes.items())
        )
        print(f"{scenario.label}: minimal queue size = "
              f"{scenario.minimal_size}   (probes: {probed})")
        if invariants != "eager":
            print(f"    invariants used: {scenario.invariants_used} "
                  f"(escalations: {scenario.lazy_escalations}, "
                  f"rows encoded: {scenario.invariants_generated}"
                  + (f", rank histogram: {scenario.rank_histogram}"
                     if invariants == "partial" else "")
                  + ")")
        if args.stats:
            totals = scenario.stats.get("solver_totals", {})
            print("    learned-clause lifecycle (scenario totals): "
                  + ", ".join(
                      f"{key}={totals.get(key, 0)}"
                      for key in ("learned", "reductions", "reduced",
                                  "kept_glue")
                  ))
    print(f"\ngrid: {len(result.scenarios)} scenarios, "
          f"build {result.build_seconds:.2f}s / "
          f"query {result.query_seconds:.2f}s")
    if args.portfolio:
        wins = result.strategy_wins()
        rendered = ", ".join(f"{name}:{count}" for name, count in wins.items())
        print(f"portfolio: {result.portfolio_races} races won by "
              f"{rendered or '<none>'}")


if __name__ == "__main__":
    main()
