#!/usr/bin/env python3
"""Figure 4: minimal deadlock-free queue sizes per mesh and directory position.

For each mesh size and directory position, binary-search the smallest
uniform queue size for which ADVOCAT proves deadlock freedom.

In this reproduction's router model every node has a single rotating
ejection queue, so the binding constraint is the total number of foreign
packets that can stall in front of the directory — which grows with the
cache count but not with the directory position (see EXPERIMENTS.md for
the comparison against the paper's per-direction numbers).

Run:  python examples/queue_sizing.py [--max-mesh 3]
"""

import argparse

from repro.core import minimal_queue_size
from repro.protocols import abstract_mi_mesh


def octant_positions(width: int, height: int) -> list[tuple[int, int]]:
    """Directory positions up to the mesh's symmetry group."""
    positions = []
    for y in range((height + 1) // 2):
        for x in range(y, (width + 1) // 2):
            positions.append((x, y))
    return positions


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-mesh", type=int, default=3,
                        help="largest n for the n x n sweep (default 3)")
    args = parser.parse_args()

    for n in range(2, args.max_mesh + 1):
        print(f"\n=== {n}x{n} mesh ===")
        for position in octant_positions(n, n):
            sizing = minimal_queue_size(
                lambda q, p=position: abstract_mi_mesh(
                    n, n, queue_size=q, directory_node=p
                ).network
            )
            print(f"  directory at {position}: minimal queue size = "
                  f"{sizing.minimal_size}   (probes: "
                  + ", ".join(
                      f"{s}:{'free' if ok else 'dl'}"
                      for s, ok in sorted(sizing.probes.items())
                  ) + ")")


if __name__ == "__main__":
    main()
