#!/usr/bin/env python3
"""Figure 4: minimal deadlock-free queue sizes per mesh and directory position.

For each mesh size and directory position, binary-search the smallest
uniform queue size for which ADVOCAT proves deadlock freedom.

In this reproduction's router model every node has a single rotating
ejection queue, so the binding constraint is the total number of foreign
packets that can stall in front of the directory — which grows with the
cache count but not with the directory position (see EXPERIMENTS.md for
the comparison against the paper's per-direction numbers).

With ``--jobs N`` the binary search is replaced by a *sharded sweep*:
every candidate size up to ``--max-size`` is probed, striped across N
pool workers that each hold one rehydrated parametric session (see
``repro.core.sweep_queue_sizes``) — the full Figure-4 curve instead of
just its boundary.

Run:  python examples/queue_sizing.py [--max-mesh 3] [--jobs 4]
"""

import argparse

from repro.core import minimal_queue_size, sweep_queue_sizes
from repro.protocols import abstract_mi_mesh


def octant_positions(width: int, height: int) -> list[tuple[int, int]]:
    """Directory positions up to the mesh's symmetry group."""
    positions = []
    for y in range((height + 1) // 2):
        for x in range(y, (width + 1) // 2):
            positions.append((x, y))
    return positions


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-mesh", type=int, default=3,
                        help="largest n for the n x n sweep (default 3)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard a full size sweep over N pool workers")
    parser.add_argument("--max-size", type=int, default=6,
                        help="largest queue size probed with --jobs (default 6)")
    parser.add_argument("--stats", action="store_true",
                        help="print learned-clause lifecycle counters per sweep")
    args = parser.parse_args()

    for n in range(2, args.max_mesh + 1):
        print(f"\n=== {n}x{n} mesh ===")
        for position in octant_positions(n, n):
            build = lambda q, p=position: abstract_mi_mesh(  # noqa: E731
                n, n, queue_size=q, directory_node=p
            ).network
            if args.jobs > 1:
                sizing = sweep_queue_sizes(
                    build, range(1, args.max_size + 1), jobs=args.jobs
                )
            else:
                sizing = minimal_queue_size(build)
            print(f"  directory at {position}: minimal queue size = "
                  f"{sizing.minimal_size}   (probes: "
                  + ", ".join(
                      f"{s}:{'free' if ok else 'dl'}"
                      for s, ok in sorted(sizing.probes.items())
                  ) + ")")
            if args.stats:
                totals = {"learned": 0, "reductions": 0, "reduced": 0,
                          "kept_glue": 0}
                for result in sizing.results.values():
                    for key in totals:
                        totals[key] += result.stats["solver"].get(key, 0)
                print("    learned-clause lifecycle (sweep totals): "
                      + ", ".join(f"{k}={v}" for k, v in totals.items()))


if __name__ == "__main__":
    main()
