#!/usr/bin/env python3
"""Quickstart: verify the paper's running example (Figure 1).

Builds the two-automata/two-queue network, derives the cross-layer
invariants automatically, shows the deadlock candidates that plain
block/idle analysis reports, and proves deadlock freedom once the
invariants are added — reproducing Sections 1 and 3 of the paper.

Run:  python examples/quickstart.py
"""

from repro import verify
from repro.core import VarPool, derive_colors, generate_invariants
from repro.mc import Explorer
from repro.netlib import running_example


def main() -> None:
    example = running_example(queue_size=2)
    network = example.network
    print(f"network: {network.stats()}")

    # 1. Automatic cross-layer invariants (Section 4).
    pool = VarPool()
    invariants = generate_invariants(network, derive_colors(network), pool)
    print(f"\n{len(invariants)} invariants derived automatically:")
    for invariant in invariants:
        print(f"  {invariant.pretty()}")

    # 2. Plain block/idle detection reports unreachable candidates
    #    (Section 3: the two candidates (s1,t0)/empty and (s0,t1)/full).
    without = verify(network, use_invariants=False)
    print(f"\nwithout invariants: {without.verdict.value}")
    if without.witness:
        print(without.witness.pretty())

    # 3. With invariants the system is proved deadlock-free (Section 1).
    result = verify(network, use_invariants=True)
    print(f"\nwith invariants: {result.verdict.value}")
    assert result.deadlock_free

    # 4. Cross-check with exhaustive explicit-state search (UPPAAL stand-in).
    exploration = Explorer(network).find_deadlock()
    print(
        f"explicit-state check: exhausted={exploration.exhausted}, "
        f"states={exploration.states_explored}, "
        f"deadlock={exploration.found_deadlock}"
    )
    assert exploration.exhausted and not exploration.found_deadlock
    print("\nrunning example verified deadlock-free — matches the paper.")


if __name__ == "__main__":
    main()
