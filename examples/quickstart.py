#!/usr/bin/env python3
"""Quickstart: verify the paper's running example (Figure 1).

Builds the two-automata/two-queue network and drives one incremental
``VerificationSession`` through the paper's storyline: plain block/idle
analysis reports (unreachable) deadlock candidates, the automatically
derived cross-layer invariants are conjoined, and the same session —
reusing its encoding and every learned clause — then proves deadlock
freedom, reproducing Sections 1 and 3 of the paper.

Run:  python examples/quickstart.py
"""

from repro import VerificationSession
from repro.mc import Explorer
from repro.netlib import running_example


def main() -> None:
    example = running_example(queue_size=2)
    network = example.network
    print(f"network: {network.stats()}")

    # One session: colors, block/idle equations and the tagged deadlock
    # assertion are built exactly once; every query below is incremental.
    session = VerificationSession(network)

    # 1. Plain block/idle detection reports unreachable candidates
    #    (Section 3: the two candidates (s1,t0)/empty and (s0,t1)/full).
    without = session.verify()
    print(f"\nwithout invariants: {without.verdict.value}")
    for witness in session.enumerate_witnesses(limit=4):
        print(witness.pretty())

    # 2. Ask about one disjunct only: can queue q0 hold a stuck request?
    q0_result = session.verify_channel(example.q_req, "req")
    print(f"\nq0 stuck-request query: {q0_result.verdict.value}")

    # 3. Automatic cross-layer invariants (Section 4), conjoined in place.
    invariants = session.add_invariants()
    print(f"\n{len(invariants)} invariants derived automatically:")
    for invariant in invariants:
        print(f"  {invariant.pretty()}")

    # 4. The very same session now proves deadlock freedom (Section 1).
    result = session.verify()
    print(f"\nwith invariants: {result.verdict.value}")
    assert result.deadlock_free

    # 5. Cross-check with exhaustive explicit-state search (UPPAAL stand-in).
    exploration = Explorer(network).find_deadlock()
    print(
        f"explicit-state check: exhausted={exploration.exhausted}, "
        f"states={exploration.states_explored}, "
        f"deadlock={exploration.found_deadlock}"
    )
    assert exploration.exhausted and not exploration.found_deadlock
    print("\nrunning example verified deadlock-free — matches the paper.")


if __name__ == "__main__":
    main()
