#!/usr/bin/env python3
"""E6: virtual channels do not remove the cross-layer deadlock.

The paper: "A common approach to resolve deadlocks is to add virtual
channels for different message types. The deadlock as described above,
however, cannot be resolved this way."  This script verifies the 2×2 case
study with and without VCs at the deadlocking size, then compares minimal
queue sizes — the latter as a two-point experiment grid over the ``vcs``
axis, so ``--jobs 2`` answers both topologies on separate workers.

Run:  python examples/vc_study.py [--jobs 2]
"""

import argparse

from repro import verify
from repro.core import Experiment
from repro.protocols import abstract_mi_mesh


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard the VC grid over N scenario workers")
    args = parser.parse_args()

    for vcs in (1, 2):
        inst = abstract_mi_mesh(2, 2, queue_size=2, vcs=vcs)
        result = verify(inst.network)
        label = "no VCs" if vcs == 1 else f"{vcs} VCs (req/resp split)"
        print(f"2x2, queue size 2, {label}: {result.verdict.value}  "
              f"[{inst.network.stats()['queues']} queues]")
        assert not result.deadlock_free, "VCs must not resolve the deadlock"

    experiment = Experiment.grid(
        "vc-study",
        "abstract_mi_mesh",
        axes={"vcs": [1, 2]},
        base={"width": 2, "height": 2},
        mode="search",
    )
    result = experiment.run(jobs=args.jobs)
    print("\nminimal deadlock-free queue size:")
    for vcs, scenario in zip((1, 2), result.scenarios):
        label = "without VCs" if vcs == 1 else "per-VC with 2 VCs"
        print(f"  {label}: {scenario.minimal_size}")

    print("\nthe deadlock survives VCs — matches the paper's claim.")


if __name__ == "__main__":
    main()
