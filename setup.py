"""Legacy setuptools shim.

The offline environment ships a setuptools without PEP 660 editable-wheel
support, so ``pip install -e .`` needs this classic entry point.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
