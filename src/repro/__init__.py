"""ADVOCAT — Automated Deadlock Verification for On-chip Cache coherence
and InTerconnects (reproduction of Verbeek et al., DATE 2016).

Quickstart::

    from repro import verify
    from repro.netlib import running_example

    result = verify(running_example().network)
    assert result.deadlock_free
    for invariant in result.invariants:
        print(invariant.pretty())

See :mod:`repro.fabrics` for 2D-mesh construction, :mod:`repro.protocols`
for the MI coherence protocols of the case study, and :mod:`repro.mc` for
the explicit-state model checker that confirms deadlock candidates.
"""

from .core import (
    DeadlockWitness,
    Experiment,
    ExperimentResult,
    Invariant,
    ParallelVerificationSession,
    ScenarioResult,
    ScenarioSpec,
    SessionSpec,
    Verdict,
    VerificationResult,
    VerificationSession,
    derive_colors,
    encode_deadlock,
    generate_invariants,
    minimal_queue_size,
    sweep_queue_sizes,
    verify,
)

__version__ = "1.3.0"

__all__ = [
    "SessionSpec",
    "VerificationSession",
    "ParallelVerificationSession",
    "Experiment",
    "ExperimentResult",
    "ScenarioSpec",
    "ScenarioResult",
    "verify",
    "sweep_queue_sizes",
    "derive_colors",
    "generate_invariants",
    "encode_deadlock",
    "minimal_queue_size",
    "Invariant",
    "Verdict",
    "VerificationResult",
    "DeadlockWitness",
    "__version__",
]
