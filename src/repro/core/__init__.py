"""ADVOCAT core: the paper's verification pipeline.

Public entry points:

* :class:`VerificationSession` — incremental engine: build the encoding
  once, answer many queries (full check, per-channel checks, witness
  enumeration, queue resizing) by assumption.
* :func:`verify` — one-shot full pipeline (colors → invariants →
  block/idle → SMT), a thin wrapper over a throwaway session.
* :func:`derive_colors` — the T-derivation (Section 3).
* :func:`generate_invariants` — cross-layer invariants (Section 4).
* :func:`encode_deadlock` — block/idle equations + deadlock assertion.
* :func:`minimal_queue_size` — Figure-4 style queue sizing on one session.
"""

from .colors import ColorDerivationError, ColorMap, derive_colors
from .deadlock import DeadlockCase, DeadlockEncoding, encode_deadlock
from .engine import VerificationSession
from .invariants import build_flow_rows, generate_invariants
from .proof import enumerate_witnesses, verify
from .result import DeadlockWitness, Invariant, Verdict, VerificationResult
from .sizing import SizingResult, minimal_queue_size
from .vars import VarPool, color_label

__all__ = [
    "VerificationSession",
    "verify",
    "enumerate_witnesses",
    "derive_colors",
    "generate_invariants",
    "encode_deadlock",
    "minimal_queue_size",
    "ColorMap",
    "ColorDerivationError",
    "DeadlockCase",
    "DeadlockEncoding",
    "DeadlockWitness",
    "Invariant",
    "Verdict",
    "VerificationResult",
    "SizingResult",
    "VarPool",
    "color_label",
    "build_flow_rows",
]
