"""ADVOCAT core: the paper's verification pipeline.

Public entry points:

* :class:`SessionSpec` — the build phase: network → colors → encoding
  (→ invariants), computed once and shared by any number of sessions.
* :class:`VerificationSession` — incremental engine: load a spec into one
  solver, answer many queries (full check, per-channel checks, witness
  enumeration, queue resizing) by assumption.
* :class:`ParallelVerificationSession` — same query API, answered by a
  worker pool over serialized session snapshots.
* :func:`verify` — one-shot full pipeline (colors → invariants →
  block/idle → SMT), a thin wrapper over a throwaway session.
* :func:`derive_colors` — the T-derivation (Section 3).
* :func:`generate_invariants` — cross-layer invariants (Section 4).
* :func:`encode_deadlock` — block/idle equations + deadlock assertion.
* :func:`minimal_queue_size` — Figure-4 style queue sizing on one session.
* :func:`sweep_queue_sizes` — the Figure-4 curve, sharded over workers.
* :class:`Experiment` / :class:`ScenarioSpec` — declarative topology grids
  (mesh sizes × directory positions × …) sharded across scenario workers,
  with resumable JSON results (:class:`ExperimentResult`).
* :class:`Deadline` / :class:`RetryPolicy` / :class:`FaultPlan` — the
  fault-tolerance layer (:mod:`repro.core.resilience`): wall-clock and
  conflict budgets that surface as ``TIMEOUT`` verdicts, worker-crash
  recovery with deterministic backoff, and the fault-injection harness
  behind the chaos test suite.
* :class:`VerificationService` / :class:`ServiceClient` — the
  verification-as-a-service layer (:mod:`repro.core.service`): a
  long-lived asyncio TCP server answering spec-described queries
  through three content-addressed cache tiers
  (:mod:`repro.core.cache` — hot live sessions under LRU, warm pickled
  snapshots, cold verdict store).
"""

from .cache import (
    LruSessionCache,
    SnapshotStore,
    VerdictStore,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    sha_bytes,
    stable_hash,
    verdict_sha,
)
from .colors import ColorDerivationError, ColorMap, derive_colors
from .deadlock import DeadlockCase, DeadlockEncoding, encode_deadlock
from .engine import (
    SessionSnapshot,
    SessionSpec,
    VerificationSession,
    escalate_partial,
)
from .experiments import (
    Experiment,
    ExperimentResult,
    ScenarioResult,
    ScenarioSpec,
    register_builder,
    registered_builders,
    resolve_builder,
    run_scenario,
)
from .invariants import (
    DEFAULT_RANK_BUDGET,
    DEFAULT_RANK_GROWTH,
    InvariantSelector,
    build_flow_rows,
    encode_invariant_rows,
    generate_invariants,
    invariant_features,
    rank_invariants,
)
from .parallel import (
    ParallelVerificationSession,
    WorkerSession,
    default_jobs,
    discard_scenario_executor,
    nested_jobs,
    scenario_executor,
    shutdown_scenario_executors,
)
from .portfolio import (
    PortfolioSession,
    StrategyConfig,
    default_strategies,
    racer_budget,
)
from .proof import enumerate_witnesses, verify
from .resilience import (
    Deadline,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    WorkerCrashError,
    WorkerFault,
    WorkerHangError,
    active_fault_plan,
    install_fault_plan,
)
from .result import DeadlockWitness, Invariant, Verdict, VerificationResult
from .service import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    ServiceSession,
    VerificationService,
)
from .sizing import SizingResult, minimal_queue_size, sweep_queue_sizes
from .vars import VarPool, color_label

__all__ = [
    "SessionSpec",
    "SessionSnapshot",
    "VerificationSession",
    "ParallelVerificationSession",
    "WorkerSession",
    "PortfolioSession",
    "StrategyConfig",
    "default_strategies",
    "racer_budget",
    "Experiment",
    "ExperimentResult",
    "ScenarioSpec",
    "ScenarioResult",
    "register_builder",
    "registered_builders",
    "resolve_builder",
    "run_scenario",
    "default_jobs",
    "nested_jobs",
    "scenario_executor",
    "discard_scenario_executor",
    "shutdown_scenario_executors",
    "sweep_queue_sizes",
    "verify",
    "enumerate_witnesses",
    "derive_colors",
    "generate_invariants",
    "encode_deadlock",
    "minimal_queue_size",
    "ColorMap",
    "ColorDerivationError",
    "DeadlockCase",
    "DeadlockEncoding",
    "DeadlockWitness",
    "Invariant",
    "Verdict",
    "VerificationResult",
    "SizingResult",
    "VarPool",
    "color_label",
    "build_flow_rows",
    "InvariantSelector",
    "invariant_features",
    "rank_invariants",
    "encode_invariant_rows",
    "escalate_partial",
    "DEFAULT_RANK_BUDGET",
    "DEFAULT_RANK_GROWTH",
    "Deadline",
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "WorkerFault",
    "WorkerCrashError",
    "WorkerHangError",
    "active_fault_plan",
    "install_fault_plan",
    "LruSessionCache",
    "SnapshotStore",
    "VerdictStore",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json",
    "sha_bytes",
    "stable_hash",
    "verdict_sha",
    "VerificationService",
    "ServiceSession",
    "ServiceClient",
    "ServiceError",
    "AsyncServiceClient",
]
