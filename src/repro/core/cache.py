"""Content-addressed caching primitives for verification-as-a-service.

The service layer (:mod:`repro.core.service`) answers queries through
three tiers, cheapest first:

* **cold store** (:class:`VerdictStore`) — a content-addressed verdict
  archive keyed by ``(encoding_hash, query_key)``.  A hit costs one dict
  lookup (disk entries are memoised on first read); a million identical
  mesh queries cost exactly one solve.
* **hot tier** (:class:`LruSessionCache`) — live sessions under LRU
  eviction.  Eviction calls the entry's ``close()`` (the
  :class:`~repro.core.engine.VerificationSession` contract), releasing
  any worker processes the entry holds.
* **warm tier** (:class:`SnapshotStore`) — pickled
  :class:`~repro.core.engine.SessionSnapshot` images on disk keyed by
  :meth:`~repro.core.engine.SessionSnapshot.content_hash`, plus an index
  mapping :meth:`~repro.core.experiments.ScenarioSpec.key` identities to
  encoding hashes so a request can reach its snapshot without building
  the network.

Everything on-disk is written through :func:`atomic_write_bytes` —
serialise to a temp file in the *same directory*, then ``os.replace`` —
so a crash mid-write can corrupt nothing: readers see either the old
image or the new one, never a torn file.  The same helper backs
``ExperimentResult.save`` checkpoints.

This module also hosts the canonical hashing helpers that the
benchmarks previously each re-implemented: :func:`verdict_sha` (16-hex
SHA-256 over a canonical JSON payload) and :func:`sha_bytes` (the same
digest over pre-canonicalised bytes).  They are byte-compatible with
the historic per-bench copies — committed baseline SHAs do not move.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "canonical_json",
    "stable_hash",
    "verdict_sha",
    "sha_bytes",
    "VerdictStore",
    "SnapshotStore",
    "LruSessionCache",
]


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target's directory so the final rename
    never crosses a filesystem boundary (``os.replace`` is atomic only
    within one).  On any failure the temp file is removed and the
    original file — if there was one — is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload: Any, indent: int = 2) -> None:
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------


def canonical_json(payload: Any) -> str:
    """The one canonical JSON form: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stable_hash(payload: Any) -> str:
    """Full SHA-256 hex digest of ``payload``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def verdict_sha(payload: Any) -> str:
    """16-hex SHA-256 over ``payload`` serialised exactly as the benchmark
    records historically did: ``json.dumps(payload, separators=(",",":"))``
    with **no** key sorting — callers pre-canonicalise (sorted lists of
    pairs, verdict-value lists) so committed baseline SHAs stay fixed."""
    canonical = json.dumps(payload, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def sha_bytes(data: bytes) -> str:
    """16-hex SHA-256 over pre-canonicalised bytes (e.g. the output of
    ``ExperimentResult.verdict_bytes()``)."""
    return hashlib.sha256(data).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Cold tier: content-addressed verdict store
# ---------------------------------------------------------------------------


class VerdictStore:
    """Content-addressed verdict archive keyed by ``(encoding_hash, query)``.

    Entries are canonical JSON payloads (verdict value plus whatever
    non-canonical extras the service chooses to keep — witnesses, cores).
    Disk layout: ``<root>/verdicts/<encoding_hash>/<sha(query)>.json``;
    every file carries its query key for debuggability.  All reads are
    memoised, so steady-state hits never touch the filesystem.  Pass
    ``root=None`` for a memory-only store.
    """

    def __init__(self, root: str | Path | None) -> None:
        self.root = Path(root) / "verdicts" if root is not None else None
        self._memo: dict[tuple[str, str], dict] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, encoding_hash: str, query_key: str) -> Path:
        assert self.root is not None
        digest = hashlib.sha256(query_key.encode()).hexdigest()[:32]
        return self.root / encoding_hash / f"{digest}.json"

    def get(self, encoding_hash: str, query_key: str) -> dict | None:
        memo_key = (encoding_hash, query_key)
        payload = self._memo.get(memo_key)
        if payload is None and self.root is not None:
            path = self._path(encoding_hash, query_key)
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                entry = None
            if entry is not None and entry.get("query") == query_key:
                payload = entry["payload"]
                self._memo[memo_key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, encoding_hash: str, query_key: str, payload: dict) -> None:
        self._memo[(encoding_hash, query_key)] = payload
        if self.root is not None:
            atomic_write_json(
                self._path(encoding_hash, query_key),
                {"query": query_key, "payload": payload},
            )

    def __len__(self) -> int:
        return len(self._memo)


# ---------------------------------------------------------------------------
# Warm tier: pickled session snapshots
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Pickled session snapshots keyed by encoding content hash.

    Two maps live here: ``<root>/snapshots/<hash>.pkl`` (the snapshot
    image, with a ``<hash>.meta.json`` sidecar for cheap metadata such
    as deadlock-case labels and default sizes) and
    ``<root>/snapshots/index.json`` mapping a spec identity (the SHA of
    ``ScenarioSpec.key()``) to its encoding hash, so repeat requests
    skip the network build entirely.  Pass ``root=None`` for a
    memory-only store (snapshots kept live, nothing pickled).
    """

    def __init__(self, root: str | Path | None) -> None:
        self.root = Path(root) / "snapshots" if root is not None else None
        self._index: dict[str, str] | None = None
        self._snapshots: dict[str, Any] = {}
        self._meta: dict[str, dict] = {}

    # -- spec-key index -------------------------------------------------
    def _index_path(self) -> Path:
        assert self.root is not None
        return self.root / "index.json"

    def _load_index(self) -> dict[str, str]:
        if self._index is None:
            self._index = {}
            if self.root is not None:
                try:
                    self._index = dict(
                        json.loads(self._index_path().read_text())
                    )
                except (OSError, ValueError):
                    self._index = {}
        return self._index

    def lookup(self, spec_key: str) -> str | None:
        """Encoding hash previously bound to this spec identity, if any."""
        encoding_hash = self._load_index().get(stable_hash(spec_key))
        if encoding_hash is not None and not self.has_snapshot(encoding_hash):
            return None
        return encoding_hash

    def bind(self, spec_key: str, encoding_hash: str) -> None:
        index = self._load_index()
        index[stable_hash(spec_key)] = encoding_hash
        if self.root is not None:
            atomic_write_json(self._index_path(), index)

    # -- snapshot payloads ----------------------------------------------
    def snapshot_path(self, encoding_hash: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"{encoding_hash}.pkl"

    def has_snapshot(self, encoding_hash: str) -> bool:
        if encoding_hash in self._snapshots:
            return True
        path = self.snapshot_path(encoding_hash)
        return path is not None and path.exists()

    def store(self, snapshot, meta: dict) -> str:
        """Persist ``snapshot`` (+ JSON ``meta`` sidecar); returns its
        content hash.  Idempotent: same content, same files."""
        encoding_hash = snapshot.content_hash()
        self._snapshots[encoding_hash] = snapshot
        self._meta[encoding_hash] = meta
        path = self.snapshot_path(encoding_hash)
        if path is not None:
            atomic_write_bytes(
                path, pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
            )
            atomic_write_json(path.with_suffix(".meta.json"), meta)
        return encoding_hash

    def load(self, encoding_hash: str):
        """The snapshot for ``encoding_hash``, or ``None`` if unknown."""
        snapshot = self._snapshots.get(encoding_hash)
        if snapshot is None:
            path = self.snapshot_path(encoding_hash)
            if path is None:
                return None
            try:
                snapshot = pickle.loads(path.read_bytes())
            except (OSError, pickle.PickleError, EOFError):
                return None
            self._snapshots[encoding_hash] = snapshot
        return snapshot

    def meta(self, encoding_hash: str) -> dict | None:
        meta = self._meta.get(encoding_hash)
        if meta is None:
            path = self.snapshot_path(encoding_hash)
            if path is None:
                return None
            try:
                meta = json.loads(path.with_suffix(".meta.json").read_text())
            except (OSError, ValueError):
                return None
            self._meta[encoding_hash] = meta
        return meta


# ---------------------------------------------------------------------------
# Hot tier: live sessions under LRU eviction
# ---------------------------------------------------------------------------


class LruSessionCache:
    """Bounded mapping of live session objects, least-recently-used out.

    Eviction (and :meth:`close_all`) calls each evicted entry's
    ``close()`` — the session contract guaranteeing idempotent release
    of any held worker processes — so the cache can never leak children
    no matter how often specs churn through it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.evictions = 0

    def get(self, key: str) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, entry: Any) -> None:
        if key in self._entries:
            previous = self._entries[key]
            self._entries.move_to_end(key)
            self._entries[key] = entry
            if previous is not entry:
                # Replacing a live session would otherwise orphan its
                # worker processes — the close() contract applies to
                # every way an entry can leave the cache.
                previous.close()
            return
        while len(self._entries) >= self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            evicted.close()
        self._entries[key] = entry

    def pop(self, key: str) -> None:
        """Drop (and close) one entry, if present."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.close()

    def close_all(self) -> None:
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            entry.close()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        return iter(self._entries.keys())
