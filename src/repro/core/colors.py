"""Color derivation — the function T of Section 3.

``T(c)`` overapproximates the set of packet colors that can ever appear on
channel ``c``.  It is computed as a forward may-analysis least fixpoint:
sources seed their color sets, every other primitive transfers colors from
its in-channels to its out-channels, and automata transfer through (ε, φ)
ignoring state reachability (a sound overapproximation).

The derivation doubles as a totality check: a switch whose routing function
fails (or returns an out-of-range index) on a derivable color is a modelling
error and raises :class:`ColorDerivationError` immediately, rather than
surfacing as a bogus verdict later.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..xmas import (
    Automaton,
    Channel,
    Fork,
    Function,
    Join,
    Merge,
    Network,
    Queue,
    Sink,
    Source,
    Switch,
)

__all__ = ["ColorMap", "ColorDerivationError", "derive_colors"]

Color = Hashable


class ColorDerivationError(ValueError):
    """A routing/guard/transform function misbehaved on a derivable color."""


class ColorMap:
    """The result of color derivation: ``channel -> frozenset of colors``."""

    def __init__(self, colors: dict[Channel, frozenset[Color]]):
        self._colors = colors

    def of(self, channel: Channel) -> frozenset[Color]:
        return self._colors.get(channel, frozenset())

    def items(self) -> Iterable[tuple[Channel, frozenset[Color]]]:
        return self._colors.items()

    def total_pairs(self) -> int:
        """Number of (channel, color) pairs — the analysis problem size."""
        return sum(len(colors) for colors in self._colors.values())

    def __repr__(self) -> str:
        return f"ColorMap({self.total_pairs()} channel/color pairs)"


def _apply(fn, color: Color, context: str) -> Color:
    try:
        return fn(color)
    except Exception as exc:  # noqa: BLE001 - report modelling errors verbatim
        raise ColorDerivationError(
            f"{context}: function failed on color {color!r}: {exc}"
        ) from exc


def derive_colors(network: Network) -> ColorMap:
    """Least-fixpoint forward color propagation over ``network``."""
    colors: dict[Channel, set[Color]] = {channel: set() for channel in network.channels}
    # Worklist of primitives whose inputs gained colors.
    worklist: list = list(network.primitives.values())
    in_worklist = set(id(p) for p in worklist)

    def push(channel: Channel, new_colors: Iterable[Color]) -> None:
        added = set(new_colors) - colors[channel]
        if not added:
            return
        colors[channel].update(added)
        consumer = channel.target.owner
        if id(consumer) not in in_worklist:
            worklist.append(consumer)
            in_worklist.add(id(consumer))

    while worklist:
        primitive = worklist.pop()
        in_worklist.discard(id(primitive))
        _transfer(primitive, network, colors, push)

    return ColorMap({c: frozenset(s) for c, s in colors.items()})


def _transfer(primitive, network: Network, colors, push) -> None:
    if isinstance(primitive, Source):
        push(network.channel_of(primitive.o), primitive.colors)
    elif isinstance(primitive, Queue):
        push(
            network.channel_of(primitive.o),
            colors[network.channel_of(primitive.i)],
        )
    elif isinstance(primitive, Function):
        incoming = colors[network.channel_of(primitive.i)]
        push(
            network.channel_of(primitive.o),
            {_apply(primitive.fn, d, f"function {primitive.name}") for d in incoming},
        )
    elif isinstance(primitive, Fork):
        incoming = colors[network.channel_of(primitive.i)]
        push(
            network.channel_of(primitive.a),
            {_apply(primitive.fn_a, d, f"fork {primitive.name}.a") for d in incoming},
        )
        push(
            network.channel_of(primitive.b),
            {_apply(primitive.fn_b, d, f"fork {primitive.name}.b") for d in incoming},
        )
    elif isinstance(primitive, Join):
        colors_a = colors[network.channel_of(primitive.a)]
        colors_b = colors[network.channel_of(primitive.b)]
        combined = {
            _apply(lambda pair: primitive.combine(pair[0], pair[1]), (da, db),
                   f"join {primitive.name}")
            for da in colors_a
            for db in colors_b
        }
        push(network.channel_of(primitive.o), combined)
    elif isinstance(primitive, Switch):
        incoming = colors[network.channel_of(primitive.i)]
        routed: dict[int, set[Color]] = {}
        for color in incoming:
            index = _apply(primitive.route, color, f"switch {primitive.name}")
            if not isinstance(index, int) or not 0 <= index < primitive.n_outputs:
                raise ColorDerivationError(
                    f"switch {primitive.name}: route({color!r}) returned "
                    f"{index!r}, expected an index in range({primitive.n_outputs})"
                )
            routed.setdefault(index, set()).add(color)
        for index, routed_colors in routed.items():
            push(network.channel_of(primitive.outs[index]), routed_colors)
    elif isinstance(primitive, Merge):
        merged: set[Color] = set()
        for port in primitive.ins:
            merged |= colors[network.channel_of(port)]
        push(network.channel_of(primitive.o), merged)
    elif isinstance(primitive, Automaton):
        for transition in primitive.transitions:
            if transition.out_port is None:
                continue
            in_channel = network.channel_of(primitive.port(transition.in_port))
            out_channel = network.channel_of(primitive.port(transition.out_port))
            produced: set[Color] = set()
            for color in colors[in_channel]:
                accepted = _apply(
                    transition.accepts, color,
                    f"automaton {primitive.name} transition {transition.name} guard",
                )
                if accepted:
                    assert transition.produce is not None
                    produced.add(
                        _apply(
                            transition.produce, color,
                            f"automaton {primitive.name} transition "
                            f"{transition.name} produce",
                        )
                    )
            push(out_channel, produced)
    elif isinstance(primitive, Sink):
        pass
    else:  # pragma: no cover - all primitive kinds handled above
        raise TypeError(f"unknown primitive type {type(primitive).__name__}")
