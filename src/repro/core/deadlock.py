"""Deadlock detection via block/idle equations (Section 3).

For every channel ``c`` and color ``d ∈ T(c)`` two boolean variables are
introduced:

* ``Block(c, d)`` — the target of ``c`` permanently refuses packets ``d``;
* ``Idle(c, d)``  — the initiator of ``c`` permanently stops offering ``d``.

Each primitive contributes a *biconditional definition* for the block of its
in-channels and the idle of its out-channels (Gotmanov et al., VMCAI'11,
extended to k-way switches/merges and — the paper's contribution — to xMAS
automata).  Cyclic definitions are expected (the network has cycles); any
satisfying assignment of the equation system conjoined with the *deadlock
assertion*

    ∃ queue q, d ∈ T(q.o):  #q.d ≥ 1 ∧ Block(q.o, d)
  ∨ ∃ fair source src, d:   Block(src.o, d)

is a deadlock *candidate*.  UNSAT means deadlock-free (sound); SAT may be a
false negative, to be ruled out by invariants (:mod:`repro.core.invariants`)
or confirmed by explicit-state search (:mod:`repro.mc`).

Queue-block refinement: the paper's queue equation requires a full queue
whose head is permanently stuck; we additionally require the stuck color to
be *present* (``#q.d' ≥ 1``), which is sound because a deadlocked head
packet occupies the queue.  For ``rotating`` queues (automaton-facing
queues that move an unconsumable head to the tail) an optional stronger
rule demands *every present* color be stuck before the queue blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from ..smt import (
    FALSE,
    TRUE,
    IntVar,
    Term,
    boolvar,
    conj,
    disj,
    eq,
    ge,
    iff,
    implies,
    le,
)
from ..xmas import (
    Automaton,
    Channel,
    Fork,
    Function,
    Join,
    Merge,
    Network,
    Queue,
    Sink,
    Source,
    Switch,
)
from .colors import ColorMap
from .vars import VarPool, color_label

__all__ = ["DeadlockCase", "DeadlockEncoding", "encode_deadlock"]

Color = Hashable

# How queue capacities enter the encoding: by default the literal
# ``queue.size``; a ``VerificationSession`` may instead supply one IntVar
# per queue so different sizes can be probed by assumption alone.
Capacities = Mapping[str, IntVar]


@dataclass(frozen=True)
class DeadlockCase:
    """One disjunct of the deadlock assertion, tagged with a guard literal.

    ``guard`` is a fresh boolean variable constrained (by
    :meth:`DeadlockEncoding.guard_terms`) to imply ``term``.  Assuming a
    single guard asks the incremental engine "is *this* queue/color (or
    source/color) a deadlock candidate?" without touching the other
    disjuncts — and without invalidating any learned clause.
    """

    label: str
    kind: str  # "queue" | "source"
    subject: str  # name of the queue / source primitive
    color: Color
    term: Term
    guard: Term


@dataclass
class DeadlockEncoding:
    """The SMT encoding of "a deadlock configuration exists"."""

    definitions: list[Term] = field(default_factory=list)
    domain: list[Term] = field(default_factory=list)
    assertion: Term = FALSE
    # The assertion's disjuncts with their assumption guards.
    cases: list[DeadlockCase] = field(default_factory=list)
    # Master guard: assuming it asserts "some disjunct fires".
    any_guard: Term = FALSE

    @property
    def assertion_cases(self) -> list[tuple[str, Term]]:
        """Labelled disjuncts of the assertion (derived from ``cases``)."""
        return [(case.label, case.term) for case in self.cases]

    def all_terms(self) -> list[Term]:
        return [*self.definitions, *self.domain, self.assertion]

    def guard_terms(self) -> list[Term]:
        """Guard wiring for assumption-based querying.

        ``guardᵢ → caseᵢ`` for every disjunct plus
        ``any_guard → ⋁ᵢ guardᵢ``.  Guards are otherwise free, so adding
        these terms never changes satisfiability of the base encoding.
        """
        wiring = [implies(case.guard, case.term) for case in self.cases]
        wiring.append(
            implies(self.any_guard, disj(*(case.guard for case in self.cases)))
        )
        return wiring

    def case_of(self, kind: str, subject: str, color: Color) -> DeadlockCase:
        for case in self.cases:
            if case.kind == kind and case.subject == subject and case.color == color:
                return case
        raise KeyError(f"no deadlock case for {kind} {subject!r} color {color!r}")


def encode_deadlock(
    network: Network,
    colors: ColorMap,
    pool: VarPool,
    rotating_precision: bool = True,
    capacities: Capacities | None = None,
) -> DeadlockEncoding:
    """Build the block/idle equation system and deadlock assertion.

    With ``capacities`` (queue name → IntVar), queue sizes enter the
    formula symbolically instead of as the networks' literal ``size``
    attributes; the caller is responsible for pinning each capacity
    variable (e.g. by assumption) before checking.
    """
    enc = DeadlockEncoding()
    _encode_domains(network, colors, pool, enc, capacities)
    for channel in network.channels:
        for color in colors.of(channel):
            block_def = _block_rhs(
                network, colors, pool, channel, color, rotating_precision, capacities
            )
            idle_def = _idle_rhs(network, colors, pool, channel, color)
            enc.definitions.append(iff(pool.block(channel, color), block_def))
            enc.definitions.append(iff(pool.idle(channel, color), idle_def))
    for automaton in network.automata():
        enc.definitions.append(
            iff(pool.dead(automaton), _dead_rhs(network, colors, pool, automaton))
        )
    _encode_assertion(network, colors, pool, enc)
    return enc


def _capacity(queue: Queue, capacities: Capacities | None) -> IntVar | int:
    if capacities is None:
        return queue.size
    return capacities[queue.name]


# ---------------------------------------------------------------------------
# Domain constraints
# ---------------------------------------------------------------------------


def _encode_domains(
    network: Network,
    colors: ColorMap,
    pool: VarPool,
    enc: DeadlockEncoding,
    capacities: Capacities | None,
) -> None:
    for queue in network.queues():
        capacity = _capacity(queue, capacities)
        occupancies = [
            pool.occupancy(queue, color)
            for color in colors.of(network.channel_of(queue.i))
        ]
        for var in occupancies:
            enc.domain.append(ge(var, 0))
            if capacities is None:
                enc.domain.append(le(var, capacity))
            # Parametric mode: per-color ≤ cap is implied by the total row
            # below plus nonnegativity; leaving it out keeps one slack
            # column per queue instead of one per (queue, color).
        if occupancies:
            total = sum(occupancies[1:], occupancies[0] + 0)
            enc.domain.append(le(total, capacity))
    for automaton in network.automata():
        state_vars = [pool.state(automaton, s) for s in automaton.states]
        for var in state_vars:
            enc.domain.append(ge(var, 0))
            enc.domain.append(le(var, 1))
        total = sum(state_vars[1:], state_vars[0] + 0)
        enc.domain.append(eq(total, 1))


def _queue_full(
    queue: Queue,
    colors: ColorMap,
    pool: VarPool,
    network: Network,
    capacities: Capacities | None,
) -> Term:
    occupancies = [
        pool.occupancy(queue, color)
        for color in colors.of(network.channel_of(queue.i))
    ]
    if not occupancies:
        return FALSE  # a queue no color can reach is never full
    total = sum(occupancies[1:], occupancies[0] + 0)
    return eq(total, _capacity(queue, capacities))


# ---------------------------------------------------------------------------
# Block equations (defined by the channel's *target* primitive)
# ---------------------------------------------------------------------------


def _block_rhs(
    network: Network,
    colors: ColorMap,
    pool: VarPool,
    channel: Channel,
    color: Color,
    rotating_precision: bool,
    capacities: Capacities | None,
) -> Term:
    target = channel.target.owner
    port = channel.target

    if isinstance(target, Queue):
        out_channel = network.channel_of(target.o)
        head_colors = colors.of(out_channel)
        full = _queue_full(target, colors, pool, network, capacities)
        if target.rotating and rotating_precision:
            # Rotation lets consumable heads bypass stuck ones: the queue
            # only blocks when every color actually present is stuck.
            stuck_all = conj(
                *(
                    implies(
                        ge(pool.occupancy(target, d), 1),
                        pool.block(out_channel, d),
                    )
                    for d in head_colors
                )
            )
            return conj(full, stuck_all)
        stuck_head = disj(
            *(
                conj(ge(pool.occupancy(target, d), 1), pool.block(out_channel, d))
                for d in head_colors
            )
        )
        return conj(full, stuck_head)

    if isinstance(target, Function):
        out_channel = network.channel_of(target.o)
        return pool.block(out_channel, target.fn(color))

    if isinstance(target, Sink):
        if target.fair:
            return FALSE
        return pool.dead_sink_choice(target)

    if isinstance(target, Fork):
        chan_a = network.channel_of(target.a)
        chan_b = network.channel_of(target.b)
        return disj(
            pool.block(chan_a, target.fn_a(color)),
            pool.block(chan_b, target.fn_b(color)),
        )

    if isinstance(target, Join):
        out_channel = network.channel_of(target.o)
        if port is target.a:
            partner_channel = network.channel_of(target.b)
            partner_colors = colors.of(partner_channel)
            combine = lambda mine, other: target.combine(mine, other)  # noqa: E731
        else:
            partner_channel = network.channel_of(target.a)
            partner_colors = colors.of(partner_channel)
            combine = lambda mine, other: target.combine(other, mine)  # noqa: E731
        partner_starved = conj(
            *(pool.idle(partner_channel, d) for d in partner_colors)
        )
        output_stuck = disj(
            *(pool.block(out_channel, combine(color, d)) for d in partner_colors)
        )
        return disj(partner_starved, output_stuck)

    if isinstance(target, Switch):
        index = target.route(color)
        out_channel = network.channel_of(target.outs[index])
        return pool.block(out_channel, color)

    if isinstance(target, Merge):
        # Fair arbitration: an input is permanently refused only if the
        # shared output permanently refuses the packet.
        out_channel = network.channel_of(target.o)
        return pool.block(out_channel, color)

    if isinstance(target, Automaton):
        port_name = port.name
        acceptors = [
            t for t in target.transitions_on_port(port_name) if t.accepts(color)
        ]
        if not acceptors:
            return TRUE  # paper: (∀t. ¬ε(i,d)) ∨ dead(A)
        return pool.dead(target)

    raise TypeError(f"no block equation for {type(target).__name__}")


# ---------------------------------------------------------------------------
# Idle equations (defined by the channel's *initiator* primitive)
# ---------------------------------------------------------------------------


def _idle_rhs(
    network: Network,
    colors: ColorMap,
    pool: VarPool,
    channel: Channel,
    color: Color,
) -> Term:
    initiator = channel.initiator.owner
    port = channel.initiator

    if isinstance(initiator, Source):
        # Fair sources eventually offer every one of their colors.
        return FALSE if color in initiator.colors else TRUE

    if isinstance(initiator, Queue):
        # A queue stops offering d when it holds none and no d can *enter*
        # any more — either none is ever offered upstream, or the queue is
        # permanently full of other packets (blocked entry).  The second
        # disjunct is essential: without it, a packet stuck in front of a
        # permanently full queue would falsify the idleness of the queue
        # output and real deadlocks (e.g. Figure 3) would be missed.
        in_channel = network.channel_of(initiator.i)
        return conj(
            eq(pool.occupancy(initiator, color), 0),
            disj(
                pool.idle(in_channel, color),
                pool.block(in_channel, color),
            ),
        )

    if isinstance(initiator, Function):
        in_channel = network.channel_of(initiator.i)
        preimages = [d for d in colors.of(in_channel) if initiator.fn(d) == color]
        return conj(*(pool.idle(in_channel, d) for d in preimages))

    if isinstance(initiator, Fork):
        in_channel = network.channel_of(initiator.i)
        if port is initiator.a:
            transform, other_transform = initiator.fn_a, initiator.fn_b
            other_channel = network.channel_of(initiator.b)
        else:
            transform, other_transform = initiator.fn_b, initiator.fn_a
            other_channel = network.channel_of(initiator.a)
        preimages = [d for d in colors.of(in_channel) if transform(d) == color]
        # Each candidate packet never reaches this output iff it never
        # arrives or the synchronous copy to the sibling output is stuck.
        return conj(
            *(
                disj(
                    pool.idle(in_channel, d),
                    pool.block(other_channel, other_transform(d)),
                )
                for d in preimages
            )
        )

    if isinstance(initiator, Join):
        chan_a = network.channel_of(initiator.a)
        chan_b = network.channel_of(initiator.b)
        pairs = [
            (da, db)
            for da in colors.of(chan_a)
            for db in colors.of(chan_b)
            if initiator.combine(da, db) == color
        ]
        return conj(
            *(
                disj(pool.idle(chan_a, da), pool.idle(chan_b, db))
                for da, db in pairs
            )
        )

    if isinstance(initiator, Switch):
        in_channel = network.channel_of(initiator.i)
        if color not in colors.of(in_channel):
            return TRUE
        if initiator.outs[initiator.route(color)] is not port:
            return TRUE
        return pool.idle(in_channel, color)

    if isinstance(initiator, Merge):
        feeders = [
            network.channel_of(p)
            for p in initiator.ins
            if color in colors.of(network.channel_of(p))
        ]
        return conj(*(pool.idle(f, color) for f in feeders))

    if isinstance(initiator, Automaton):
        port_name = port.name
        producers = []
        for transition in initiator.transitions:
            if transition.out_port != port_name:
                continue
            in_channel = network.channel_of(initiator.port(transition.in_port))
            for d in colors.of(in_channel):
                if transition.accepts(d) and transition.output(d) == (port_name, color):
                    producers.append(transition)
                    break
        if not producers:
            return TRUE  # paper: (∀t,i,d. ε → φ ≠ (o,d')) ∨ dead(A)
        return pool.dead(initiator)

    raise TypeError(f"no idle equation for {type(initiator).__name__}")


# ---------------------------------------------------------------------------
# Automaton deadness (the paper's dead_A equation)
# ---------------------------------------------------------------------------


def _dead_rhs(
    network: Network, colors: ColorMap, pool: VarPool, automaton: Automaton
) -> Term:
    per_state = []
    for state in automaton.states:
        outgoing = automaton.transitions_from(state)
        all_dead = conj(
            *(_transition_dead(network, colors, pool, automaton, t) for t in outgoing)
        )
        per_state.append(conj(eq(pool.state(automaton, state), 1), all_dead))
    return disj(*per_state)


def _transition_dead(
    network: Network, colors: ColorMap, pool: VarPool, automaton: Automaton, transition
) -> Term:
    """dead(t): every packet that could trigger t is stuck or never comes."""
    in_channel = network.channel_of(automaton.port(transition.in_port))
    cases = []
    for color in colors.of(in_channel):
        if not transition.accepts(color):
            continue
        stuck_or_starved = pool.idle(in_channel, color)
        output = transition.output(color)
        if output is not None:
            out_port, produced = output
            out_channel = network.channel_of(automaton.port(out_port))
            stuck_or_starved = disj(
                pool.block(out_channel, produced), stuck_or_starved
            )
        cases.append(stuck_or_starved)
    return conj(*cases)  # vacuously dead if no color can ever trigger it


# ---------------------------------------------------------------------------
# Deadlock assertion
# ---------------------------------------------------------------------------


def _encode_assertion(
    network: Network, colors: ColorMap, pool: VarPool, enc: DeadlockEncoding
) -> None:
    def make_case(label: str, kind: str, subject: str, color: Color, term: Term):
        guard = boolvar(f"dl[{kind}:{subject}:{color_label(color)}]")
        enc.cases.append(
            DeadlockCase(
                label=label,
                kind=kind,
                subject=subject,
                color=color,
                term=term,
                guard=guard,
            )
        )

    for queue in network.queues():
        out_channel = network.channel_of(queue.o)
        for color in colors.of(out_channel):
            make_case(
                f"queue {queue.name} holds stuck {color!r}",
                "queue",
                queue.name,
                color,
                conj(
                    ge(pool.occupancy(queue, color), 1),
                    pool.block(out_channel, color),
                ),
            )
    for source in network.sources():
        out_channel = network.channel_of(source.o)
        for color in source.colors:
            make_case(
                f"source {source.name} permanently blocked on {color!r}",
                "source",
                source.name,
                color,
                pool.block(out_channel, color),
            )
    enc.assertion = disj(*(case.term for case in enc.cases))
    enc.any_guard = boolvar(f"dl[any:{network.name}]")
