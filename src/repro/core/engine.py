"""The incremental verification engine: one encoding, many queries.

ADVOCAT's workflow is inherently *many queries over one model*: the
block/idle equation system is fixed per network, but it is re-solved under
different assertions — the full deadlock check, per-channel candidate
queries, invariant-strengthened re-checks, witness enumeration, and the
Figure-4 queue-size sweep.  :class:`VerificationSession` builds the colors,
invariants and encoding **once**, loads them into one incremental
:class:`~repro.smt.Solver`, and answers every query by *assumption*:

* each disjunct of the deadlock assertion carries a guard literal
  (:class:`~repro.core.deadlock.DeadlockCase`), so ``verify_channel`` asks
  about a single queue/color by assuming that one guard;
* ``verify`` assumes the master guard ("some disjunct fires");
* queue capacities are (by default) symbolic ``cap[q]`` variables pinned by
  assumption, so ``resize_queues`` re-probes a different size without
  rebuilding anything;
* ``enumerate_witnesses`` guards its blocking clauses behind a fresh
  per-enumeration assumption literal (assumed only by its own checks and
  retired when the generator finishes), so enumeration leaves the session
  reusable and never influences concurrent queries.

All clauses the CDCL core learns while answering one query — including
branch-and-bound splits and theory-conflict clauses — remain in force for
every later query, which is where the severalfold speed-up of the sweep
benchmarks comes from (see ``benchmarks/bench_incremental.py``).

:func:`repro.core.proof.verify` and friends are thin wrappers over a
throwaway session, so the one-shot API is unchanged.
"""

from __future__ import annotations

from time import perf_counter
from typing import Hashable, Iterator, Mapping

from ..smt import Result, Solver, Term, boolvar, conj, eq, ge, implies, intvar, neg
from ..util import Stopwatch
from ..xmas import Network, Queue, Source
from .colors import derive_colors
from .deadlock import DeadlockCase, encode_deadlock
from .invariants import generate_invariants
from .result import DeadlockWitness, Invariant, Verdict, VerificationResult
from .vars import VarPool

__all__ = ["VerificationSession"]

Color = Hashable


class VerificationSession:
    """Incremental, assumption-based verification of one xMAS network.

    Parameters
    ----------
    network:
        A validated (or validatable) closed xMAS network.
    rotating_precision:
        Use the stronger block rule for ``rotating`` queues (see
        :mod:`repro.core.deadlock`).
    max_splits:
        Branch-and-bound budget forwarded to the SMT solver, per query.
    parametric_queues:
        Encode queue capacities as symbolic ``cap[q]`` variables pinned by
        assumption (required by :meth:`resize_queues`).  With ``False`` the
        literal ``queue.size`` values are baked in, reproducing the
        one-shot encoding exactly.

    Invariants are *not* generated up front; call :meth:`add_invariants`
    to derive and conjoin them (idempotent).  This keeps the plain
    block/idle mode (paper Section 3) available from the same session.
    """

    def __init__(
        self,
        network: Network,
        rotating_precision: bool = True,
        max_splits: int = 100_000,
        parametric_queues: bool = True,
    ):
        network.validate()
        self.network = network
        self.watch = Stopwatch()
        with self.watch.phase("color derivation"):
            self.colors = derive_colors(network)
        self.pool = VarPool()
        self.solver = Solver(max_splits=max_splits)
        self._parametric = parametric_queues
        self._sizes: dict[str, int] = {q.name: q.size for q in network.queues()}
        self._capacities = (
            {q.name: intvar(f"cap[{q.name}]") for q in network.queues()}
            if parametric_queues
            else {}
        )
        self._size_guards: dict[tuple[str, int], Term] = {}
        self._invariants: list[Invariant] = []
        self._invariants_added = False
        with self.watch.phase("deadlock encoding"):
            self.encoding = encode_deadlock(
                network,
                self.colors,
                self.pool,
                rotating_precision=rotating_precision,
                capacities=self._capacities if parametric_queues else None,
            )
        with self.watch.phase("smt solving"):
            for term in self.encoding.definitions:
                self.solver.add(term)
            for term in self.encoding.domain:
                self.solver.add(term)
            for term in self.encoding.guard_terms():
                self.solver.add(term)
            for capacity in self._capacities.values():
                self.solver.add(ge(capacity, 0))

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_invariants(self) -> list[Invariant]:
        """Derive the cross-layer invariants and conjoin them (idempotent).

        Invariants hold in every reachable configuration, so adding them is
        a permanent, sound strengthening — there is nothing to retract.
        """
        if not self._invariants_added:
            with self.watch.phase("invariant generation"):
                self._invariants = generate_invariants(
                    self.network, self.colors, self.pool
                )
            with self.watch.phase("smt solving"):
                for invariant in self._invariants:
                    self.solver.add_global(invariant.term())
            self._invariants_added = True
        return list(self._invariants)

    @property
    def invariants(self) -> list[Invariant]:
        return list(self._invariants)

    def resize_queues(self, sizes: int | Mapping[str, int]) -> None:
        """Re-target later queries at different queue capacities.

        ``sizes`` is either one uniform size or a mapping from queue name
        to size (unmentioned queues keep their current size).  Requires
        ``parametric_queues``; nothing is re-encoded — each (queue, size)
        pair lazily gets a guard literal implying ``cap[q] == size``, and
        queries assume the guards of the current sizes.
        """
        if not self._parametric:
            raise RuntimeError(
                "resize_queues() requires parametric_queues=True "
                "(queue sizes were baked into the encoding)"
            )
        if isinstance(sizes, int):
            update = {name: sizes for name in self._sizes}
        else:
            unknown = set(sizes) - set(self._sizes)
            if unknown:
                raise KeyError(f"unknown queues: {sorted(unknown)}")
            update = dict(sizes)
        for name, size in update.items():
            if size < 0:
                raise ValueError(f"queue {name!r}: negative capacity {size}")
        self._sizes.update(update)

    @property
    def queue_sizes(self) -> dict[str, int]:
        return dict(self._sizes)

    def _capacity_assumptions(self) -> list[Term]:
        if not self._parametric:
            return []
        assumptions = []
        for name, size in self._sizes.items():
            guard = self._size_guards.get((name, size))
            if guard is None:
                guard = boolvar(f"cap[{name}=={size}]")
                # add_global: the guard definition must outlive any scope
                # open at first use (e.g. during witness enumeration).
                self.solver.add_global(
                    implies(guard, eq(self._capacities[name], size))
                )
                self._size_guards[(name, size)] = guard
            assumptions.append(guard)
        return assumptions

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _run(self, assumptions: list[Term]) -> VerificationResult:
        solve_start = perf_counter()
        with self.watch.phase("smt solving"):
            outcome = self.solver.check(assumptions=assumptions)
        stats = {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(self._invariants),
            # Per-query deltas: this check's solver counters and wall time.
            "solver": dict(self.solver.stats),
            "solve_seconds": perf_counter() - solve_start,
            # Cumulative session phase times (encoding built once, queries
            # accumulate under "smt solving") — not per-query.
            "durations": dict(self.watch.durations),
        }
        if self._parametric:
            stats["queue_sizes"] = dict(self._sizes)
        if outcome == Result.UNSAT:
            return VerificationResult(
                Verdict.DEADLOCK_FREE, invariants=list(self._invariants), stats=stats
            )
        from .proof import extract_witness

        witness = extract_witness(
            self.network, self.colors, self.pool, self.solver, self.encoding
        )
        return VerificationResult(
            Verdict.DEADLOCK_CANDIDATE,
            witness=witness,
            invariants=list(self._invariants),
            stats=stats,
        )

    def verify(self) -> VerificationResult:
        """The full deadlock check: "does *some* disjunct fire?"."""
        return self._run(
            [self.encoding.any_guard, *self._capacity_assumptions()]
        )

    def verify_case(self, case: DeadlockCase) -> VerificationResult:
        """Check one tagged disjunct of the deadlock assertion."""
        return self._run([case.guard, *self._capacity_assumptions()])

    def verify_channel(self, queue: Queue | str, color: Color) -> VerificationResult:
        """Can ``queue`` hold a permanently stuck ``color`` packet?"""
        name = queue if isinstance(queue, str) else queue.name
        return self.verify_case(self.encoding.case_of("queue", name, color))

    def verify_source(self, source: Source | str, color: Color) -> VerificationResult:
        """Can ``source`` be permanently refused ``color`` packets?"""
        name = source if isinstance(source, str) else source.name
        return self.verify_case(self.encoding.case_of("source", name, color))

    def enumerate_witnesses(self, limit: int = 16) -> Iterator[DeadlockWitness]:
        """Yield distinct deadlock candidates (up to ``limit``).

        Each witness differs from all previous ones in automaton states or
        in some queue-occupancy value.  Blocking clauses are guarded by a
        fresh assumption literal that only *this generator's* checks
        assume, so a suspended enumeration never influences other session
        queries — ``verify``/``verify_case`` stay sound mid-enumeration,
        and several enumerations can run interleaved, each independent.
        """
        enum_guard = boolvar()  # fresh anonymous guard per enumeration
        try:
            for _ in range(limit):
                result = self._run(
                    [
                        self.encoding.any_guard,
                        enum_guard,
                        *self._capacity_assumptions(),
                    ]
                )
                if result.deadlock_free:
                    return
                # Capture the blocking shape *before* yielding: while this
                # generator is suspended, other session queries may run and
                # invalidate the solver's current model.
                model = self.solver.model()
                shape = []
                for automaton in self.network.automata():
                    for state in automaton.states:
                        var = self.pool.state(automaton, state)
                        shape.append(eq(var, model[var]))
                for queue in self.network.queues():
                    for color in self.colors.of(self.network.channel_of(queue.i)):
                        var = self.pool.occupancy(queue, color)
                        shape.append(eq(var, model[var]))
                yield result.witness
                self.solver.add_global(
                    implies(enum_guard, neg(conj(*shape)))
                )
        finally:
            # Retire the guard so its blocking clauses are satisfied (and
            # never burden later searches), even on early abandonment.
            self.solver.add_global(neg(enum_guard))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative session statistics (durations, solver clause count)."""
        return {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(self._invariants),
            "clauses": self.solver.clause_count(),
            "durations": dict(self.watch.durations),
        }
