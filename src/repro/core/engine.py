"""The incremental verification engine: one encoding, many queries.

ADVOCAT's workflow is inherently *many queries over one model*: the
block/idle equation system is fixed per network, but it is re-solved under
different assertions — the full deadlock check, per-channel candidate
queries, invariant-strengthened re-checks, witness enumeration, and the
Figure-4 queue-size sweep.  The work splits into two phases:

* **build** — :class:`SessionSpec` derives the colors, the deadlock
  encoding (with guard-tagged disjuncts and, optionally, parametric
  ``cap[q]`` capacities) and, on demand, the cross-layer invariants.  All
  of it is computed once per network and shared by every session over it.
* **query** — :class:`VerificationSession` loads a spec into one
  incremental :class:`~repro.smt.Solver` and answers every query by
  *assumption*:

  - each disjunct of the deadlock assertion carries a guard literal
    (:class:`~repro.core.deadlock.DeadlockCase`), so ``verify_channel``
    asks about a single queue/color by assuming that one guard;
  - ``verify`` assumes the master guard ("some disjunct fires");
  - queue capacities are (by default) symbolic ``cap[q]`` variables pinned
    by assumption, so ``resize_queues`` re-probes a different size without
    rebuilding anything;
  - ``enumerate_witnesses`` guards its blocking clauses behind a fresh
    per-enumeration assumption literal (assumed only by its own checks and
    retired when the generator finishes), so enumeration leaves the
    session reusable and never influences concurrent queries.

All clauses the CDCL core learns while answering one query — including
branch-and-bound splits and theory-conflict clauses — remain in force for
every later query, which is where the severalfold speed-up of the sweep
benchmarks comes from (see ``benchmarks/bench_incremental.py``).

The split is what makes parallel orchestration possible:
:meth:`SessionSpec.snapshot` flattens the built encoding into a
pickle-safe :class:`SessionSnapshot` (CNF image + guard names + witness
recipe), from which worker processes rehydrate query sessions without
re-deriving colors, invariants or the encoding — see
:mod:`repro.core.parallel`.

:func:`repro.core.proof.verify` and friends are thin wrappers over a
throwaway session, so the one-shot API is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from ..smt import (
    IntVar,
    Result,
    Solver,
    SolverSnapshot,
    Term,
    boolvar,
    conj,
    eq,
    ge,
    implies,
    intvar,
    neg,
    snapshot_solver,
)
from ..util import Stopwatch
from ..xmas import Network, Queue, Source
from .cache import stable_hash
from .colors import derive_colors
from .deadlock import DeadlockCase, encode_deadlock
from .invariants import (
    InvariantSelector,
    encode_invariant_rows,
    generate_invariants,
    rank_invariants,
)
from .resilience import Deadline
from .result import DeadlockWitness, Invariant, Verdict, VerificationResult
from .vars import VarPool

__all__ = [
    "SessionSpec",
    "SessionSnapshot",
    "VerificationSession",
    "escalate_partial",
]

Color = Hashable

ANY_CASE_LABEL = "deadlock assertion (any case)"


def resolve_resize(
    current: Mapping[str, int], sizes: int | Mapping[str, int], parametric: bool
) -> dict[str, int]:
    """Validate a ``resize_queues`` request against the current size map.

    Returns the full updated map.  Shared by the sequential and parallel
    sessions so both reject the same inputs identically.
    """
    if not parametric:
        raise RuntimeError(
            "resize_queues() requires parametric_queues=True "
            "(queue sizes were baked into the encoding)"
        )
    if isinstance(sizes, int):
        update = {name: sizes for name in current}
    else:
        unknown = set(sizes) - set(current)
        if unknown:
            raise KeyError(f"unknown queues: {sorted(unknown)}")
        update = dict(sizes)
    for name, size in update.items():
        if size < 0:
            raise ValueError(f"queue {name!r}: negative capacity {size}")
    merged = dict(current)
    merged.update(update)
    return merged


@dataclass(frozen=True)
class SessionSnapshot:
    """Pickle-safe image of a built verification session.

    Everything a worker needs to answer guard-literal queries without the
    build phase: the solver's CNF image, the guard-variable *names* of the
    deadlock cases and the master disjunction, the ``cap[q]`` variable
    keys for minting capacity pins, and the witness recipe (which integer
    variables / block booleans to read out of a SAT model).  All plain
    ints and strings — see :mod:`repro.smt.serialize` for why terms
    themselves cannot cross a process boundary.
    """

    solver: SolverSnapshot
    case_guard_names: tuple[str, ...]  # aligned with encoding.cases
    any_guard_name: str
    capacity_uids: tuple[tuple[str, int], ...]  # (queue name, cap var uid)
    witness_int_uids: tuple[int, ...]
    witness_bool_names: tuple[str, ...]
    default_sizes: tuple[tuple[str, int], ...]
    parametric: bool
    # How many invariants are baked into the solver image — reporting
    # metadata for consumers that only hold the snapshot.
    invariant_count: int
    # Ranked invariant rows *not* baked into the solver image, as plain
    # data (static rank order) — a rehydrated worker escalates through
    # them locally in partial mode (see repro.core.invariants).  Empty
    # unless the snapshot was taken for partial-invariant orchestration.
    pending_invariant_rows: tuple = ()

    def content_hash(self) -> str:
        """Stable SHA-256 identity of the canonical encoding image.

        Two snapshots of the *same* encoding hash identically even when
        built in different processes: integer-variable uids are
        process-local counters, so the hash renumbers them by rank in
        the name-sorted variable table (every variable reachable from a
        deadlock encoding carries a deterministic name — guards, pool
        occupancies, ``cap[q]`` capacities).  Scheduling state is
        excluded — learned clauses, saved phases, the clause-reduction
        policy and its knobs, the split budget and pending invariant
        rows steer the *search*, never the encoded formula — so warm or
        differently tuned variants of one encoding share a cache
        identity.  A false identity collision would be a wrong cached
        verdict, which is why the service layer keys its verdict store
        on this hash.
        """
        solver = self.solver
        order = sorted(
            range(len(solver.int_vars)),
            key=lambda i: (solver.int_vars[i][1], i),
        )
        rank = {solver.int_vars[i][0]: pos for pos, i in enumerate(order)}
        payload = {
            "version": solver.version,
            "n_vars": solver.n_vars,
            "clauses": [list(clause) for clause in solver.clauses],
            "unsatisfiable": solver.unsatisfiable,
            "bool_vars": sorted([name, var] for name, var in solver.bool_vars),
            "int_names": [solver.int_vars[i][1] for i in order],
            "atoms": sorted(
                [
                    satvar,
                    sorted([rank[uid], coeff] for uid, coeff in coeffs),
                    bound,
                ]
                for satvar, coeffs, bound in solver.atoms
            ),
            "case_guards": list(self.case_guard_names),
            "any_guard": self.any_guard_name,
            "capacities": sorted(
                [name, rank[uid]] for name, uid in self.capacity_uids
            ),
            "witness_ints": [rank[uid] for uid in self.witness_int_uids],
            "witness_bools": list(self.witness_bool_names),
            "default_sizes": sorted(
                [name, size] for name, size in self.default_sizes
            ),
            "parametric": self.parametric,
        }
        return stable_hash(payload)


class SessionSpec:
    """The build phase: network → colors → encoding (→ invariants), once.

    A spec is immutable except for lazy invariant generation and carries
    no solver; any number of :class:`VerificationSession` (or parallel
    worker sessions, via :meth:`snapshot`) can be opened over one spec
    without re-deriving anything.

    Parameters
    ----------
    network:
        A validated (or validatable) closed xMAS network.
    rotating_precision:
        Use the stronger block rule for ``rotating`` queues (see
        :mod:`repro.core.deadlock`).
    parametric_queues:
        Encode queue capacities as symbolic ``cap[q]`` variables to be
        pinned by assumption.  With ``False`` the literal ``queue.size``
        values are baked in, reproducing the one-shot encoding exactly.
    watch:
        Optional :class:`~repro.util.Stopwatch` to record the build
        phases into (a session building its own spec passes its own).
    """

    def __init__(
        self,
        network: Network,
        rotating_precision: bool = True,
        parametric_queues: bool = True,
        watch: Stopwatch | None = None,
    ):
        network.validate()
        self.network = network
        self.rotating_precision = rotating_precision
        self.parametric = parametric_queues
        watch = watch or Stopwatch()
        with watch.phase("color derivation"):
            self.colors = derive_colors(network)
        self.pool = VarPool()
        self.initial_sizes: dict[str, int] = {
            q.name: q.size for q in network.queues()
        }
        self.capacities: dict[str, IntVar] = (
            {q.name: intvar(f"cap[{q.name}]") for q in network.queues()}
            if parametric_queues
            else {}
        )
        self._invariants: list[Invariant] | None = None
        self._ranked: list[Invariant] | None = None
        with watch.phase("deadlock encoding"):
            self.encoding = encode_deadlock(
                network,
                self.colors,
                self.pool,
                rotating_precision=rotating_precision,
                capacities=self.capacities if parametric_queues else None,
            )

    @classmethod
    def from_builder(
        cls,
        builder: str,
        builder_kwargs: Mapping | None = None,
        rotating_precision: bool = True,
        parametric_queues: bool = True,
        watch: Stopwatch | None = None,
    ) -> "SessionSpec":
        """Open the build phase from a *description* of the network.

        ``builder`` names a registered network builder
        (:func:`repro.core.experiments.register_builder`); the network is
        constructed here and the build phase runs on it.  This is the
        engine-side hook the experiment layer rests on: a
        :class:`~repro.core.experiments.ScenarioSpec` can describe a
        build as plain data, ship it to a worker process, and the worker
        materialises the spec with this constructor.
        """
        from .experiments import resolve_builder

        built = resolve_builder(builder)(**dict(builder_kwargs or {}))
        network = getattr(built, "network", built)
        return cls(
            network,
            rotating_precision=rotating_precision,
            parametric_queues=parametric_queues,
            watch=watch,
        )

    # ------------------------------------------------------------------
    @property
    def invariants(self) -> list[Invariant] | None:
        """The invariants *meant to be conjoined eagerly*, or ``None``.

        Stays ``None`` after :meth:`ranked_invariants` alone: ranked
        generation is derived data for partial-mode selection and must
        not mark the shared spec as strengthened (sessions and pools
        treat a non-``None`` value as "conjoin on load").
        """
        return None if self._invariants is None else list(self._invariants)

    def _generate_all(self, watch: Stopwatch) -> list[Invariant]:
        with watch.phase("invariant generation"):
            return generate_invariants(self.network, self.colors, self.pool)

    def generate_invariants(self, watch: Stopwatch | None = None) -> list[Invariant]:
        """Derive the cross-layer invariants (idempotent)."""
        if self._invariants is None:
            self._invariants = (
                self._ranked
                if self._ranked is not None
                else self._generate_all(watch or Stopwatch())
            )
        return list(self._invariants)

    def ranked_invariants(
        self, watch: Stopwatch | None = None
    ) -> list[Invariant]:
        """The full invariant set in static rank order (idempotent).

        Shares the elimination work with :meth:`generate_invariants` but
        does *not* flip the spec into the eagerly-strengthened state —
        partial-mode sessions select from this list row by row.
        """
        if self._ranked is None:
            base = (
                self._invariants
                if self._invariants is not None
                else self._generate_all(watch or Stopwatch())
            )
            self._ranked = rank_invariants(base)
        return list(self._ranked)

    def invariant_selector(
        self,
        rank_budget: int | None = None,
        rank_growth: int | None = None,
        watch: Stopwatch | None = None,
    ) -> InvariantSelector:
        """A fresh CEGAR escalation state over :meth:`ranked_invariants`.

        One selector per solver: it tracks which rows that solver has
        already conjoined.  Pair its batches with
        :meth:`VerificationSession.conjoin_invariants` via
        :func:`escalate_partial`.
        """
        return InvariantSelector(
            encode_invariant_rows(self.ranked_invariants(watch=watch)),
            rank_budget=rank_budget,
            rank_growth=rank_growth,
        )

    # ------------------------------------------------------------------
    def base_terms(self) -> Iterator[Term]:
        """Every base-level assertion of the encoding, in load order."""
        yield from self.encoding.definitions
        yield from self.encoding.domain
        yield from self.encoding.guard_terms()
        for capacity in self.capacities.values():
            yield ge(capacity, 0)

    def load_solver(
        self,
        max_splits: int = 100_000,
        clause_reduction: bool = True,
        reduction_opts: Mapping | None = None,
    ) -> Solver:
        """A fresh solver with the full encoding (and any generated
        invariants) asserted.  ``reduction_opts`` forwards lifecycle
        knobs (``reduce_base``, ``reduce_growth``, ``glue_keep``,
        ``glue_cap``, ``reduce_keep``) to the solver."""
        solver = Solver(
            max_splits=max_splits,
            clause_reduction=clause_reduction,
            **dict(reduction_opts or {}),
        )
        for term in self.base_terms():
            solver.add(term)
        if self._invariants is not None:
            for invariant in self._invariants:
                solver.add_global(invariant.term())
        return solver

    # ------------------------------------------------------------------
    def _witness_recipe(self) -> tuple[tuple[int, ...], tuple[str, ...]]:
        """(int var uids, block bool names) a witness extraction reads."""
        int_uids = [var.uid for _, var in self.pool.state_items()]
        int_uids.extend(var.uid for _, var in self.pool.occupancy_items())
        bool_names: list[str] = []
        for queue in self.network.queues():
            out_channel = self.network.channel_of(queue.o)
            for color in self.colors.of(out_channel):
                bool_names.append(self.pool.block(out_channel, color).name)
        for source in self.network.sources():
            out_channel = self.network.channel_of(source.o)
            for color in source.colors:
                bool_names.append(self.pool.block(out_channel, color).name)
        return tuple(int_uids), tuple(bool_names)

    def snapshot(
        self,
        max_splits: int = 100_000,
        reduction_opts: Mapping | None = None,
        include_pending_invariants: bool = False,
    ) -> SessionSnapshot:
        """Flatten the built encoding into a :class:`SessionSnapshot`.

        Loads a throwaway solver (cheap relative to the build phase) and
        captures its CNF image together with the guard-name tables and
        the witness recipe.  Invariants are included iff they have been
        generated on this spec.  The result is a *cold* snapshot — use
        :meth:`VerificationSession.snapshot` to capture a live session's
        learned clauses and phases along with it.  ``reduction_opts``
        bakes lifecycle knobs into the snapshot so rehydrated workers run
        the tuned policy.  ``include_pending_invariants`` additionally
        ships the ranked rows *not* asserted in the image (the full
        ranked set unless this spec was strengthened eagerly) for
        worker-side partial escalation.
        """
        pending: tuple = ()
        if include_pending_invariants and self._invariants is None:
            pending = encode_invariant_rows(self.ranked_invariants())
        return self.wrap_solver_snapshot(
            snapshot_solver(
                self.load_solver(max_splits, reduction_opts=reduction_opts)
            ),
            pending_invariant_rows=pending,
        )

    def wrap_solver_snapshot(
        self, solver_snapshot, pending_invariant_rows: tuple = ()
    ) -> SessionSnapshot:
        """Bundle an already-captured solver image with this spec's guard
        tables, witness recipe and size defaults.
        ``pending_invariant_rows`` ships plain-data invariant rows *not*
        asserted in the image, for worker-side partial escalation."""
        witness_ints, witness_bools = self._witness_recipe()
        return SessionSnapshot(
            solver=solver_snapshot,
            case_guard_names=tuple(
                case.guard.name for case in self.encoding.cases
            ),
            any_guard_name=self.encoding.any_guard.name,
            capacity_uids=tuple(
                (name, var.uid) for name, var in self.capacities.items()
            ),
            witness_int_uids=witness_ints,
            witness_bool_names=witness_bools,
            default_sizes=tuple(self.initial_sizes.items()),
            parametric=self.parametric,
            invariant_count=len(self._invariants or ()),
            pending_invariant_rows=tuple(pending_invariant_rows),
        )


class VerificationSession:
    """Incremental, assumption-based verification of one xMAS network.

    Parameters
    ----------
    network:
        The network to verify; ignored when ``spec`` is given.
    rotating_precision, parametric_queues:
        Build options, forwarded to :class:`SessionSpec` (ignored when
        ``spec`` is given — the spec already fixed them).
    max_splits:
        Branch-and-bound budget forwarded to the SMT solver, per query.
    clause_reduction:
        Enable the solver's learned-clause lifecycle (LBD-based database
        reduction) so long sessions stay bounded.  ``False`` reproduces
        the unbounded clause database of earlier revisions; verdicts are
        identical either way.
    reduction_opts:
        Optional lifecycle knobs (``reduce_base``, ``reduce_growth``,
        ``glue_keep``, ``glue_cap``, ``reduce_keep``) forwarded to the
        solver — workload tuning for long sweeps and worker shards.
    spec:
        A prebuilt :class:`SessionSpec` to open a query session over
        without repeating the build phase.  If the spec already has
        invariants generated, they are loaded immediately.

    Invariants are *not* generated up front; call :meth:`add_invariants`
    to derive and conjoin them (idempotent).  This keeps the plain
    block/idle mode (paper Section 3) available from the same session.
    """

    def __init__(
        self,
        network: Network | None = None,
        rotating_precision: bool = True,
        max_splits: int = 100_000,
        parametric_queues: bool = True,
        clause_reduction: bool = True,
        reduction_opts: Mapping | None = None,
        spec: SessionSpec | None = None,
    ):
        self.watch = Stopwatch()
        if spec is None:
            if network is None:
                raise TypeError("VerificationSession needs a network or a spec")
            spec = SessionSpec(
                network,
                rotating_precision=rotating_precision,
                parametric_queues=parametric_queues,
                watch=self.watch,
            )
        self.spec = spec
        self.network = spec.network
        self.colors = spec.colors
        self.pool = spec.pool
        self.encoding = spec.encoding
        self._parametric = spec.parametric
        self._sizes: dict[str, int] = dict(spec.initial_sizes)
        self._capacities = spec.capacities
        self._size_guards: dict[tuple[str, int], Term] = {}
        self._guard_labels: dict[int, str] = {
            case.guard.uid: case.label for case in self.encoding.cases
        }
        self._guard_labels[self.encoding.any_guard.uid] = ANY_CASE_LABEL
        self._invariants: list[Invariant] = []
        self._invariants_added = False
        self._var_by_uid: dict[int, IntVar] | None = None
        self._witness_bool_names: tuple[str, ...] | None = None
        self._last_witness_bools: dict[str, bool] | None = None
        with self.watch.phase("smt solving"):
            self.solver = spec.load_solver(
                max_splits=max_splits,
                clause_reduction=clause_reduction,
                reduction_opts=reduction_opts,
            )
        if spec.invariants is not None:
            self._invariants = spec.invariants
            self._invariants_added = True

    # ------------------------------------------------------------------
    # Lifecycle: sessions hold no external resources, but sharing the
    # context-manager contract with ParallelVerificationSession lets
    # drivers treat both uniformly (`with make_session(...) as session:`).
    # ------------------------------------------------------------------
    def close(self) -> None:
        """No-op (the spec and solver stay usable); contract parity with
        :meth:`repro.core.parallel.ParallelVerificationSession.close`."""

    def __enter__(self) -> "VerificationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_invariants(self) -> list[Invariant]:
        """Derive the cross-layer invariants and conjoin them (idempotent).

        Invariants hold in every reachable configuration, so adding them is
        a permanent, sound strengthening — there is nothing to retract.
        Rows already conjoined partially (:meth:`conjoin_invariants`) are
        not re-asserted.
        """
        if not self._invariants_added:
            self.conjoin_invariants(
                self.spec.generate_invariants(watch=self.watch)
            )
            self._invariants_added = True
        return list(self._invariants)

    def conjoin_invariants(self, invariants: Iterable[Invariant]) -> int:
        """Permanently conjoin *specific* invariant rows (partial mode).

        Each row is a sound strengthening on its own, so any subset may be
        asserted in any order; rows this session already holds are skipped.
        Returns the number of newly asserted rows.  Does not mark the full
        set as loaded — a later :meth:`add_invariants` tops up to it.
        """
        held = set(self._invariants)
        added = 0
        with self.watch.phase("smt solving"):
            for invariant in invariants:
                if invariant in held:
                    continue
                self.solver.add_global(invariant.term())
                self._invariants.append(invariant)
                held.add(invariant)
                added += 1
        return added

    @property
    def invariants(self) -> list[Invariant]:
        return list(self._invariants)

    def invariant_value_of(self) -> "Callable[[int], int]":
        """``uid → model value`` over the pool's state/occupancy variables.

        Valid after a SAT query; this is what
        :meth:`~repro.core.invariants.InvariantSelector.next_batch`
        evaluates candidate rows against.
        """
        if self._var_by_uid is None:
            self._var_by_uid = {
                var.uid: var for _, var in self.pool.state_items()
            }
            self._var_by_uid.update(
                (var.uid, var) for _, var in self.pool.occupancy_items()
            )
        model = self.solver.model()
        lookup = self._var_by_uid
        return lambda uid: int(model[lookup[uid]])

    def resize_queues(self, sizes: int | Mapping[str, int]) -> None:
        """Re-target later queries at different queue capacities.

        ``sizes`` is either one uniform size or a mapping from queue name
        to size (unmentioned queues keep their current size).  Requires
        ``parametric_queues``; nothing is re-encoded — each (queue, size)
        pair lazily gets a guard literal implying ``cap[q] == size``, and
        queries assume the guards of the current sizes.
        """
        self._sizes = resolve_resize(self._sizes, sizes, self._parametric)

    @property
    def queue_sizes(self) -> dict[str, int]:
        return dict(self._sizes)

    # ------------------------------------------------------------------
    # Warm-start state
    # ------------------------------------------------------------------
    def snapshot(
        self,
        include_learned: bool = True,
        learned_cap: int = 4000,
        max_lbd: int | None = None,
        include_pending_invariants: bool = False,
    ) -> SessionSnapshot:
        """A :class:`SessionSnapshot` of this *live* session.

        Unlike :meth:`SessionSpec.snapshot` (which loads a cold throwaway
        solver), this captures the session's own solver — including, by
        default, its learned-clause tail and saved phases — so workers
        rehydrated from it answer their first query without re-deriving
        what this session already learned.

        ``include_pending_invariants`` additionally ships the ranked
        invariant rows this session has *not* conjoined, so rehydrated
        workers can escalate through them locally (partial mode).
        """
        pending: tuple = ()
        if include_pending_invariants:
            held = set(self._invariants)
            pending = encode_invariant_rows(
                [
                    invariant
                    for invariant in self.spec.ranked_invariants(
                        watch=self.watch
                    )
                    if invariant not in held
                ]
            )
        return self.spec.wrap_solver_snapshot(
            snapshot_solver(
                self.solver,
                include_learned=include_learned,
                learned_cap=learned_cap,
                max_lbd=max_lbd,
            ),
            pending_invariant_rows=pending,
        )

    def compact(self) -> int:
        """Shed the solver's cold learnt tail now (see
        :meth:`~repro.smt.Solver.compact`) — end-of-phase housekeeping
        for long-lived sessions."""
        return self.solver.compact()

    def seed_phases_from_witness(self) -> int:
        """Seed branching phases from the last witness's block booleans.

        Sweeps call this between probes so each probe's search starts at
        the previous witness (the paper's Figure-4 curve moves by one
        capacity step; the blocking shape rarely changes wholesale).
        No-op before the first SAT query; returns the hints applied.
        """
        if not self._last_witness_bools:
            return 0
        return self.solver.phase_hints(self._last_witness_bools)

    def _capacity_assumptions(self) -> list[Term]:
        if not self._parametric:
            return []
        assumptions = []
        for name, size in self._sizes.items():
            guard = self._size_guards.get((name, size))
            if guard is None:
                guard = boolvar(f"cap[{name}=={size}]")
                # add_global: the guard definition must outlive any scope
                # open at first use (e.g. during witness enumeration).
                self.solver.add_global(
                    implies(guard, eq(self._capacities[name], size))
                )
                self._size_guards[(name, size)] = guard
                self._guard_labels[guard.uid] = guard.name
            assumptions.append(guard)
        return assumptions

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _label_of(self, term: Term) -> str:
        label = self._guard_labels.get(term.uid)
        if label is not None:
            return label
        return getattr(term, "name", repr(term))

    def _run(
        self, assumptions: list[Term], deadline=None
    ) -> VerificationResult:
        deadline = Deadline.coerce(deadline)
        solve_start = perf_counter()
        pre_expired = deadline is not None and deadline.expired()
        if pre_expired:
            # Budget already gone: answer TIMEOUT without entering the
            # solver (an expired deadline must never hang or mislead).
            outcome = Result.UNKNOWN
        else:
            limit = deadline.remaining_conflicts() if deadline else None
            stop = deadline.should_stop if deadline else None
            with self.watch.phase("smt solving"):
                outcome = self.solver.check(
                    assumptions=assumptions,
                    conflict_limit=limit,
                    should_stop=stop,
                )
            if deadline is not None:
                deadline.charge(self.solver.stats.get("conflicts", 0))
        stats = {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(self._invariants),
            # Per-query deltas: this check's solver counters and wall time.
            # (Empty when the deadline expired before the solver ran —
            # the previous query's counters would be misleading here.)
            "solver": {} if pre_expired else dict(self.solver.stats),
            # Hot-loop counters from the CDCL core (see Cdcl.profile).
            "solver_profile": {} if pre_expired else dict(self.solver.profile),
            "solve_seconds": perf_counter() - solve_start,
            # Cumulative session phase times (encoding built once, queries
            # accumulate under "smt solving") — not per-query.
            "durations": dict(self.watch.durations),
        }
        if self._parametric:
            stats["queue_sizes"] = dict(self._sizes)
        if outcome == Result.UNKNOWN:
            # Deadline expired (cooperative cancel or conflict-limit hit).
            # Learning up to the cutoff stays in the solver; the session
            # remains reusable, so a later retry resumes warm.
            stats["timed_out"] = True
            return VerificationResult(
                Verdict.TIMEOUT,
                invariants=list(self._invariants),
                stats=stats,
            )
        if outcome == Result.UNSAT:
            # Which assumed guards forced UNSAT — for a per-case query the
            # responsible deadlock case, for a parametric query the
            # cap[q==k] pins that make the configuration infeasible.
            core = [self._label_of(term) for term in self.solver.unsat_core()]
            stats["formula_unsat"] = self.solver.formula_unsat
            return VerificationResult(
                Verdict.DEADLOCK_FREE,
                invariants=list(self._invariants),
                stats=stats,
                unsat_core=core,
            )
        from .proof import extract_witness

        model = self.solver.model()
        witness = extract_witness(self.network, self.colors, self.pool, model)
        if self._witness_bool_names is None:
            self._witness_bool_names = self.spec._witness_recipe()[1]
        self._last_witness_bools = {
            name: bool(model[name]) for name in self._witness_bool_names
        }
        return VerificationResult(
            Verdict.DEADLOCK_CANDIDATE,
            witness=witness,
            invariants=list(self._invariants),
            stats=stats,
        )

    def verify(self, deadline=None) -> VerificationResult:
        """The full deadlock check: "does *some* disjunct fire?"."""
        return self._run(
            [self.encoding.any_guard, *self._capacity_assumptions()],
            deadline=deadline,
        )

    def verify_case(self, case: DeadlockCase, deadline=None) -> VerificationResult:
        """Check one tagged disjunct of the deadlock assertion."""
        return self._run(
            [case.guard, *self._capacity_assumptions()], deadline=deadline
        )

    def verify_channel(
        self, queue: Queue | str, color: Color, deadline=None
    ) -> VerificationResult:
        """Can ``queue`` hold a permanently stuck ``color`` packet?"""
        name = queue if isinstance(queue, str) else queue.name
        return self.verify_case(
            self.encoding.case_of("queue", name, color), deadline=deadline
        )

    def verify_source(
        self, source: Source | str, color: Color, deadline=None
    ) -> VerificationResult:
        """Can ``source`` be permanently refused ``color`` packets?"""
        name = source if isinstance(source, str) else source.name
        return self.verify_case(
            self.encoding.case_of("source", name, color), deadline=deadline
        )

    def verify_all_cases(self, deadline=None) -> list[VerificationResult]:
        """One verdict per deadlock case, in encoding order.

        The per-channel fan-out of the paper's workflow; the parallel
        session (:class:`repro.core.parallel.ParallelVerificationSession`)
        answers the same list concurrently.  One deadline bounds the
        whole list: once it expires the remaining cases answer
        ``TIMEOUT`` immediately.
        """
        deadline = Deadline.coerce(deadline)
        return [
            self.verify_case(case, deadline=deadline)
            for case in self.encoding.cases
        ]

    def enumerate_witnesses(self, limit: int = 16) -> Iterator[DeadlockWitness]:
        """Yield distinct deadlock candidates (up to ``limit``).

        Each witness differs from all previous ones in automaton states or
        in some queue-occupancy value.  Blocking clauses are guarded by a
        fresh assumption literal that only *this generator's* checks
        assume, so a suspended enumeration never influences other session
        queries — ``verify``/``verify_case`` stay sound mid-enumeration,
        and several enumerations can run interleaved, each independent.
        """
        enum_guard = boolvar()  # fresh anonymous guard per enumeration
        try:
            for _ in range(limit):
                result = self._run(
                    [
                        self.encoding.any_guard,
                        enum_guard,
                        *self._capacity_assumptions(),
                    ]
                )
                if result.deadlock_free:
                    return
                # Capture the blocking shape *before* yielding: while this
                # generator is suspended, other session queries may run and
                # invalidate the solver's current model.
                model = self.solver.model()
                shape = []
                for automaton in self.network.automata():
                    for state in automaton.states:
                        var = self.pool.state(automaton, state)
                        shape.append(eq(var, model[var]))
                for queue in self.network.queues():
                    for color in self.colors.of(self.network.channel_of(queue.i)):
                        var = self.pool.occupancy(queue, color)
                        shape.append(eq(var, model[var]))
                yield result.witness
                self.solver.add_global(
                    implies(enum_guard, neg(conj(*shape)))
                )
        finally:
            # Retire the guard so its blocking clauses are satisfied (and
            # never burden later searches), even on early abandonment.
            self.solver.add_global(neg(enum_guard))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative session statistics (durations, solver clause count)."""
        return {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(self._invariants),
            "clauses": self.solver.clause_count(),
            "durations": dict(self.watch.durations),
        }


def escalate_partial(
    session: VerificationSession,
    selector: InvariantSelector,
    ranked: list[Invariant],
    result: VerificationResult,
    reverify: Callable[[], VerificationResult],
) -> VerificationResult:
    """Refine a surviving deadlock candidate under partial invariants.

    The CEGAR loop of ``invariants="partial"``: while the candidate
    survives, conjoin the next batch of ranked rows its model violates and
    re-ask the same query.  Terminates with either

    * a deadlock-free verdict under a *subset* of the invariants (sound:
      adding the rest keeps UNSAT — byte-identical to eager mode), or
    * a candidate whose model satisfies every remaining row (it would
      survive the full set too — byte-identical to eager mode), reached
      at the latest when the selector is exhausted at the full set.

    ``ranked`` must be the spec's static-rank list the selector was built
    over; ``reverify`` re-runs the probe (capacity pins included).  The
    final result's ``stats["invariant_selection"]`` records this probe's
    escalation delta.
    """
    before = selector.counters()
    # A TIMEOUT result exits immediately: there is no model to refine
    # against, and the caller owns the expired-budget handling.
    while (
        not result.deadlock_free
        and not result.timed_out
        and not selector.exhausted
    ):
        batch = selector.next_batch(session.invariant_value_of())
        if not batch:
            break  # model satisfies the full remainder: candidate is final
        session.conjoin_invariants([ranked[index] for index in batch])
        result = reverify()
    result.stats["invariant_selection"] = InvariantSelector.counters_delta(
        selector.counters(), before
    )
    return result
