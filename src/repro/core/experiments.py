"""Experiment orchestration: shard whole ``SessionSpec`` builds across topologies.

The paper's headline experiment (Figure 4) is *grid-shaped*: it iterates
whole networks — mesh sizes × directory positions — and runs a queue-size
search on each.  :mod:`repro.core.parallel` parallelises the queries
*within* one network; this module parallelises the outer loop, treating
each topology instance as an independent verification certificate
(RealityCheck-style modular decomposition).

The pieces:

* :class:`ScenarioSpec` — a picklable description of one grid point: a
  *builder name* (resolved through the registry below, so no closures
  cross process boundaries) plus kwargs (mesh dims, directory position,
  VC count, protocol), the probe mode (boundary ``search`` or full-curve
  ``sweep``) and the invariant mode (``eager`` / ``lazy`` / ``none`` —
  see :mod:`repro.core.sizing`).
* the **builder registry** — :func:`register_builder` maps names to
  network builders; :mod:`repro.protocols` and :mod:`repro.netlib`
  register theirs on import, and :func:`resolve_builder` imports both
  lazily so a bare spec unpickled in a spawn-started worker still
  resolves.
* :func:`run_scenario` — the worker body: build the network, run the
  scenario's size search/sweep locally (reusing
  :func:`~repro.core.sizing.minimal_queue_size` /
  :func:`~repro.core.sizing.sweep_queue_sizes` with their warm-start and
  phase-seeding machinery), return a compact, picklable
  :class:`ScenarioResult` (verdict map + build/query timing split — no
  solver terms).
* :class:`Experiment` — the declarative grid and its two-level scheduler:
  scenario jobs ship *specs* (not snapshots) to a reusable process pool
  (:func:`~repro.core.parallel.scenario_executor`), each worker builds its
  own ``SessionSpec`` and answers its scenario end-to-end; the inner
  query-level worker count is budgeted with
  :func:`~repro.core.parallel.nested_jobs` so N scenarios × M query
  workers never oversubscribe the machine.
* :class:`ExperimentResult` — deterministic grid-ordered aggregation with
  JSON (de)serialization: ``save``/``load`` checkpoints make runs
  *resumable* — ``Experiment.run(resume=path)`` skips every grid point
  whose key is already answered.

``benchmarks/bench_experiments.py`` measures the cross-network sharding
speedup and asserts verdict byte-identity against the sequential outer
loop; ``EXPERIMENTS.md`` maps each paper figure to its driver.
"""

from __future__ import annotations

import inspect
import itertools
import json
import warnings
from concurrent.futures import BrokenExecutor, as_completed
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..xmas import Network
from .cache import atomic_write_json
from .invariants import DEFAULT_RANK_BUDGET, DEFAULT_RANK_GROWTH
from .parallel import (
    default_jobs,
    discard_scenario_executor,
    nested_jobs,
    scenario_executor,
)
from .resilience import Deadline, RetryPolicy, maybe_inject
from .sizing import (
    INVARIANT_MODES,
    SizingResult,
    minimal_queue_size,
    sweep_queue_sizes,
)


def resolve_rank_knob(value: "int | None", kind: str) -> int:
    """A partial-mode schedule knob with the selector default applied."""
    if value is not None:
        return int(value)
    return DEFAULT_RANK_BUDGET if kind == "budget" else DEFAULT_RANK_GROWTH

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ScenarioResult",
    "ScenarioSpec",
    "builder_catalog",
    "register_builder",
    "registered_builders",
    "resolve_builder",
    "run_scenario",
]

SCENARIO_MODES = ("search", "sweep")

# ---------------------------------------------------------------------------
# Builder registry: names → network builders.  Specs pickle the *name*, so
# they stay plain data; the builder itself never crosses a process boundary.
# ---------------------------------------------------------------------------

_BUILDERS: dict[str, Callable[..., Any]] = {}
# Registration-time grouping for discovery (builder_catalog, the service's
# stats/cases ops): "abstract_mi", "mi", "msi", "fabric", "netlib", ...
_FAMILIES: dict[str, str] = {}
_DEFAULTS_LOADED = False
# Bumped on every (new) registration; Experiment.run hands it to
# scenario_executor as the cache epoch, so fork-started workers created
# before a registration are retired instead of resolving from a stale
# registry snapshot.
_REGISTRY_GENERATION = 0


def _check_builder_signature(name: str, fn: Callable[..., Any]) -> None:
    """Reject builders a :class:`ScenarioSpec` could never call.

    Specs carry kwargs only (sorted name/value pairs), so every spec
    parameter must be addressable by keyword: positional-only parameters
    and ``*args`` catch-alls are registration-time errors rather than
    grid-run-time surprises.  Non-introspectable callables (C builtins)
    pass through — the spec will fail loudly at build time instead.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.POSITIONAL_ONLY:
            raise TypeError(
                f"builder {name!r} has positional-only parameter "
                f"{param.name!r}; ScenarioSpec passes kwargs only"
            )
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            raise TypeError(
                f"builder {name!r} takes *{param.name}; ScenarioSpec "
                "passes kwargs only"
            )


def register_builder(
    name: str,
    builder: Callable[..., Any] | None = None,
    *,
    family: str = "misc",
):
    """Register ``builder`` under ``name`` (usable as a decorator).

    A builder takes keyword arguments (one of which is the scenario's
    size parameter, by default ``queue_size``) and returns a
    :class:`~repro.xmas.Network` — or an instance object with a
    ``.network`` attribute, which :meth:`ScenarioSpec.build` unwraps.
    The signature is validated at registration: every parameter must be
    keyword-addressable (see :func:`_check_builder_signature`).
    Re-registering a name with a different callable is an error (grids
    rely on names being stable across processes).

    ``family`` groups related builders for discovery — the experiment
    service's ``stats``/``cases`` ops and :func:`builder_catalog` report
    it, so a client can enumerate e.g. every ``"msi"`` case study.

    Note on start methods: under ``fork`` (the Linux default) workers
    inherit every registration made before the pool started — and the
    scheduler retires pooled workers that predate a registration.  Under
    ``spawn``, workers re-import only the stock modules, so custom
    builders must be registered at import time of an importable module.
    """

    def _register(fn: Callable[..., Any]):
        global _REGISTRY_GENERATION
        existing = _BUILDERS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"builder {name!r} is already registered")
        if existing is None:
            _check_builder_signature(name, fn)
            _BUILDERS[name] = fn
            _FAMILIES[name] = family
            _REGISTRY_GENERATION += 1
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def registry_generation() -> int:
    """Monotone counter of registry growth (executor-cache epoch)."""
    return _REGISTRY_GENERATION


def _ensure_default_builders() -> None:
    """Import the modules that self-register the stock builders.

    Spawn-started workers unpickle bare :class:`ScenarioSpec`\\ s without
    the parent's import history; resolving lazily here makes a spec
    self-contained.  The flag is only latched after both imports succeed,
    so a failed import resurfaces on the next resolution instead of
    poisoning the registry with an empty "known builders" list.
    """
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    from .. import netlib, protocols  # noqa: F401 — imported for side effect

    _DEFAULTS_LOADED = True


def resolve_builder(name: str) -> Callable[..., Any]:
    """The builder registered under ``name`` (loading stock builders)."""
    _ensure_default_builders()
    try:
        return _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS)) or "<none>"
        raise KeyError(
            f"no network builder registered as {name!r} (known: {known})"
        ) from None


def registered_builders() -> list[str]:
    """Sorted names of every registered builder."""
    _ensure_default_builders()
    return sorted(_BUILDERS)


def builder_catalog() -> dict[str, dict[str, Any]]:
    """Discovery view of the registry: ``{name: {family, params}}``.

    ``params`` lists the builder's keyword parameters in declaration
    order (empty for non-introspectable callables), so a client can see
    which axes a grid over that builder may legally span.
    """
    _ensure_default_builders()
    catalog: dict[str, dict[str, Any]] = {}
    for name in sorted(_BUILDERS):
        fn = _BUILDERS[name]
        try:
            params = list(inspect.signature(fn).parameters)
        except (TypeError, ValueError):
            params = []
        catalog[name] = {
            "family": _FAMILIES.get(name, "misc"),
            "params": params,
        }
    return catalog


def _freeze(value: Any) -> Any:
    """Canonicalise a kwargs value into hashable, picklable plain data.

    Mapping *values* are rejected rather than frozen: a dict flattened to
    sorted pairs could not be told apart from a genuine tuple when
    :meth:`ScenarioSpec.build` hands the kwargs back to the builder, so
    it would silently arrive in the wrong shape.  Builders needing a
    mapping argument should take flat kwargs or be registered behind a
    wrapper that reassembles it.
    """
    if isinstance(value, Mapping):
        raise TypeError(
            "ScenarioSpec kwargs values may not be mappings (they cannot "
            "be passed back to the builder unambiguously); register a "
            "wrapper builder that reassembles the mapping instead"
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"ScenarioSpec kwargs must be plain data, got {type(value).__name__}"
    )


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Scenario: one grid point
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One grid point: builder name + kwargs + probe and invariant modes.

    Plain data end to end — safe to pickle under any multiprocessing
    start method (including ``spawn``) and to hash/compare for grid
    deduplication and resume keys.

    Parameters
    ----------
    builder:
        Registry name (see :func:`register_builder`).
    kwargs:
        Builder keyword arguments *except* the size parameter; mappings
        and sequences are canonicalised to sorted tuples.
    mode:
        ``"search"`` — binary-search the minimal deadlock-free size
        (:func:`~repro.core.sizing.minimal_queue_size`); ``"sweep"`` —
        probe every size in :attr:`sizes`
        (:func:`~repro.core.sizing.sweep_queue_sizes`).
    sizes:
        The sweep's explicit size list (``mode="sweep"`` only).
    low, max_size:
        Search bounds (``mode="search"`` only).
    size_param:
        The builder kwarg the probed size is passed as.
    invariants:
        ``"eager"`` / ``"lazy"`` / ``"partial"`` / ``"none"`` — see
        :mod:`repro.core.sizing`.
    rank_budget, rank_growth:
        Partial-mode selection schedule (initial batch size / per-step
        growth; ``None`` = the
        :class:`~repro.core.invariants.InvariantSelector` defaults).
        Verdict-invariant by construction, so — like the scheduling
        hints — they are *excluded* from :meth:`key`; the policy actually
        used is recorded on the :class:`ScenarioResult` and a resumed run
        warns when it differs from the requested one.
    query_jobs:
        Inner query-level worker count for this scenario's sweep;
        ``None`` defers to the scheduler's nested-jobs budget.
    portfolio:
        Answer this scenario's probes through a racing
        :class:`~repro.core.portfolio.PortfolioSession` (the query-jobs
        budget becomes the racer budget).  Verdict-invariant by
        construction — the portfolio's canonical verdicts are
        byte-identical to sequential eager mode — so, like the
        scheduling hints, it is *excluded* from :meth:`key`; the
        per-strategy win record lands on the :class:`ScenarioResult`.
    label:
        Display label; defaults to a rendering of builder + kwargs.
    """

    builder: str
    kwargs: tuple[tuple[str, Any], ...] = ()
    mode: str = "search"
    sizes: tuple[int, ...] = ()
    low: int = 1
    max_size: int = 512
    size_param: str = "queue_size"
    invariants: str = "eager"
    rank_budget: int | None = None
    rank_growth: int | None = None
    query_jobs: int | None = None
    portfolio: bool = False
    label: str | None = None

    def __post_init__(self):
        if self.mode not in SCENARIO_MODES:
            raise ValueError(
                f"mode must be one of {SCENARIO_MODES}, got {self.mode!r}"
            )
        if self.invariants not in INVARIANT_MODES:
            raise ValueError(
                f"invariants must be one of {INVARIANT_MODES}, "
                f"got {self.invariants!r}"
            )
        raw = self.kwargs
        if isinstance(raw, Mapping):
            pairs = raw.items()
        else:
            pairs = tuple(raw)
        object.__setattr__(
            self,
            "kwargs",
            tuple(sorted((str(k), _freeze(v)) for k, v in pairs)),
        )
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        if self.mode == "sweep" and not self.sizes:
            raise ValueError("mode='sweep' needs a non-empty sizes list")
        if self.query_jobs is not None and self.query_jobs < 1:
            raise ValueError(
                f"query_jobs must be >= 1, got {self.query_jobs}"
            )
        for knob in ("rank_budget", "rank_growth"):
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise ValueError(f"{knob} must be >= 1, got {value}")

    # ------------------------------------------------------------------
    def key(self) -> str:
        """Canonical identity of this grid point (resume / dedup key).

        Scheduling hints (``query_jobs``, ``label``, ``portfolio``) and
        the partial-mode selection schedule (``rank_budget``,
        ``rank_growth``) are excluded: they do not change the scenario's
        verdicts (escalation terminates at the full set and portfolio
        racing reports the canonical verdicts, so any schedule is
        byte-identical).
        :meth:`Experiment.run` warns when a resumed result was recorded
        under a different selection policy.
        """
        payload = {
            "builder": self.builder,
            "kwargs": {k: _jsonable(v) for k, v in self.kwargs},
            "mode": self.mode,
            "sizes": list(self.sizes),
            "low": self.low,
            "max_size": self.max_size,
            "size_param": self.size_param,
            "invariants": self.invariants,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"{self.builder}({rendered})"

    # ------------------------------------------------------------------
    def build(self, size: int | None = None) -> Network:
        """Construct this scenario's network (at ``size``, if given)."""
        maybe_inject("builder")
        builder = resolve_builder(self.builder)
        kwargs = dict(self.kwargs)
        if size is not None:
            kwargs[self.size_param] = size
        built = builder(**kwargs)
        if not isinstance(built, Network):
            built = getattr(built, "network", built)
        return built

    def build_callable(self) -> Callable[[int], Network]:
        """The ``build(size)`` callable the sizing functions consume."""
        return lambda size: self.build(size)

    def session_spec(self, size: int | None = None, **spec_kwargs):
        """Open the build phase this spec *describes*
        (:class:`~repro.core.engine.SessionSpec`) without going through a
        size search — the engine hook for one-off queries on a grid point.
        """
        from .engine import SessionSpec

        return SessionSpec(self.build(size), **spec_kwargs)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """Compact, picklable outcome of one scenario.

    Carries verdicts and counters only — no solver terms, witnesses or
    :class:`~repro.core.result.VerificationResult` objects — so it
    travels cheaply from worker processes and serialises to JSON.
    """

    key: str
    label: str
    minimal_size: int | None
    probes: dict[int, bool]
    build_seconds: float
    query_seconds: float
    total_seconds: float
    invariants_mode: str
    invariants_used: bool
    lazy_escalations: int
    # Selection ablation (see repro.core.invariants): rows actually
    # encoded, their static-rank-tier histogram, and the partial-mode
    # schedule the run used (None outside partial mode) — the "recorded
    # selection policy" resume runs are checked against.
    invariants_generated: int = 0
    rank_histogram: dict[int, int] = field(default_factory=dict)
    rank_budget: int | None = None
    rank_growth: int | None = None
    # Portfolio racing record (strategy name -> probes won, and the race
    # count behind them).  Empty/zero when the scenario ran without a
    # portfolio — and on results loaded from pre-portfolio checkpoints,
    # which carry neither field.
    strategy_wins: dict[str, int] = field(default_factory=dict)
    portfolio_races: int = 0
    stats: dict = field(default_factory=dict)
    # Structured failure record (None on success): set when a scenario
    # exhausted the whole quarantine ladder (pool retries, then inline
    # as-spec'd, then sequential eager) without producing verdicts.  A
    # failed result still occupies its grid slot — the rest of the grid
    # completes — and a resumed run retries it instead of reusing it.
    failure: dict | None = None

    @classmethod
    def failed(
        cls,
        spec: ScenarioSpec,
        error: BaseException,
        attempts: int = 0,
        total_seconds: float = 0.0,
    ) -> "ScenarioResult":
        """A placeholder result for a scenario that could not be answered."""
        return cls(
            key=spec.key(),
            label=spec.display_label,
            minimal_size=None,
            probes={},
            build_seconds=0.0,
            query_seconds=0.0,
            total_seconds=round(total_seconds, 6),
            invariants_mode=spec.invariants,
            invariants_used=False,
            lazy_escalations=0,
            failure={
                "type": type(error).__name__,
                "message": str(error),
                "attempts": int(attempts),
            },
        )

    @classmethod
    def from_sizing(
        cls,
        spec: ScenarioSpec,
        sizing: SizingResult,
        total_seconds: float,
    ) -> "ScenarioResult":
        solver_totals: dict[str, int] = {}
        network_stats: dict = {}
        for result in sizing.results.values():
            if not network_stats:
                network_stats = dict(result.stats.get("network", {}))
            for key, value in result.stats.get("solver", {}).items():
                if isinstance(value, (int, float)):
                    solver_totals[key] = solver_totals.get(key, 0) + value
        partial = spec.invariants == "partial"
        return cls(
            key=spec.key(),
            label=spec.display_label,
            minimal_size=sizing.minimal_size,
            probes=dict(sorted(sizing.probes.items())),
            build_seconds=round(sizing.build_seconds, 6),
            query_seconds=round(sizing.query_seconds, 6),
            total_seconds=round(total_seconds, 6),
            invariants_mode=sizing.invariants_mode,
            invariants_used=sizing.invariants_used,
            lazy_escalations=sizing.lazy_escalations,
            invariants_generated=sizing.invariants_generated,
            rank_histogram=dict(sorted(sizing.rank_histogram.items())),
            rank_budget=resolve_rank_knob(spec.rank_budget, "budget")
            if partial
            else None,
            rank_growth=resolve_rank_knob(spec.rank_growth, "growth")
            if partial
            else None,
            strategy_wins=dict(sorted(sizing.strategy_wins.items())),
            portfolio_races=sizing.portfolio_races,
            stats={"network": network_stats, "solver_totals": solver_totals},
        )

    def to_json(self) -> dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["probes"] = {str(size): free for size, free in self.probes.items()}
        data["rank_histogram"] = {
            str(tier): count for tier, count in self.rank_histogram.items()
        }
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "ScenarioResult":
        payload = dict(data)
        payload["probes"] = {
            int(size): bool(free) for size, free in payload["probes"].items()
        }
        if "rank_histogram" in payload:
            payload["rank_histogram"] = {
                int(tier): int(count)
                for tier, count in payload["rank_histogram"].items()
            }
        # Pre-portfolio checkpoints carry neither field; the dataclass
        # defaults (no wins, zero races) make them load unchanged.
        if "strategy_wins" in payload:
            payload["strategy_wins"] = {
                str(name): int(count)
                for name, count in payload["strategy_wins"].items()
            }
        return cls(**payload)

    def verdicts(self) -> list:
        """Canonical verdict payload (what byte-identity is asserted on)."""
        return [
            self.key,
            self.minimal_size,
            sorted(self.probes.items()),
        ]


@dataclass
class ExperimentResult:
    """Grid-ordered aggregation of scenario results.

    ``scenarios`` follows the experiment's deterministic grid order no
    matter which worker finished first.  ``computed`` / ``reused`` count
    this *run*'s work: a fully resumed run reports ``computed == 0``.

    The resilience counters record how bumpy the run was: ``retries`` —
    pool rebuilds after a worker crash plus per-scenario re-attempts;
    ``degraded`` — scenarios that fell back to the sequential-eager rung
    of the quarantine ladder; ``failures`` — scenarios that exhausted the
    ladder and landed as :meth:`ScenarioResult.failed` placeholders.  All
    three survive JSON checkpoints (and default to zero when loading a
    pre-resilience checkpoint).
    """

    name: str
    scenarios: list[ScenarioResult] = field(default_factory=list)
    computed: int = 0
    reused: int = 0
    failures: int = 0
    retries: int = 0
    degraded: int = 0

    def by_key(self) -> dict[str, ScenarioResult]:
        return {result.key: result for result in self.scenarios}

    @property
    def build_seconds(self) -> float:
        return sum(result.build_seconds for result in self.scenarios)

    @property
    def query_seconds(self) -> float:
        return sum(result.query_seconds for result in self.scenarios)

    @property
    def portfolio_races(self) -> int:
        return sum(result.portfolio_races for result in self.scenarios)

    def strategy_wins(self) -> dict[str, int]:
        """Per-strategy probe wins summed over every scenario."""
        wins: dict[str, int] = {}
        for result in self.scenarios:
            for name, count in result.strategy_wins.items():
                wins[name] = wins.get(name, 0) + count
        return dict(sorted(wins.items()))

    def verdict_bytes(self) -> bytes:
        """Canonical byte encoding of every scenario's verdicts — the
        sequential and sharded schedulers must agree on it exactly."""
        return json.dumps(
            [result.verdicts() for result in self.scenarios],
            sort_keys=True,
            separators=(",", ":"),
        ).encode()

    def pretty(self) -> str:
        lines = [f"experiment {self.name!r}: {len(self.scenarios)} scenarios"]
        for result in self.scenarios:
            probed = ", ".join(
                f"{size}:{'free' if free else 'dl'}"
                for size, free in sorted(result.probes.items())
            )
            lines.append(
                f"  {result.label}: minimal={result.minimal_size} "
                f"({probed}) build {result.build_seconds:.2f}s / "
                f"query {result.query_seconds:.2f}s"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "name": self.name,
            "computed": self.computed,
            "reused": self.reused,
            "failures": self.failures,
            "retries": self.retries,
            "degraded": self.degraded,
            "scenarios": [result.to_json() for result in self.scenarios],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ExperimentResult":
        return cls(
            name=data["name"],
            scenarios=[
                ScenarioResult.from_json(entry)
                for entry in data.get("scenarios", [])
            ],
            computed=int(data.get("computed", 0)),
            reused=int(data.get("reused", 0)),
            failures=int(data.get("failures", 0)),
            retries=int(data.get("retries", 0)),
            degraded=int(data.get("degraded", 0)),
        )

    def save(self, path: str | Path) -> None:
        """Checkpoint atomically (temp file in the same directory, then
        ``os.replace``): a crash mid-write leaves either the previous
        checkpoint or the new one, never a torn resume file."""
        atomic_write_json(path, self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        return cls.from_json(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# The worker body
# ---------------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    query_jobs: int | None = None,
    backend: str = "process",
    portfolio: bool | None = None,
    portfolio_lead: str | None = None,
    deadline=None,
) -> ScenarioResult:
    """Build and answer one scenario end to end (the worker body).

    The builder is resolved by name, the network is built *in this
    process*, and the scenario's size search/sweep runs locally on its
    own sessions — nothing but the spec comes in and nothing but the
    compact result goes out.  ``query_jobs`` is the scheduler's
    nested-jobs budget; the spec's own :attr:`ScenarioSpec.query_jobs`
    overrides it.  When the probes race through a portfolio, that same
    budget caps the racer count (:func:`~repro.core.portfolio.racer_budget`),
    so the two-level jobs accounting is unchanged.  ``portfolio=None``
    defers to :attr:`ScenarioSpec.portfolio`; ``portfolio_lead`` names
    the strategy the scheduler wants raced first (its learned leader for
    this scenario's family).  ``deadline`` bounds every probe
    (:class:`~repro.core.resilience.Deadline` or wire tuple — it crosses
    the scenario-pool boundary as plain data); sizes the budget could not
    answer land as ``TIMEOUT`` probes, never hangs.
    """
    start = perf_counter()
    maybe_inject("scenario-worker")
    deadline = Deadline.coerce(deadline)
    inner = spec.query_jobs if spec.query_jobs is not None else (query_jobs or 1)
    use_portfolio = spec.portfolio if portfolio is None else portfolio
    build = spec.build_callable()
    if spec.mode == "search":
        sizing = minimal_queue_size(
            build,
            low=spec.low,
            max_size=spec.max_size,
            invariants=spec.invariants,
            rank_budget=spec.rank_budget,
            rank_growth=spec.rank_growth,
            portfolio=use_portfolio,
            portfolio_jobs=inner,
            portfolio_lead=portfolio_lead,
            deadline=deadline,
        )
    else:
        sizing = sweep_queue_sizes(
            build,
            spec.sizes,
            jobs=inner,
            backend=backend,
            invariants=spec.invariants,
            rank_budget=spec.rank_budget,
            rank_growth=spec.rank_growth,
            portfolio=use_portfolio,
            portfolio_lead=portfolio_lead,
            deadline=deadline,
        )
    return ScenarioResult.from_sizing(spec, sizing, perf_counter() - start)


# ---------------------------------------------------------------------------
# The experiment grid and its two-level scheduler
# ---------------------------------------------------------------------------


class Experiment:
    """A declarative grid of :class:`ScenarioSpec`\\ s and its scheduler.

    Construct directly from an explicit scenario list, or expand a
    cartesian grid with :meth:`grid`.  Scenario keys must be unique —
    they are the resume identity.
    """

    def __init__(self, name: str, scenarios: Iterable[ScenarioSpec]):
        self.name = name
        self.scenarios = list(scenarios)
        seen: set[str] = set()
        for spec in self.scenarios:
            key = spec.key()
            if key in seen:
                raise ValueError(f"duplicate scenario in grid: {key}")
            seen.add(key)

    @classmethod
    def grid(
        cls,
        name: str,
        builder: str,
        axes: Mapping[str, Sequence] | None = None,
        base: Mapping[str, Any] | None = None,
        mode: str = "search",
        sizes: Sequence[int] = (),
        low: int = 1,
        max_size: int = 512,
        size_param: str = "queue_size",
        invariants: str = "eager",
        rank_budget: int | None = None,
        rank_growth: int | None = None,
        query_jobs: int | None = None,
    ) -> "Experiment":
        """Expand ``axes`` (kwarg name → values) into a cartesian grid.

        Expansion order is deterministic: axes vary right-to-left in the
        given axis order (``itertools.product`` order), so the grid — and
        every result list over it — is stable across runs and machines.
        """
        axes = dict(axes or {})
        base = dict(base or {})
        names = list(axes)
        scenarios = []
        for combo in itertools.product(*(axes[axis] for axis in names)):
            kwargs = dict(base)
            kwargs.update(zip(names, combo))
            scenarios.append(
                ScenarioSpec(
                    builder=builder,
                    kwargs=kwargs,
                    mode=mode,
                    sizes=tuple(sizes),
                    low=low,
                    max_size=max_size,
                    size_param=size_param,
                    invariants=invariants,
                    rank_budget=rank_budget,
                    rank_growth=rank_growth,
                    query_jobs=query_jobs,
                )
            )
        return cls(name, scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: int | None = None,
        query_jobs: "int | str | None" = None,
        backend: str = "process",
        resume: "ExperimentResult | str | Path | None" = None,
        save_path: str | Path | None = None,
        progress: Callable[[ScenarioResult], None] | None = None,
        portfolio: bool | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline=None,
    ) -> ExperimentResult:
        """Answer every grid point; returns grid-ordered results.

        Parameters
        ----------
        jobs:
            Scenario-level worker count (outer shards).  Defaults to
            :func:`~repro.core.parallel.default_jobs` capped at the
            pending grid size; ``1`` runs the outer loop inline — no
            pool, identical verdicts.
        query_jobs:
            Inner per-scenario query worker budget.  Defaults to ``1`` —
            each scenario answers its sweep sequentially, so results
            (including the lazy-invariant escalation record) are
            identical on every machine.  Pass ``"auto"`` to split the
            machine budget instead
            (:func:`~repro.core.parallel.nested_jobs` of the outer
            count, so N scenarios × M query workers never exceed it;
            ``ADVOCAT_JOBS`` caps both levels), or an explicit count.
        backend:
            ``"process"`` (real parallelism) or ``"thread"`` (GIL-bound;
            differential tests).
        resume:
            A prior :class:`ExperimentResult` (or a path to one saved
            with :meth:`ExperimentResult.save`); grid points whose key it
            already answers are *not rebuilt* and are carried over.  A
            path that does not exist yet is an empty resume set — the
            documented ``--save X --resume X`` idiom works even when the
            first run died before its first checkpoint.
        save_path:
            Checkpoint the partial result here after every completed
            scenario (and the final result at the end) — crash-resumable.
        progress:
            Callback invoked with each newly computed
            :class:`ScenarioResult` as it lands (worker completion
            order).
        portfolio:
            ``None`` (default) defers to each spec's
            :attr:`ScenarioSpec.portfolio`; ``True``/``False`` overrides
            the whole grid.  Portfolio scenarios are seeded with a
            *learned leader*: the scheduler tallies per-strategy wins
            from prior results of the same scenario family (same
            builder) — resumed checkpoints and, on the inline path,
            results landing earlier in this run — and races that
            family's winningest strategy first.  Verdicts are unchanged
            either way; only which racer tends to finish first is.
        retry_policy:
            Backoff schedule for the fault-tolerant scheduler (defaults
            to :class:`~repro.core.resilience.RetryPolicy`).  A scenario
            that crashes its worker is resubmitted to a rebuilt pool up
            to ``max_attempts`` times, then *quarantined*: re-run inline
            as spec'd, then degraded to a sequential-eager fallback, and
            only if that also fails recorded as a structured
            :attr:`ScenarioResult.failure` — the rest of the grid always
            completes.
        deadline:
            Optional :class:`~repro.core.resilience.Deadline` (or bare
            seconds) bounding every probe; budget-exhausted probes land
            as ``TIMEOUT`` verdicts with their stats retained.
        """
        if backend not in ("process", "thread"):
            raise ValueError(f"unknown backend {backend!r}")
        # Fail fast on unresolvable builders: a worker-side KeyError
        # would surface as an opaque pool failure mid-run.
        for spec in self.scenarios:
            resolve_builder(spec.builder)
        policy = retry_policy or RetryPolicy()
        deadline = Deadline.coerce(deadline)
        completed: dict[str, ScenarioResult] = {}
        if resume is not None:
            if not isinstance(resume, ExperimentResult):
                if Path(resume).exists():
                    resume = ExperimentResult.load(resume)
                else:
                    resume = ExperimentResult(name=self.name)
            completed = resume.by_key()
            # Failure placeholders are never *reused*: a resumed run gets
            # a fresh shot at the scenarios the previous run quarantined.
            completed = {
                key: result
                for key, result in completed.items()
                if result.failure is None
            }

        grid_keys = [spec.key() for spec in self.scenarios]
        pending = [
            spec for spec in self.scenarios if spec.key() not in completed
        ]
        reused = sum(1 for key in grid_keys if key in completed)
        # Reusing a completed key is sound: keys pin every
        # verdict-relevant field (including the invariants *mode*), and
        # any partial-mode escalation schedule is verdict-identical.  The
        # schedule is deliberately outside the key, though, so a result
        # recorded under a different rank_budget/rank_growth can be
        # spliced in — its ablation counters reflect the recorded policy,
        # which must be loud, not silent.
        for spec in self.scenarios:
            if spec.invariants != "partial":
                continue
            prior = completed.get(spec.key())
            if prior is None:
                continue
            wanted = (
                resolve_rank_knob(spec.rank_budget, "budget"),
                resolve_rank_knob(spec.rank_growth, "growth"),
            )
            recorded = (prior.rank_budget, prior.rank_growth)
            if recorded != wanted:
                warnings.warn(
                    f"resume: reusing scenario {prior.label!r} recorded "
                    f"under a different selection policy: rank schedule "
                    f"{recorded} (requested {wanted}) — verdicts are "
                    "identical by construction, but its "
                    "invariant-selection counters reflect the recorded "
                    "policy",
                    stacklevel=2,
                )
        if jobs is None:
            jobs = min(default_jobs(), max(1, len(pending)))
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        jobs = min(jobs, len(pending)) if pending else 1
        if query_jobs is None:
            inner = 1
        elif query_jobs == "auto":
            inner = nested_jobs(jobs)
        else:
            inner = int(query_jobs)
        if inner < 1:
            raise ValueError(f"query_jobs must be >= 1, got {inner}")

        results_by_key = {
            key: completed[key] for key in grid_keys if key in completed
        }
        computed = 0
        failures = 0
        retries = 0
        degraded = 0

        # Leader learning: per scenario *family* (builder name — the
        # finest grain the grid shares solver behaviour across), tally
        # which portfolio strategy won the most probes so far.  Scenario
        # keys are JSON payloads, so the family of a resumed result is
        # recoverable without its spec.
        family_wins: dict[str, dict[str, int]] = {}

        def credit_wins(key: str, wins: Mapping[str, int]) -> None:
            family = json.loads(key)["builder"]
            tally = family_wins.setdefault(family, {})
            for name, count in wins.items():
                tally[name] = tally.get(name, 0) + int(count)

        for key, prior in completed.items():
            if prior.strategy_wins:
                credit_wins(key, prior.strategy_wins)

        def lead_for(spec: ScenarioSpec) -> str | None:
            tally = family_wins.get(spec.builder)
            if not tally:
                return None
            # Deterministic argmax: most wins, ties broken by name.
            best = max(sorted(tally), key=lambda name: tally[name])
            return best if tally[best] > 0 else None

        def checkpoint() -> None:
            if save_path is None:
                return
            partial = ExperimentResult(
                name=self.name,
                scenarios=[
                    results_by_key[key]
                    for key in grid_keys
                    if key in results_by_key
                ],
                computed=computed,
                reused=reused,
                failures=failures,
                retries=retries,
                degraded=degraded,
            )
            partial.save(save_path)

        def land(result: ScenarioResult) -> None:
            nonlocal computed
            results_by_key[result.key] = result
            computed += 1
            if result.strategy_wins:
                credit_wins(result.key, result.strategy_wins)
            checkpoint()
            if progress is not None:
                progress(result)

        def run_quarantined(spec: ScenarioSpec, attempts: int) -> ScenarioResult:
            """The in-process rungs of the quarantine ladder.

            A scenario lands here after exhausting its pool attempts (or
            after its worker answered with an exception): first re-run it
            inline exactly as spec'd, then degrade to a sequential-eager
            single-session replay (same key — ``portfolio``/``query_jobs``
            are verdict-invariant scheduling hints), and only when that
            also fails return a structured failure placeholder so the
            rest of the grid still completes.
            """
            nonlocal failures, retries, degraded
            start = perf_counter()
            retries += 1
            try:
                return run_scenario(
                    spec,
                    query_jobs=inner,
                    backend=backend,
                    portfolio=portfolio,
                    portfolio_lead=lead_for(spec),
                    deadline=deadline,
                )
            except Exception:
                pass
            degraded += 1
            fallback = replace(spec, portfolio=False, query_jobs=1)
            try:
                return run_scenario(
                    fallback,
                    query_jobs=1,
                    backend=backend,
                    portfolio=False,
                    deadline=deadline,
                )
            except Exception as error:
                failures += 1
                return ScenarioResult.failed(
                    spec,
                    error,
                    attempts=attempts,
                    total_seconds=perf_counter() - start,
                )

        if pending:
            if jobs == 1:
                # Inline scheduling learns within the run: each scenario's
                # leader reflects every earlier result of its family.
                for spec in pending:
                    try:
                        land(
                            run_scenario(
                                spec,
                                query_jobs=inner,
                                backend=backend,
                                portfolio=portfolio,
                                portfolio_lead=lead_for(spec),
                                deadline=deadline,
                            )
                        )
                    except Exception:
                        land(run_quarantined(spec, attempts=1))
            else:
                # Fault-tolerant pool scheduling.  Every spec carries an
                # attempt count; a BrokenExecutor (worker crash) evicts
                # the poisoned pool, backs off, and resubmits whatever
                # has not landed yet to a fresh one.  A spec that burns
                # through ``policy.max_attempts`` pool rounds without
                # landing — the crash-the-worker-every-time case — is
                # quarantined onto the inline ladder instead of poisoning
                # pool after pool.
                attempts = {spec.key(): 0 for spec in pending}
                remaining = list(pending)
                crash_round = 0
                wire = None if deadline is None else deadline.to_wire()
                while remaining:
                    pooled = []
                    for spec in remaining:
                        if attempts[spec.key()] >= policy.max_attempts:
                            land(
                                run_quarantined(
                                    spec, attempts=attempts[spec.key()]
                                )
                            )
                        else:
                            pooled.append(spec)
                    remaining = []
                    if not pooled:
                        break
                    executor = scenario_executor(
                        jobs, backend, epoch=registry_generation()
                    )
                    # Pool submissions are all in flight at once, so
                    # leaders come from the resume seed only
                    # (cross-*run* learning).  The deadline crosses the
                    # pool boundary as its wire tuple: worker clocks are
                    # not comparable with ours.
                    future_spec = {}
                    for spec in pooled:
                        attempts[spec.key()] += 1
                        future = executor.submit(
                            run_scenario,
                            spec,
                            inner,
                            backend,
                            portfolio,
                            lead_for(spec),
                            wire,
                        )
                        future_spec[future] = spec
                    try:
                        for future in as_completed(future_spec):
                            spec = future_spec[future]
                            try:
                                land(future.result())
                            except BrokenExecutor:
                                raise
                            except Exception:
                                # The worker answered with an exception
                                # (builder bug, injected raise): the pool
                                # is intact; quarantine just this spec.
                                land(
                                    run_quarantined(
                                        spec, attempts=attempts[spec.key()]
                                    )
                                )
                    except BrokenExecutor:
                        # A dead worker poisons the pool permanently;
                        # evict the cached entry, back off, and rerun
                        # everything that has not landed against a fresh
                        # pool (the checkpoint, if any, already holds
                        # what did land).
                        discard_scenario_executor(jobs, backend)
                        retries += 1
                        remaining = [
                            spec
                            for spec in future_spec.values()
                            if spec.key() not in results_by_key
                        ]
                        if remaining:
                            policy.sleep(crash_round)
                            crash_round += 1
                    finally:
                        for future in future_spec:
                            future.cancel()

        result = ExperimentResult(
            name=self.name,
            scenarios=[results_by_key[key] for key in grid_keys],
            computed=computed,
            reused=reused,
            failures=failures,
            retries=retries,
            degraded=degraded,
        )
        if save_path is not None:
            result.save(save_path)
        return result
