"""Cross-layer invariant generation (Section 4).

Implements the Chatterjee–Kishinevsky flow method extended with the paper's
four automaton equation families:

1. ``Σ_s A.s = 1`` — an automaton is in exactly one state;
2. per state ``s``: ``Σ_{t into s} κ_t = Σ_{t out of s} κ_t + A.s − (s = s₀)``;
3. per ~-equivalence class ``I`` of (in-channel, color) tuples:
   ``Σ_{(i,d)∈I} λ_i^d = Σ_{t ∈ T(I)} κ_t``  (Equation 2 of the paper);
4. dually for out-channel classes, partitioned by shared producing
   transitions.

Together with the per-primitive flow-conservation rows (queue, function,
fork, join, switch, merge), these form a sparse rational matrix over

    λ-columns (transfer counts per channel/color),
    κ-columns (firing counts per automaton transition),
    #q.d-columns (queue occupancies), A.s-columns (state indicators),
    and one affine constant column.

Gaussian elimination sweeps the λ- and κ-columns away
(:func:`repro.linalg.eliminate_columns`); every surviving row is a linear
invariant over occupancies and state indicators that holds in *every
reachable configuration* — the cross-layer invariants that rule out
unreachable deadlock candidates.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Hashable, Sequence

from ..linalg import SparseVector, eliminate_columns
from ..xmas import (
    Automaton,
    Channel,
    Fork,
    Function,
    Join,
    Merge,
    Network,
    Queue,
    Sink,
    Source,
    Switch,
)
from .colors import ColorMap
from .result import Invariant
from .vars import VarPool

__all__ = [
    "generate_invariants",
    "build_flow_rows",
    "FlowColumns",
    "invariant_features",
    "rank_invariants",
    "encode_invariant_rows",
    "InvariantSelector",
    "DEFAULT_RANK_BUDGET",
    "DEFAULT_RANK_GROWTH",
]

Color = Hashable


class FlowColumns:
    """Column registry for the flow matrix."""

    CONST = 0

    def __init__(self) -> None:
        self._next = itertools.count(1)
        self._lam: dict[tuple[str, Color], int] = {}
        self._kappa: dict[tuple[str, str], int] = {}
        self._occ: dict[tuple[str, Color], int] = {}
        self._state: dict[tuple[str, str], int] = {}

    def lam(self, channel: Channel, color: Color) -> int:
        return self._lam.setdefault((channel.name, color), next(self._next))

    def kappa(self, automaton: Automaton, transition_name: str) -> int:
        return self._kappa.setdefault(
            (automaton.name, transition_name), next(self._next)
        )

    def occ(self, queue: Queue, color: Color) -> int:
        return self._occ.setdefault((queue.name, color), next(self._next))

    def state(self, automaton: Automaton, state: str) -> int:
        return self._state.setdefault((automaton.name, state), next(self._next))

    def eliminable(self) -> frozenset[int]:
        """λ and κ columns — swept away by Gaussian elimination."""
        return frozenset(self._lam.values()) | frozenset(self._kappa.values())

    def occ_items(self) -> dict[int, tuple[str, Color]]:
        return {col: key for key, col in self._occ.items()}

    def state_items(self) -> dict[int, tuple[str, str]]:
        return {col: key for key, col in self._state.items()}


# ---------------------------------------------------------------------------
# Row construction
# ---------------------------------------------------------------------------


def build_flow_rows(
    network: Network, colors: ColorMap
) -> tuple[list[SparseVector], FlowColumns]:
    """All flow-conservation and automaton rows (each row reads "… = 0")."""
    cols = FlowColumns()
    rows: list[SparseVector] = []
    for primitive in network.primitives.values():
        if isinstance(primitive, Queue):
            _queue_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, Function):
            _function_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, Fork):
            _fork_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, Join):
            _join_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, Switch):
            _switch_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, Merge):
            _merge_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, Automaton):
            _automaton_rows(network, colors, cols, primitive, rows)
        elif isinstance(primitive, (Source, Sink)):
            pass  # sources/sinks impose no conservation law
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"no flow rows for {type(primitive).__name__}")
    return rows, cols


def _queue_rows(network, colors, cols, queue: Queue, rows) -> None:
    in_channel = network.channel_of(queue.i)
    out_channel = network.channel_of(queue.o)
    for color in colors.of(in_channel):
        # λ_in − λ_out − #q.d = 0 (queues start empty).
        rows.append(
            SparseVector(
                {
                    cols.lam(in_channel, color): 1,
                    cols.lam(out_channel, color): -1,
                    cols.occ(queue, color): -1,
                }
            )
        )


def _function_rows(network, colors, cols, function: Function, rows) -> None:
    in_channel = network.channel_of(function.i)
    out_channel = network.channel_of(function.o)
    by_output: dict[Color, list[Color]] = {}
    for color in colors.of(in_channel):
        by_output.setdefault(function.fn(color), []).append(color)
    for out_color, preimages in by_output.items():
        entries = {cols.lam(out_channel, out_color): Fraction(1)}
        for color in preimages:
            entries[cols.lam(in_channel, color)] = Fraction(-1)
        rows.append(SparseVector(entries))


def _fork_rows(network, colors, cols, fork: Fork, rows) -> None:
    in_channel = network.channel_of(fork.i)
    for out_port, transform in ((fork.a, fork.fn_a), (fork.b, fork.fn_b)):
        out_channel = network.channel_of(out_port)
        by_output: dict[Color, list[Color]] = {}
        for color in colors.of(in_channel):
            by_output.setdefault(transform(color), []).append(color)
        for out_color, preimages in by_output.items():
            entries = {cols.lam(out_channel, out_color): Fraction(1)}
            for color in preimages:
                entries[cols.lam(in_channel, color)] = Fraction(-1)
            rows.append(SparseVector(entries))


def _join_rows(network, colors, cols, join: Join, rows) -> None:
    chan_a = network.channel_of(join.a)
    chan_b = network.channel_of(join.b)
    chan_o = network.channel_of(join.o)
    total_o = {cols.lam(chan_o, d): Fraction(1) for d in colors.of(chan_o)}
    for in_channel in (chan_a, chan_b):
        entries = dict(total_o)
        for color in colors.of(in_channel):
            entries[cols.lam(in_channel, color)] = (
                entries.get(cols.lam(in_channel, color), Fraction(0)) - 1
            )
        rows.append(SparseVector(entries))


def _switch_rows(network, colors, cols, switch: Switch, rows) -> None:
    in_channel = network.channel_of(switch.i)
    for color in colors.of(in_channel):
        out_channel = network.channel_of(switch.outs[switch.route(color)])
        rows.append(
            SparseVector(
                {
                    cols.lam(in_channel, color): 1,
                    cols.lam(out_channel, color): -1,
                }
            )
        )


def _merge_rows(network, colors, cols, merge: Merge, rows) -> None:
    out_channel = network.channel_of(merge.o)
    for color in colors.of(out_channel):
        entries = {cols.lam(out_channel, color): Fraction(1)}
        for port in merge.ins:
            in_channel = network.channel_of(port)
            if color in colors.of(in_channel):
                entries[cols.lam(in_channel, color)] = Fraction(-1)
        rows.append(SparseVector(entries))


# ---------------------------------------------------------------------------
# Automaton rows — the paper's contribution (Equations 1 and 2 + duals)
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return parent
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def classes(self) -> dict:
        groups: dict = {}
        for item in list(self._parent):
            groups.setdefault(self.find(item), []).append(item)
        return groups


def _automaton_rows(network, colors, cols, automaton: Automaton, rows) -> None:
    # (Family 1)  Σ_s A.s − 1 = 0
    entries = {cols.state(automaton, s): Fraction(1) for s in automaton.states}
    entries[FlowColumns.CONST] = Fraction(-1)
    rows.append(SparseVector(entries))

    # (Family 2)  per state s: Σ_in κ − Σ_out κ − A.s + (s = s₀) = 0
    for state in automaton.states:
        entries = {}

        def bump(column: int, delta: int) -> None:
            entries[column] = entries.get(column, Fraction(0)) + delta

        for t in automaton.transitions_into(state):
            bump(cols.kappa(automaton, t.name), +1)
        for t in automaton.transitions_from(state):
            bump(cols.kappa(automaton, t.name), -1)
        bump(cols.state(automaton, state), -1)
        if state == automaton.initial:
            bump(FlowColumns.CONST, +1)
        rows.append(SparseVector(entries))

    # (Family 3)  in-channel classes: Σ_{(i,d)∈I} λ = Σ_{t∈T(I)} κ
    in_uf = _UnionFind()
    acceptors: dict[tuple[str, Color], list] = {}
    for port in automaton.in_ports():
        in_channel = network.channel_of(port)
        for color in colors.of(in_channel):
            tuple_key = (port.name, color)
            accepting = [
                t
                for t in automaton.transitions_on_port(port.name)
                if t.accepts(color)
            ]
            if not accepting:
                # Never consumed: λ_{i,d} = 0 is itself an invariant row.
                rows.append(SparseVector({cols.lam(in_channel, color): 1}))
                continue
            acceptors[tuple_key] = accepting
            in_uf.find(tuple_key)
            for t in accepting:
                in_uf.union(tuple_key, ("transition", t.name))
    for members in in_uf.classes().values():
        tuple_members = [m for m in members if m[0] != "transition"]
        if not tuple_members:
            continue
        entries = {}
        transitions: set[str] = set()
        for port_name, color in tuple_members:
            in_channel = network.channel_of(automaton.port(port_name))
            entries[cols.lam(in_channel, color)] = Fraction(1)
            transitions.update(t.name for t in acceptors[(port_name, color)])
        for name in transitions:
            entries[cols.kappa(automaton, name)] = (
                entries.get(cols.kappa(automaton, name), Fraction(0)) - 1
            )
        rows.append(SparseVector(entries))

    # (Family 4)  out-channel classes, partitioned by producing transitions.
    out_uf = _UnionFind()
    producers: dict[tuple[str, Color], set[str]] = {}
    produced_tuples: dict[str, set[tuple[str, Color]]] = {}
    for t in automaton.transitions:
        if t.out_port is None:
            continue
        in_channel = network.channel_of(automaton.port(t.in_port))
        outputs = {
            t.output(d)
            for d in colors.of(in_channel)
            if t.accepts(d)
        }
        outputs.discard(None)
        tuples = {(port, color) for port, color in outputs}  # type: ignore[misc]
        if not tuples:
            continue
        produced_tuples[t.name] = tuples
        for tup in tuples:
            producers.setdefault(tup, set()).add(t.name)
            out_uf.find(tup)
            out_uf.union(tup, ("transition", t.name))
    for port in automaton.out_ports():
        out_channel = network.channel_of(port)
        for color in colors.of(out_channel):
            if (port.name, color) not in producers:
                rows.append(SparseVector({cols.lam(out_channel, color): 1}))
    for members in out_uf.classes().values():
        tuple_members = [m for m in members if m[0] != "transition"]
        if not tuple_members:
            continue
        entries = {}
        transitions = set()
        for port_name, color in tuple_members:
            out_channel = network.channel_of(automaton.port(port_name))
            entries[cols.lam(out_channel, color)] = Fraction(1)
            transitions.update(producers[(port_name, color)])
        for name in transitions:
            entries[cols.kappa(automaton, name)] = (
                entries.get(cols.kappa(automaton, name), Fraction(0)) - 1
            )
        rows.append(SparseVector(entries))


# ---------------------------------------------------------------------------
# Elimination and invariant extraction
# ---------------------------------------------------------------------------


def generate_invariants(
    network: Network, colors: ColorMap, pool: VarPool
) -> list[Invariant]:
    """Derive the cross-layer invariants of ``network``.

    Returns one :class:`Invariant` per surviving row of the eliminated flow
    matrix, expressed over the pool's ``#q.d`` and ``A.s`` variables.
    """
    rows, cols = build_flow_rows(network, colors)
    survivors = eliminate_columns(rows, cols.eliminable())

    occ_lookup = cols.occ_items()
    state_lookup = cols.state_items()
    queue_by_name = {q.name: q for q in network.queues()}
    automaton_by_name = {a.name: a for a in network.automata()}

    invariants = []
    for row in survivors:
        row = row.normalized_integer()
        coeffs = {}
        constant = Fraction(0)
        for column, coeff in row:
            if column == FlowColumns.CONST:
                constant = coeff
            elif column in occ_lookup:
                queue_name, color = occ_lookup[column]
                coeffs[pool.occupancy(queue_by_name[queue_name], color)] = coeff
            elif column in state_lookup:
                automaton_name, state = state_lookup[column]
                coeffs[pool.state(automaton_by_name[automaton_name], state)] = coeff
            else:  # pragma: no cover - eliminated columns cannot survive
                raise AssertionError("eliminable column survived elimination")
        invariants.append(Invariant(coeffs, constant))
    return invariants


# ---------------------------------------------------------------------------
# Ranked partial invariant sets (the selection engine)
# ---------------------------------------------------------------------------
#
# Any subset of the generated invariants is itself sound (each row holds in
# every reachable configuration independently of the others), so a session
# may conjoin rows *selectively*: a deadlock-free verdict under a subset is
# deadlock-free under the full set, and a SAT model that satisfies every
# not-yet-conjoined row satisfies the fully strengthened system too.  Those
# two facts make rank-limited strengthening verdict-identical to eager mode
# while typically encoding far fewer rows — the flow-specification
# observation of Sethi et al. (see PAPERS.md).
#
# The engine below ranks rows statically (most local first), then escalates
# CEGAR-style: only rows *violated* by the current spurious witness are
# candidates, ordered by how much of the witness's occupied channels they
# touch, and the per-step batch size grows geometrically so pathological
# networks still terminate at the full set quickly.

DEFAULT_RANK_BUDGET = 8
DEFAULT_RANK_GROWTH = 2

# A plain-data invariant row: (((var uid, coeff numerator, coeff
# denominator, is channel column), ...), constant numerator, constant
# denominator).  Uids are the generating process's variable uids — the
# same tokens a SolverSnapshot keys restored IntVars by, so rows travel to
# pool workers and are re-built as terms over the restored vocabulary.
PlainRow = tuple[tuple[tuple[int, int, int, bool], ...], int, int]


def invariant_features(invariant: Invariant) -> tuple[int, int, int]:
    """The static ranking features of one invariant row.

    ``(channel support, automaton rank, total support)`` — the number of
    queue-occupancy columns the row touches, the number of distinct
    automata whose state indicators it mentions, and its total support.
    Smaller is ranked earlier: rows relating few channels and few
    automata are the local conservation laws (the paper's equations (3)
    and (4) are the archetype) that rule out most spurious candidates,
    and they cost the least to encode.
    """
    channels = 0
    automata = set()
    for var, _ in invariant.coeffs:
        if var.name.startswith("#"):
            channels += 1
        else:
            automata.add(var.name.split(".", 1)[0])
    return (channels, len(automata), len(invariant.coeffs))


def rank_invariants(invariants: Sequence[Invariant]) -> list[Invariant]:
    """``invariants`` in static rank order (deterministic).

    Ascending by :func:`invariant_features` with the rendered row as the
    tie-break, so the ranking is identical across processes and runs.
    """
    return sorted(
        invariants, key=lambda inv: (*invariant_features(inv), inv.pretty())
    )


def encode_invariant_rows(invariants: Sequence[Invariant]) -> tuple[PlainRow, ...]:
    """Flatten invariant rows into picklable plain data (rank order kept).

    Each coefficient travels as ``(uid, numerator, denominator, is
    channel)`` so a worker process can both re-build the row as a term
    over its restored variables and evaluate it against a model without
    any term object crossing the boundary.
    """
    rows: list[PlainRow] = []
    for invariant in invariants:
        rows.append(
            (
                tuple(
                    (
                        var.uid,
                        coeff.numerator,
                        coeff.denominator,
                        var.name.startswith("#"),
                    )
                    for var, coeff in invariant.coeffs
                ),
                invariant.constant.numerator,
                invariant.constant.denominator,
            )
        )
    return tuple(rows)


def _row_satisfied(row: PlainRow, value_of: Callable[[int], int]) -> bool:
    entries, const_num, const_den = row
    total = Fraction(const_num, const_den)
    for uid, num, den, _ in entries:
        total += Fraction(num, den) * value_of(uid)
    return total == 0


def _row_overlap(row: PlainRow, value_of: Callable[[int], int]) -> int:
    """How many of the row's *channel* columns the model occupies."""
    entries, _, _ = row
    return sum(
        1 for uid, _, _, is_channel in entries if is_channel and value_of(uid)
    )


class InvariantSelector:
    """CEGAR-style escalation state over a statically ranked row list.

    Operates purely on :data:`PlainRow` data so one implementation drives
    both the parent-side sequential sessions and rehydrated pool workers
    (the rows ship inside a
    :class:`~repro.core.engine.SessionSnapshot`).  The protocol, per
    surviving deadlock candidate:

    1. the caller evaluates :meth:`next_batch` against the candidate's
       model — only rows the model *violates* are candidates (a model
       satisfying every remaining row satisfies the fully strengthened
       encoding, so the candidate is final and byte-identical to eager
       mode without asserting anything);
    2. violated rows are ordered by witness-channel overlap (descending),
       then static rank, and the top ``budget`` are handed back to be
       conjoined;
    3. the budget grows by ``rank_growth`` per escalation, so repeated
       refinement reaches the full set in logarithmically many steps.

    Counters (``generated``, ``escalations``, ``rank_histogram``) record
    the selection ablation; ``rank_histogram`` buckets generated rows by
    ``static rank // rank_budget`` — how deep into the ranking the
    refinement had to reach.
    """

    def __init__(
        self,
        rows: Sequence[PlainRow],
        rank_budget: int | None = None,
        rank_growth: int | None = None,
    ):
        self.rows = tuple(rows)
        self.rank_budget = (
            DEFAULT_RANK_BUDGET if rank_budget is None else int(rank_budget)
        )
        self.rank_growth = (
            DEFAULT_RANK_GROWTH if rank_growth is None else int(rank_growth)
        )
        if self.rank_budget < 1:
            raise ValueError(f"rank_budget must be >= 1, got {rank_budget}")
        if self.rank_growth < 1:
            raise ValueError(f"rank_growth must be >= 1, got {rank_growth}")
        self._budget = self.rank_budget
        self._remaining: list[int] = list(range(len(self.rows)))
        self.generated = 0
        self.escalations = 0
        self.rank_histogram: dict[int, int] = {}

    @property
    def exhausted(self) -> bool:
        """True once every row has been handed out (the full set)."""
        return not self._remaining

    def counters(self) -> dict:
        """Snapshot of the selection ablation counters."""
        return {
            "invariants_generated": self.generated,
            "escalations": self.escalations,
            "rank_histogram": dict(self.rank_histogram),
        }

    @staticmethod
    def counters_delta(after: dict, before: dict) -> dict:
        """Per-probe delta between two :meth:`counters` snapshots."""
        histogram = dict(after["rank_histogram"])
        for tier, count in before["rank_histogram"].items():
            histogram[tier] = histogram.get(tier, 0) - count
        return {
            "invariants_generated": (
                after["invariants_generated"] - before["invariants_generated"]
            ),
            "escalations": after["escalations"] - before["escalations"],
            "rank_histogram": {
                tier: count for tier, count in histogram.items() if count
            },
        }

    def next_batch(self, value_of: Callable[[int], int]) -> list[int]:
        """Static-rank indices of the rows to conjoin next.

        ``value_of`` maps a variable uid to its value in the current
        (SAT) model.  Returns ``[]`` when the model satisfies every
        remaining row — the candidate survives the full set and the
        caller must report it as final.
        """
        violated = [
            index
            for index in self._remaining
            if not _row_satisfied(self.rows[index], value_of)
        ]
        if not violated:
            return []
        violated.sort(
            key=lambda index: (-_row_overlap(self.rows[index], value_of), index)
        )
        batch = violated[: self._budget]
        chosen = set(batch)
        self._remaining = [i for i in self._remaining if i not in chosen]
        self.generated += len(batch)
        self.escalations += 1
        self._budget *= self.rank_growth
        for index in batch:
            tier = index // self.rank_budget
            self.rank_histogram[tier] = self.rank_histogram.get(tier, 0) + 1
        return batch
