"""Parallel verification orchestration over a worker pool.

ADVOCAT's query mix is embarrassingly parallel: the per-channel deadlock
candidates, the per-source idle checks and the Figure-4 queue-size probes
are independent queries over one fixed encoding.
:class:`ParallelVerificationSession` exploits that structure:

* the **build phase** runs once in the parent
  (:class:`~repro.core.engine.SessionSpec`: colors → invariants →
  encoding) and is flattened into a pickle-safe
  :class:`~repro.core.engine.SessionSnapshot`;
* each pool worker rehydrates the snapshot into its own incremental
  solver (:class:`WorkerSession`) — no color derivation, invariant
  generation or re-encoding in the workers;
* queries travel as plain data — guard-variable *names* plus a
  ``(queue, size)`` pin list — and results travel back as verdict +
  unsat-core names or a model-value slice, from which the parent rebuilds
  :class:`~repro.core.result.VerificationResult`\\ s (witnesses included)
  in its own term space;
* merged result lists are deterministic: :meth:`verify_all_cases` returns
  results in encoding order regardless of worker completion order
  (first-witness-stable), and sharded probes preserve submission order;
* workers rehydrate **warm** by default: the pool snapshot is taken from
  a primed local session, so the parent's learned clauses (LBD-sorted,
  capped) and saved phases travel with the CNF image and each worker's
  first query skips the re-learning cost (``bench_warmstart.py``);
* on one CPU — or with one worker — the pool is skipped entirely and a
  single in-process :class:`WorkerSession` answers the same job stream,
  so the parallel API never loses to the sequential session on machines
  that cannot parallelise.

Backends: ``"process"`` (default) runs workers in separate processes —
real parallelism for the pure-Python solver — each rehydrating the
snapshot independently; ``"thread"`` rehydrates one template
:class:`WorkerSession` in-process and hands every pool thread a
:meth:`Solver.fork` clone of it.  The GIL serialises thread workers, but
the backend exercises the same snapshot + query protocol cheaply (used
heavily by the differential tests).

Witness enumeration stays sequential (each blocking clause depends on the
previous model), so :meth:`enumerate_witnesses` delegates to a local
:class:`~repro.core.engine.VerificationSession` sharing the same spec.
"""

from __future__ import annotations

import os
import sys
import threading
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from fractions import Fraction
from multiprocessing import get_all_start_methods, get_context
from time import perf_counter
from typing import Hashable, Iterator, Mapping, Sequence

from ..smt import Model, Result, boolvar, eq, implies
from ..smt.serialize import restore_solver
from ..xmas import Network, Queue, Source
from .deadlock import DeadlockCase
from .engine import (
    ANY_CASE_LABEL,
    SessionSnapshot,
    SessionSpec,
    VerificationSession,
    resolve_resize,
)
from .invariants import InvariantSelector
from .proof import extract_witness
from .resilience import Deadline, RetryPolicy, maybe_inject
from .result import DeadlockWitness, Invariant, Verdict, VerificationResult

__all__ = [
    "ParallelVerificationSession",
    "WorkerSession",
    "default_jobs",
    "nested_jobs",
    "scenario_executor",
    "discard_scenario_executor",
    "shutdown_scenario_executors",
]

Color = Hashable

# A query target is resolved against the snapshot's guard tables inside
# the worker: None = the master "any case" guard, an int = that index
# into the encoding's deadlock cases.  A query job is
# ("check", target, ((queue, size), ...) | None, want witness); a shard
# job bundles ordered probes for one worker:
# ("shard", ((target, sizes), ...), want witness).
Job = tuple
Target = int | None
SizesKey = tuple[tuple[str, int], ...]


def default_jobs() -> int:
    """Worker count when the caller does not choose one.

    The ``ADVOCAT_JOBS`` environment variable overrides the CPU count —
    CI containers advertise more cores than they schedule, and the
    experiment scheduler caps its nested query pools through the same
    knob.  Precedence: an explicit ``jobs=`` argument anywhere in the API
    beats the environment, which beats ``os.cpu_count()``.
    """
    env = os.environ.get("ADVOCAT_JOBS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"ADVOCAT_JOBS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"ADVOCAT_JOBS must be a positive integer, got {env!r}"
            )
        return value
    return max(1, os.cpu_count() or 1)


def nested_jobs(outer_jobs: int, budget: int | None = None) -> int:
    """Per-task inner worker budget when ``outer_jobs`` tasks run at once.

    The experiment scheduler runs N scenario builds concurrently, each of
    which may itself shard queries over M workers; handing every scenario
    the full :func:`default_jobs` would oversubscribe the machine N-fold.
    This splits the budget evenly (never below 1), so
    ``outer × nested_jobs(outer) ≤ budget`` whenever ``budget ≥ outer``.
    """
    if outer_jobs < 1:
        raise ValueError(f"outer_jobs must be >= 1, got {outer_jobs}")
    if budget is None:
        budget = default_jobs()
    return max(1, budget // max(1, outer_jobs))


def _process_context():
    """The start-method context pool executors are built with.

    fork inherits the parent cheaply, but only Linux runs it safely
    (CPython documents fork as crash-prone on macOS); everywhere else
    the platform-default spawn works identically because every job and
    initializer argument in this module is pickle-safe.
    """
    method = (
        "fork"
        if sys.platform.startswith("linux")
        and "fork" in get_all_start_methods()
        else "spawn"
    )
    return get_context(method)


# Coarse-grained scenario jobs (whole SessionSpec builds, see
# repro.core.experiments) reuse one module-level executor per
# (backend, jobs) shape instead of paying pool startup per experiment —
# resumed runs and multi-experiment scripts hit the same warm pool.
_SCENARIO_EXECUTORS: dict[tuple[str, int], tuple[object, int]] = {}


def scenario_executor(jobs: int, backend: str = "process", epoch: int = 0):
    """A reusable executor for scenario-level (whole-build) jobs.

    Unlike the per-session query pools (which rehydrate workers from one
    session snapshot and must restart when the encoding changes), scenario
    workers are stateless — each job carries its own
    :class:`~repro.core.experiments.ScenarioSpec` — so one executor can
    serve any number of experiments.  ``epoch`` invalidates the cache:
    a cached executor created under an older epoch is shut down and
    rebuilt (the experiment layer passes its builder-registry generation,
    so fork-started workers never answer from a pre-registration
    snapshot of the registry).  Call :func:`shutdown_scenario_executors`
    to release them explicitly.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend not in ("process", "thread"):
        raise ValueError(f"unknown backend {backend!r}")
    key = (backend, jobs)
    cached = _SCENARIO_EXECUTORS.get(key)
    if cached is not None:
        executor, cached_epoch = cached
        if cached_epoch == epoch:
            return executor
        executor.shutdown(wait=True, cancel_futures=True)
        del _SCENARIO_EXECUTORS[key]
    if backend == "process":
        executor = ProcessPoolExecutor(
            max_workers=jobs, mp_context=_process_context()
        )
    else:
        executor = ThreadPoolExecutor(max_workers=jobs)
    _SCENARIO_EXECUTORS[key] = (executor, epoch)
    return executor


def discard_scenario_executor(
    jobs: int, backend: str = "process", wait: bool = True
) -> None:
    """Evict one cached scenario executor (e.g. after a worker died).

    A :class:`~concurrent.futures.BrokenExecutor` poisons the pool
    permanently; callers that observe one must discard the cached entry
    or every later run with the same shape would fail instantly.
    """
    cached = _SCENARIO_EXECUTORS.pop((backend, jobs), None)
    if cached is not None:
        cached[0].shutdown(wait=wait, cancel_futures=True)


def shutdown_scenario_executors(wait: bool = True) -> None:
    """Release every cached scenario executor."""
    while _SCENARIO_EXECUTORS:
        _, (executor, _) = _SCENARIO_EXECUTORS.popitem()
        executor.shutdown(wait=wait, cancel_futures=True)


class WorkerSession:
    """Worker-side query engine rehydrated from a session snapshot.

    Self-contained: everything it consults — the solver's CNF image, the
    deadlock-case guard tables, the ``cap[q]`` variable keys, the default
    sizes and the witness recipe — comes from the snapshot, so a bare
    snapshot (pickled to another process or machine) is a complete query
    session.  Queries name a *target* (``None`` for the master guard, an
    index for one deadlock case); capacity pins are minted lazily per
    ``(queue, size)`` exactly like the sequential session does, so a
    worker probing a shard of ascending sizes warm-starts each probe with
    everything learned on the previous ones.
    """

    def __init__(
        self,
        snapshot: SessionSnapshot,
        reduction_overrides: dict | None = None,
    ):
        self.snapshot = snapshot
        self.solver, ints = restore_solver(
            snapshot.solver, reduction_overrides=reduction_overrides
        )
        self._ints = ints
        self._capacities = {
            name: ints[uid] for name, uid in snapshot.capacity_uids
        }
        self._size_guard_names: dict[tuple[str, int], str] = {}
        self._witness_vars = [
            (uid, ints[uid]) for uid in snapshot.witness_int_uids
        ]
        # Partial-invariant escalation state, built lazily from the
        # snapshot's pending rows on the first escalating job.
        self._selector: InvariantSelector | None = None

    def fork(self) -> "WorkerSession":
        """An independent clone over the same solver state (in-process).

        Thread pools rehydrate the snapshot once and fork the template
        per worker thread — :meth:`Solver.fork` copies the CNF tables and
        shares the immutable restored terms, so no re-minting happens.
        """
        clone = object.__new__(WorkerSession)
        clone.snapshot = self.snapshot
        clone.solver = self.solver.fork()
        clone._ints = self._ints  # immutable vocabulary
        clone._capacities = self._capacities
        clone._witness_vars = self._witness_vars
        # Guard definitions already minted live in the forked clauses.
        clone._size_guard_names = dict(self._size_guard_names)
        # Escalation state is per-clone: the template never runs jobs, so
        # clones start with every pending row still selectable.
        clone._selector = None
        return clone

    # ------------------------------------------------------------------
    def _guard_name(self, target: Target) -> str:
        if target is None:
            return self.snapshot.any_guard_name
        return self.snapshot.case_guard_names[target]

    def _capacity_assumption_names(self, sizes: SizesKey) -> list[str]:
        names = []
        for queue_name, size in sizes:
            key = (queue_name, size)
            name = self._size_guard_names.get(key)
            if name is None:
                name = f"cap[{queue_name}=={size}]"
                guard = boolvar(name)
                self.solver.add_global(
                    implies(guard, eq(self._capacities[queue_name], size))
                )
                self._size_guard_names[key] = name
            names.append(name)
        return names

    def check(
        self,
        target: Target,
        sizes: SizesKey | None = None,
        want_witness: bool = True,
        conflict_limit: int | None = None,
        should_stop=None,
    ) -> tuple:
        """Answer one guard-literal query; returns a plain-data payload.

        ``sizes=None`` falls back to the snapshot's default sizes when
        the encoding is parametric (a bare-snapshot consumer probing the
        as-built configuration); an explicit pin list overrides.

        ``conflict_limit``/``should_stop`` bound the call cooperatively
        (see :meth:`Solver.check`); an expired slice yields the payload
        ``("unknown", None, None, stats, elapsed)`` with all learning
        retained, so the caller can import peer clauses and re-ask.
        """
        start = perf_counter()
        names = [self._guard_name(target)]
        if sizes is None and self.snapshot.parametric:
            sizes = self.snapshot.default_sizes
        if sizes is not None:
            names.extend(self._capacity_assumption_names(sizes))
        outcome = self.solver.check(
            assumptions=[boolvar(name) for name in names],
            conflict_limit=conflict_limit,
            should_stop=should_stop,
        )
        elapsed = perf_counter() - start
        stats = dict(self.solver.stats)
        # Ride the existing stats slot so the payload tuple shape stays
        # frozen; the parent pops this back out in _merge.
        stats["profile"] = dict(self.solver.profile)
        if outcome == Result.UNKNOWN:
            return ("unknown", None, None, stats, elapsed)
        if outcome == Result.UNSAT:
            core = tuple(
                getattr(term, "name", repr(term))
                for term in self.solver.unsat_core()
            )
            return ("unsat", core, self.solver.formula_unsat, stats, elapsed)
        if not want_witness:
            return ("sat", None, None, stats, elapsed)
        model = self.solver.model()
        ints = {uid: int(model[var]) for uid, var in self._witness_vars}
        bools = {
            name: bool(model[name])
            for name in self.snapshot.witness_bool_names
        }
        return ("sat", ints, bools, stats, elapsed)

    # ------------------------------------------------------------------
    # Partial-invariant escalation (see repro.core.invariants)
    # ------------------------------------------------------------------
    def _ensure_selector(
        self, rank_budget: int | None, rank_growth: int | None
    ) -> InvariantSelector:
        if self._selector is None:
            self._selector = InvariantSelector(
                self.snapshot.pending_invariant_rows,
                rank_budget=rank_budget,
                rank_growth=rank_growth,
            )
        return self._selector

    def _row_term(self, row):
        """Re-build one plain-data invariant row over the restored vars."""
        entries, const_num, const_den = row
        expr = None
        for uid, num, den, _ in entries:
            piece = Fraction(num, den) * self._ints[uid]
            expr = piece if expr is None else expr + piece
        return eq(expr, -Fraction(const_num, const_den))

    def _model_value_of(self):
        model = self.solver.model()
        ints = self._ints

        def value_of(uid: int) -> int:
            return int(model[ints[uid]])

        return value_of

    def check_escalating(
        self,
        target: Target,
        sizes: SizesKey | None,
        want_witness: bool,
        selector: InvariantSelector,
        conflict_limit: int | None = None,
        should_stop=None,
    ) -> tuple:
        """One probe under partial invariants (worker-local CEGAR loop).

        Mirrors :func:`repro.core.engine.escalate_partial`: while the
        candidate survives, conjoin the next violated batch and re-ask;
        stop when the verdict frees, the model satisfies every remaining
        row, or the full set is in force.  The strengthening is permanent,
        so later probes on this worker continue from it.  Returns the
        probe payload extended with this probe's selection delta.

        Slice bounds apply per inner :meth:`check`; an ``"unknown"``
        payload exits the loop (conjoined rows persist), so the next call
        resumes the escalation where this slice stopped.
        """
        before = selector.counters()
        payload = self.check(
            target, sizes, want_witness, conflict_limit, should_stop
        )
        while payload[0] == "sat" and not selector.exhausted:
            batch = selector.next_batch(self._model_value_of())
            if not batch:
                break  # candidate survives the full set: final
            for index in batch:
                self.solver.add_global(self._row_term(selector.rows[index]))
            payload = self.check(
                target, sizes, want_witness, conflict_limit, should_stop
            )
        delta = InvariantSelector.counters_delta(selector.counters(), before)
        return (*payload, delta)

    def _seed_phases_from_sat(self, payload: tuple) -> None:
        # Phase-seed the next probe from this witness's block booleans:
        # shards walk sizes in ascending order, so the previous blocking
        # shape is a strong prior for the next capacity step.  Without a
        # witness payload the model is still live — read the bools
        # directly.
        bools = payload[2]
        if bools is None:
            model = self.solver.model()
            bools = {
                name: bool(model[name])
                for name in self.snapshot.witness_bool_names
            }
        if bools:
            self.solver.phase_hints(bools)

    def _bounded_check(
        self, deadline, target, sizes, want_witness, selector=None
    ) -> tuple:
        """One probe under a worker-local :class:`Deadline` (or none).

        An expired budget short-circuits to the ``"unknown"`` payload
        without entering the solver; otherwise the remaining budget
        becomes this check's ``conflict_limit``/``should_stop`` and the
        conflicts actually spent are charged back, so a shard's probes
        share one budget.
        """
        if deadline is not None and deadline.expired():
            return ("unknown", None, None, {"timed_out": True}, 0.0)
        limit = deadline.remaining_conflicts() if deadline else None
        stop = deadline.should_stop if deadline else None
        if selector is not None:
            payload = self.check_escalating(
                target, sizes, want_witness, selector, limit, stop
            )
        else:
            payload = self.check(target, sizes, want_witness, limit, stop)
        if deadline is not None:
            deadline.charge(payload[3].get("conflicts", 0))
        return payload

    def run(self, job: Job):
        # Every job kind accepts one optional trailing element: a
        # Deadline wire tuple (remaining seconds, remaining conflicts),
        # rebuilt here so the worker enforces the budget on its own
        # clock.  Jobs without it keep the frozen pre-deadline shape.
        kind = job[0]
        if kind == "check":
            _, target, sizes, want_witness, *rest = job
            deadline = Deadline.from_wire(rest[0]) if rest else None
            return self._bounded_check(deadline, target, sizes, want_witness)
        if kind == "shard":
            _, probes, want_witness, *rest = job
            deadline = Deadline.from_wire(rest[0]) if rest else None
            payloads = []
            for target, sizes in probes:
                payload = self._bounded_check(
                    deadline, target, sizes, want_witness
                )
                payloads.append(payload)
                if payload[0] == "sat":
                    self._seed_phases_from_sat(payload)
            return payloads
        if kind == "eshard":
            # An escalating shard: same ordered walk as "shard", but every
            # surviving candidate first runs the worker-local escalation
            # loop over the snapshot's pending invariant rows.
            _, probes, want_witness, rank_budget, rank_growth, *rest = job
            deadline = Deadline.from_wire(rest[0]) if rest else None
            selector = self._ensure_selector(rank_budget, rank_growth)
            payloads = []
            for target, sizes in probes:
                payload = self._bounded_check(
                    deadline, target, sizes, want_witness, selector
                )
                payloads.append(payload)
                if payload[0] == "sat":
                    self._seed_phases_from_sat(payload)
            return payloads
        raise ValueError(f"unknown worker job kind {kind!r}")


# ---------------------------------------------------------------------------
# Pool plumbing.  One WorkerSession per pool worker, stored thread-locally:
# a process worker executes initializer and tasks on its single main
# thread and rehydrates the pickled snapshot itself; thread workers each
# fork() an in-process template rehydrated once by the parent.
# ---------------------------------------------------------------------------

_WORKER = threading.local()


def _initialize_worker(snapshot: SessionSnapshot) -> None:
    _WORKER.session = WorkerSession(snapshot)


def _initialize_thread_worker(template: WorkerSession) -> None:
    _WORKER.session = template.fork()


def _run_job(job: Job):
    # Fault-injection point: a worker-side kill/raise lands here, before
    # the solver runs, so an injected crash never leaves a half-merged
    # payload (see repro.core.resilience).
    maybe_inject("query-worker")
    return _WORKER.session.run(job)


class ParallelVerificationSession:
    """Fan guard-literal queries of one network out over a worker pool.

    Exposes the :class:`~repro.core.engine.VerificationSession` query API
    (``verify``, ``verify_case``, ``verify_channel``, ``verify_source``,
    ``verify_all_cases``, ``enumerate_witnesses``, ``resize_queues``,
    ``add_invariants``) with identical verdicts; per-channel fan-outs and
    size sweeps run concurrently.

    Parameters
    ----------
    network:
        The network to verify; ignored when ``spec`` is given.
    jobs:
        Worker count (default: ``os.cpu_count()``).  When the effective
        count is 1 — explicitly, or because the machine has a single CPU —
        queries run on an in-process :class:`WorkerSession` instead of a
        pool, so the parallel session never regresses below the
        sequential one on small machines.  ``verify_all_cases(jobs=N)``
        can re-target a different count per call.
    backend:
        ``"process"`` (true parallelism) or ``"thread"`` (GIL-bound, for
        tests and debugging).
    warm_start:
        Ship the parent's learned clauses and saved phases to workers:
        the pool snapshot is taken from a *primed* local session (one
        master-guard query) instead of a cold solver, so each worker's
        first query skips the re-learning cost.  Verdicts are identical
        either way (``benchmarks/bench_warmstart.py`` measures the win).
    learned_cap:
        Cap on the LBD-sorted learned-clause tail a warm snapshot ships.
    force_pool:
        Build a real executor even where the fallback would run inline
        (tests and benchmarks of the pool machinery itself).
    reduction_opts:
        Lifecycle knobs (``reduce_base`` etc.) for the local session and,
        via the snapshot, every worker — shard-locality tuning.
    partial_invariants:
        Ship the spec's *ranked, not-yet-conjoined* invariant rows with
        the pool snapshot so workers can escalate through them locally
        (``invariants="partial"`` sweeps; see
        :meth:`probe_shards`'s ``escalation``).  Triggers ranked
        generation at pool-snapshot time.
    rotating_precision, max_splits, parametric_queues, spec:
        As for :class:`~repro.core.engine.VerificationSession`.

    The pool is started lazily on the first query (building the session
    snapshot once), restarted when :meth:`add_invariants` strengthens the
    encoding, and released by :meth:`close` / the context manager.
    """

    def __init__(
        self,
        network: Network | None = None,
        jobs: int | None = None,
        backend: str = "process",
        rotating_precision: bool = True,
        max_splits: int = 100_000,
        parametric_queues: bool = True,
        warm_start: bool = True,
        learned_cap: int = 4000,
        force_pool: bool = False,
        reduction_opts: Mapping | None = None,
        partial_invariants: bool = False,
        spec: SessionSpec | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        if backend not in ("process", "thread"):
            raise ValueError(f"unknown backend {backend!r}")
        if spec is None:
            if network is None:
                raise TypeError(
                    "ParallelVerificationSession needs a network or a spec"
                )
            spec = SessionSpec(
                network,
                rotating_precision=rotating_precision,
                parametric_queues=parametric_queues,
            )
        self.spec = spec
        self.network = spec.network
        self.colors = spec.colors
        self.pool = spec.pool
        self.encoding = spec.encoding
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.backend = backend
        self.warm_start = warm_start
        self._learned_cap = learned_cap
        self._force_pool = force_pool
        self._partial_invariants = partial_invariants
        self._reduction_opts = dict(reduction_opts or {}) or None
        self._max_splits = max_splits
        self.retry_policy = retry_policy or RetryPolicy()
        # Recovery accounting: pool rebuilds after a BrokenExecutor, and
        # whether the session fell back to the inline worker for good.
        self.recoveries = 0
        self.degraded = False
        self._parametric = spec.parametric
        self._sizes: dict[str, int] = dict(spec.initial_sizes)
        self._executor = None
        self._pool_size = 0
        self._pool_has_invariants = False
        self._inline: WorkerSession | None = None
        self._inline_has_invariants = False
        self._local: VerificationSession | None = None
        self._var_by_uid = {
            var.uid: var for _, var in spec.pool.state_items()
        }
        self._var_by_uid.update(
            (var.uid, var) for _, var in spec.pool.occupancy_items()
        )
        self._label_by_guard_name = {
            case.guard.name: case.label for case in self.encoding.cases
        }
        self._label_by_guard_name[self.encoding.any_guard.name] = ANY_CASE_LABEL
        self._index_by_guard_name = {
            case.guard.name: index
            for index, case in enumerate(self.encoding.cases)
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _shutdown_pool(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
            self._pool_size = 0

    def close(self) -> None:
        """Release pool workers (the spec and local session stay usable)."""
        self._shutdown_pool()

    def __enter__(self) -> "ParallelVerificationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best effort; close() is the real API
        try:
            # wait=False: a finalizer must not block the GC thread on an
            # in-flight solver query (running jobs cannot be cancelled).
            self._shutdown_pool(wait=False)
        except Exception:
            pass

    def _ensure_pool(self, jobs: int | None = None):
        want = jobs if jobs is not None else self.jobs
        if want < 1:
            raise ValueError(f"jobs must be >= 1, got {want}")
        # Re-targeting sticks: later default-jobs queries reuse this pool
        # instead of thrashing a teardown/rebuild per call.
        self.jobs = want
        spec_has_invariants = self.spec.invariants is not None
        if self._executor is not None and (
            self._pool_size != want
            # The spec was strengthened (possibly by *another* session
            # sharing it) after these workers rehydrated: restart so the
            # pool answers from the same encoding a fresh session would.
            or self._pool_has_invariants != spec_has_invariants
        ):
            self._shutdown_pool()
        if self._executor is None:
            snapshot = self._pool_snapshot()
            if self.backend == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=want,
                    mp_context=_process_context(),
                    initializer=_initialize_worker,
                    initargs=(snapshot,),
                )
            else:
                template = WorkerSession(snapshot)
                self._executor = ThreadPoolExecutor(
                    max_workers=want,
                    initializer=_initialize_thread_worker,
                    initargs=(template,),
                )
            self._pool_size = want
            self._pool_has_invariants = spec_has_invariants
        return self._executor

    def _local_session(self) -> VerificationSession:
        if self._local is None:
            self._local = VerificationSession(
                spec=self.spec,
                max_splits=self._max_splits,
                reduction_opts=self._reduction_opts,
            )
        if self.spec.invariants is not None:
            self._local.add_invariants()  # no-op once loaded
        if self._parametric:
            self._local.resize_queues(dict(self._sizes))
        return self._local

    def _pool_snapshot(self) -> SessionSnapshot:
        """The session snapshot workers rehydrate from.

        With :attr:`warm_start` the snapshot comes from a *primed* local
        session: one master-guard query forces the solver through the
        case analysis every per-case query repeats, and the learned
        clauses plus saved phases ship with the CNF image.  Priming is
        incremental — rebuilding the pool (say after invariant
        strengthening) re-primes on the already-warm local solver at
        near-zero cost.
        """
        if not self.warm_start:
            return self.spec.snapshot(
                max_splits=self._max_splits,
                reduction_opts=self._reduction_opts,
                include_pending_invariants=self._partial_invariants,
            )
        local = self._local_session()
        local.verify()
        return local.snapshot(
            include_learned=True,
            learned_cap=self._learned_cap,
            include_pending_invariants=self._partial_invariants,
        )

    def _sequential_fallback(self, want: int) -> bool:
        """Run in-process when a pool cannot win (1 worker or 1 CPU).

        Deliberately checks the *physical* CPU count, not
        :func:`default_jobs`: an explicit ``jobs=N`` request must beat an
        ``ADVOCAT_JOBS`` cap (the documented precedence), so the env
        override only shapes defaults, never silently downgrades a
        requested pool to inline execution.
        """
        return not self._force_pool and (
            want == 1 or (os.cpu_count() or 1) == 1
        )

    def _ensure_inline(self) -> WorkerSession:
        spec_has_invariants = self.spec.invariants is not None
        if (
            self._inline is not None
            and self._inline_has_invariants != spec_has_invariants
        ):
            self._inline = None  # stale: spec strengthened since rehydration
        if self._inline is None:
            self._inline = WorkerSession(self._pool_snapshot())
            self._inline_has_invariants = spec_has_invariants
        return self._inline

    # ------------------------------------------------------------------
    # Configuration (mirrors the sequential session)
    # ------------------------------------------------------------------
    def add_invariants(self) -> list[Invariant]:
        """Generate + conjoin invariants (idempotent).

        Running workers rehydrated from the unstrengthened encoding are
        restarted lazily by the next query (:meth:`_ensure_pool` compares
        the pool's snapshot against the spec) — the same healing covers a
        *different* session strengthening the shared spec.
        """
        invariants = self.spec.generate_invariants()
        if self._local is not None:
            self._local.add_invariants()
        return invariants

    @property
    def invariants(self) -> list[Invariant]:
        return self.spec.invariants or []

    def resize_queues(self, sizes: int | Mapping[str, int]) -> None:
        """Re-target later queries; pins travel with each job, so no
        worker restart is needed."""
        self._sizes = resolve_resize(self._sizes, sizes, self._parametric)

    @property
    def queue_sizes(self) -> dict[str, int]:
        return dict(self._sizes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _sizes_key(self, sizes: Mapping[str, int] | None = None) -> SizesKey | None:
        if not self._parametric:
            return None
        mapping = self._sizes if sizes is None else sizes
        return tuple(sorted(mapping.items()))

    def _merge(
        self, payload: tuple, sizes: Mapping[str, int] | None = None
    ) -> VerificationResult:
        """One worker payload → a parent-space VerificationResult."""
        kind, a, b, solver_stats, elapsed = payload[:5]
        solver_stats = dict(solver_stats)
        solver_profile = solver_stats.pop("profile", {})
        invariants = self.spec.invariants or []
        stats = {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(invariants),
            "solver": solver_stats,
            "solver_profile": solver_profile,
            "solve_seconds": elapsed,
        }
        if self._parametric:
            stats["queue_sizes"] = dict(
                self._sizes if sizes is None else sizes
            )
        if len(payload) > 5 and payload[5] is not None:
            # Escalating probes report their worker-local selection delta.
            stats["invariant_selection"] = payload[5]
        if kind == "unknown":
            # The worker's slice of the run budget expired: a first-class
            # TIMEOUT, with whatever stats the cutoff left behind.
            stats["timed_out"] = True
            return VerificationResult(
                Verdict.TIMEOUT,
                invariants=list(invariants),
                stats=stats,
            )
        if kind == "unsat":
            core = [
                self._label_by_guard_name.get(name, name) for name in a
            ]
            stats["formula_unsat"] = b
            return VerificationResult(
                Verdict.DEADLOCK_FREE,
                invariants=list(invariants),
                stats=stats,
                unsat_core=core,
            )
        witness = None
        if a is not None:
            model = Model(
                {self._var_by_uid[uid]: value for uid, value in a.items()},
                dict(b),
            )
            witness = extract_witness(self.network, self.colors, self.pool, model)
        return VerificationResult(
            Verdict.DEADLOCK_CANDIDATE,
            witness=witness,
            invariants=list(invariants),
            stats=stats,
        )

    def _dispatch(self, jobs_list: list[Job], jobs: int | None = None, chunksize: int = 1):
        want = jobs if jobs is not None else self.jobs
        if want < 1:
            raise ValueError(f"jobs must be >= 1, got {want}")
        if self._sequential_fallback(want) or self.degraded:
            # Same snapshot + query protocol, no pool: a single worker
            # answers in-process, so small machines pay neither process
            # startup nor serialization and never regress below the
            # sequential session.  A quarantined (degraded) session stays
            # inline — its workers died max_attempts times already.
            self.jobs = want
            self._shutdown_pool()
            worker = self._ensure_inline()
            return [worker.run(job) for job in jobs_list]
        policy = self.retry_policy
        for attempt in range(policy.max_attempts):
            try:
                maybe_inject("parallel-pool")
                executor = self._ensure_pool(want)
                return list(
                    executor.map(_run_job, jobs_list, chunksize=chunksize)
                )
            except BrokenExecutor:
                # A worker died mid-map and poisoned the pool.  Tear it
                # down and rebuild from the same warm snapshot: replaying
                # the identical job list over the identical snapshot is
                # what keeps recovered verdicts byte-identical.
                self._shutdown_pool(wait=False)
                self.recoveries += 1
                if attempt + 1 < policy.max_attempts:
                    policy.sleep(attempt)
        # Workers died on every attempt (e.g. a job deterministically
        # crashes its process).  Quarantine the pool: degrade to the
        # in-process WorkerSession — same snapshot, same job protocol —
        # so the query still lands instead of aborting the caller.
        self.degraded = True
        worker = self._ensure_inline()
        return [worker.run(job) for job in jobs_list]

    @staticmethod
    def _job_tail(deadline) -> tuple:
        """The optional trailing wire-deadline element of a job tuple.

        Jobs without a deadline keep the frozen pre-deadline shape, so
        payload caches and third-party job producers stay byte-compatible.
        """
        if deadline is None:
            return ()
        return (Deadline.coerce(deadline).to_wire(),)

    def verify(self, deadline=None) -> VerificationResult:
        """The full deadlock check, answered by one pool worker."""
        payload = self._dispatch(
            [("check", None, self._sizes_key(), True, *self._job_tail(deadline))]
        )[0]
        return self._merge(payload)

    def verify_case(self, case: DeadlockCase, deadline=None) -> VerificationResult:
        payload = self._dispatch(
            [
                (
                    "check",
                    self._index_by_guard_name[case.guard.name],
                    self._sizes_key(),
                    True,
                    *self._job_tail(deadline),
                )
            ]
        )[0]
        return self._merge(payload)

    def verify_channel(
        self, queue: Queue | str, color: Color, deadline=None
    ) -> VerificationResult:
        name = queue if isinstance(queue, str) else queue.name
        return self.verify_case(
            self.encoding.case_of("queue", name, color), deadline=deadline
        )

    def verify_source(
        self, source: Source | str, color: Color, deadline=None
    ) -> VerificationResult:
        name = source if isinstance(source, str) else source.name
        return self.verify_case(
            self.encoding.case_of("source", name, color), deadline=deadline
        )

    def verify_all_cases(
        self, jobs: int | None = None, deadline=None
    ) -> list[VerificationResult]:
        """Every deadlock case concurrently; results in encoding order.

        The merge is deterministic (first-witness-stable): result ``i``
        always corresponds to ``encoding.cases[i]`` no matter which worker
        answered first.  A deadline ships its budget *remaining at
        dispatch* to every job: cases run concurrently, so each worker
        enforces the same wall-clock window locally (the conflict budget,
        when given, is per case).
        """
        sizes = self._sizes_key()
        tail = self._job_tail(deadline)
        job_list: list[Job] = [
            ("check", index, sizes, True, *tail)
            for index in range(len(self.encoding.cases))
        ]
        pool_size = jobs if jobs is not None else self.jobs
        chunksize = max(1, len(job_list) // max(1, pool_size * 4))
        payloads = self._dispatch(job_list, jobs=jobs, chunksize=chunksize)
        return [self._merge(payload) for payload in payloads]

    def probe_shards(
        self,
        shards: Sequence[Sequence[Mapping[str, int]]],
        want_witness: bool = True,
        escalation: tuple[int | None, int | None] | None = None,
        deadline=None,
    ) -> list[list[VerificationResult]]:
        """Run the full check under each capacity assignment, sharded.

        ``shards[w]`` is the ordered list of per-queue size assignments
        worker ``w`` probes on its own rehydrated session — ascending
        order within a shard warm-starts each probe with the clauses
        learned on the previous ones.  Returns results aligned with the
        input structure.

        ``escalation=(rank_budget, rank_growth)`` switches the workers to
        partial-invariant probes: every surviving candidate runs the
        worker-local CEGAR loop over the snapshot's pending invariant
        rows before its verdict lands (requires
        ``partial_invariants=True`` at construction, which ships those
        rows with the pool snapshot).  Each result's
        ``stats["invariant_selection"]`` carries the per-probe delta.
        """
        if not self._parametric:
            raise RuntimeError("probe_shards() requires parametric_queues=True")
        if escalation is not None and not self._partial_invariants:
            raise RuntimeError(
                "probe_shards(escalation=...) requires "
                "partial_invariants=True (the pool snapshot must carry "
                "the ranked invariant rows)"
            )
        full_shards = [
            [
                resolve_resize(self._sizes, dict(assignment), True)
                for assignment in shard
            ]
            for shard in shards
        ]
        tail = self._job_tail(deadline)
        if escalation is None:
            job_list: list[Job] = [
                (
                    "shard",
                    tuple(
                        (None, tuple(sorted(full.items()))) for full in shard
                    ),
                    want_witness,
                    *tail,
                )
                for shard in full_shards
            ]
        else:
            rank_budget, rank_growth = escalation
            job_list = [
                (
                    "eshard",
                    tuple(
                        (None, tuple(sorted(full.items()))) for full in shard
                    ),
                    want_witness,
                    rank_budget,
                    rank_growth,
                    *tail,
                )
                for shard in full_shards
            ]
        payload_lists = self._dispatch(job_list)
        return [
            [
                self._merge(payload, sizes=full)
                for full, payload in zip(shard, payloads)
            ]
            for shard, payloads in zip(full_shards, payload_lists)
        ]

    def enumerate_witnesses(self, limit: int = 16) -> Iterator[DeadlockWitness]:
        """Sequential by nature (each blocking clause depends on the last
        model); runs on a local session sharing this spec."""
        return self._local_session().enumerate_witnesses(limit=limit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(self.spec.invariants or []),
            "jobs": self.jobs,
            "backend": self.backend,
            "warm_start": self.warm_start,
            "pool_running": self._executor is not None,
            "inline_worker": self._inline is not None,
            "recoveries": self.recoveries,
            "degraded": self.degraded,
        }
