"""Clause-sharing portfolio racing across invariant strategies.

``BENCH_invariants.json`` shows no invariant mode dominates: eager wins
wall-clock at the deadlock boundary (the full row set prunes search),
while partial wins encoding size and deferred generation on every mesh.
:class:`PortfolioSession` stops picking a mode and *races* them — the
ManySAT recipe applied to ADVOCAT's strategy space:

* N **racers** rehydrate :class:`~repro.core.parallel.WorkerSession`\\ s
  from one shared cold :class:`~repro.core.engine.SessionSnapshot`
  (pending invariant rows included) and each applies one
  :class:`StrategyConfig` — eager / lazy / partial invariants, optionally
  with re-tuned clause-lifecycle knobs or a jittered phase vector;
* every racer runs in bounded **slices**
  (``Cdcl.solve(conflict_limit=..., should_stop=...)`` → UNKNOWN, all
  learning retained), importing peer clauses between slices;
* the **first verdict wins**; losers are cancelled cooperatively and stop
  within one propagate cycle of the ``should_stop`` event firing.

Soundness of the clause exchange
--------------------------------

All racers restore from the *same* base snapshot, so variable numbering
agrees for every variable the snapshot minted (``var ≤ base_n_vars``).
Variables minted after restoration — invariant-row atoms, capacity pins,
branch-and-bound splits — are trajectory-local, so exports are filtered
to clauses over base variables only (and :meth:`Cdcl.import_learned`
independently rejects anything above the importer's numbering).

Every clause a racer learns is a consequence of
``base ∧ conjoined-invariant-rows ∧ LIA-valid lemmas``.  Invariant rows
are sound strengthenings of the network semantics, and the repository's
canonical verdict is *defined* under the full row set (eager mode; lazy
and partial both escalate to it before ever reporting a candidate).
Hence any base-variable clause learned anywhere is a consequence of
``base ∧ full-row-set``, and importing it into any racer preserves final
verdicts: an UNSAT under imports implies UNSAT of ``base ∧ full set``
(deadlock-free, same as eager), and a SAT is only ever final after the
model explicitly survives every remaining row (a genuine candidate under
the full set).  The ``"none"`` invariant mode is deliberately *not* a
portfolio strategy — its verdicts diverge from eager on spurious
candidates, which would break the byte-identity contract.

Backends
--------

``"process"`` races concurrently: each racer is a slice-serving child
process, the parent pipelines one outstanding slice per racer,
redistributes fresh clause exports, and flips per-racer cancel events
the moment a verdict lands.  ``"inline"`` round-robins slices through
in-process racers deterministically — the automatic fallback on one CPU
or ``jobs=1`` (where a pool cannot win), and the reproducible mode tests
rely on.  Racer counts route through :func:`racer_budget` →
``ADVOCAT_JOBS``/:func:`~repro.core.parallel.default_jobs`, so a
portfolio nested under scenario workers never oversubscribes the
machine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from queue import Empty
from typing import Mapping, Sequence

from ..xmas import Network
from .engine import (
    ANY_CASE_LABEL,
    SessionSnapshot,
    SessionSpec,
    resolve_resize,
)
from .parallel import (
    Target,
    WorkerSession,
    _process_context,
    default_jobs,
)
from .proof import extract_witness
from .resilience import (
    Deadline,
    RetryPolicy,
    WorkerCrashError,
    WorkerHangError,
    drain_queue,
    maybe_inject,
    reap_process,
)
from .result import Verdict, VerificationResult
from ..smt import Model

__all__ = [
    "StrategyConfig",
    "PortfolioSession",
    "default_strategies",
    "racer_budget",
]


@dataclass(frozen=True)
class StrategyConfig:
    """One racer's configuration: an invariant mode plus search tuning.

    ``mode`` is ``"eager"`` (conjoin the full pending row set before the
    first slice), ``"lazy"`` (strengthen with the full set only when a
    candidate survives the base encoding), or ``"partial"`` (CEGAR
    escalation through the ranked rows, ``rank_budget``/``rank_growth``
    as in ``invariants="partial"``).  ``reduction_overrides`` re-tunes
    the restored solver's clause-lifecycle knobs and ``phase_seed``
    deterministically jitters the saved phase vector — both diversify
    search trajectories without touching verdicts.
    """

    name: str
    mode: str = "eager"
    rank_budget: int | None = None
    rank_growth: int | None = None
    reduction_overrides: Mapping | None = None
    phase_seed: int | None = None

    def __post_init__(self):
        if self.mode not in ("eager", "lazy", "partial"):
            raise ValueError(
                f"unknown portfolio strategy mode {self.mode!r}; "
                "'none' is excluded by design (its verdicts diverge "
                "from eager on spurious candidates)"
            )


def default_strategies(
    limit: int | None = None, lead: str | None = None
) -> tuple[StrategyConfig, ...]:
    """The stock racer roster, optionally trimmed and re-led.

    Ordered by standalone win expectation (``BENCH_invariants``): eager
    first, then partial, then diversity variants.  ``limit`` trims from
    the tail; ``lead`` moves the named strategy to the front (the
    scheduler's learned per-family leader gets the first inline slice).
    """
    roster = [
        StrategyConfig("eager", "eager"),
        StrategyConfig("partial", "partial"),
        StrategyConfig("lazy", "lazy"),
        StrategyConfig("eager-jitter", "eager", phase_seed=0x9E3779B9),
        StrategyConfig(
            "partial-wide", "partial", rank_budget=32, rank_growth=4
        ),
        StrategyConfig(
            "eager-hoard",
            "eager",
            reduction_overrides={"reduce_base": 2000, "glue_keep": 3},
        ),
    ]
    if lead is not None:
        for index, strategy in enumerate(roster):
            if strategy.name == lead:
                roster.insert(0, roster.pop(index))
                break
    if limit is not None:
        roster = roster[: max(1, limit)]
    return tuple(roster)


def racer_budget(n_strategies: int, jobs: int | None = None) -> int:
    """How many racers a portfolio may run concurrently.

    Routed through the same precedence as every pool in the repo: an
    explicit ``jobs`` beats ``ADVOCAT_JOBS`` beats the CPU count
    (:func:`~repro.core.parallel.default_jobs`).  A portfolio nested
    under N scenario workers therefore respects the machine-wide budget
    whenever the caller hands it its
    :func:`~repro.core.parallel.nested_jobs` share.
    """
    if n_strategies < 1:
        raise ValueError(f"n_strategies must be >= 1, got {n_strategies}")
    want = jobs if jobs is not None else default_jobs()
    if want < 1:
        raise ValueError(f"jobs must be >= 1, got {want}")
    return min(n_strategies, want)


class Racer:
    """One strategy's query engine over the shared base snapshot.

    Wraps a :class:`WorkerSession` with the strategy applied — rows
    conjoined (eager), a selector armed (partial), or deferred
    strengthening (lazy) — plus the clause-exchange bookkeeping: exports
    are filtered to base-numbering clauses and deduplicated both ways so
    a clause never ping-pongs between peers.
    """

    def __init__(self, snapshot: SessionSnapshot, strategy: StrategyConfig):
        self.strategy = strategy
        overrides = (
            dict(strategy.reduction_overrides)
            if strategy.reduction_overrides
            else None
        )
        self.worker = WorkerSession(snapshot, reduction_overrides=overrides)
        self.base_n_vars = snapshot.solver.n_vars
        self._shared: set[frozenset] = set()
        self._strengthened = strategy.mode == "eager"
        self._selector = None
        if strategy.mode == "eager":
            self._conjoin_all_rows()
        elif strategy.mode == "partial":
            self._selector = self.worker._ensure_selector(
                strategy.rank_budget, strategy.rank_growth
            )
        if strategy.phase_seed is not None:
            self._jitter_phases(strategy.phase_seed)

    def _conjoin_all_rows(self) -> None:
        worker = self.worker
        for row in worker.snapshot.pending_invariant_rows:
            worker.solver.add_global(worker._row_term(row))

    def _jitter_phases(self, seed: int) -> None:
        # Deterministic LCG walk flipping ~half the saved phases: same
        # verdicts, different early search neighbourhood.  phase_hints({})
        # flushes the CNF image first so the vector is full-length.
        solver = self.worker.solver
        solver.phase_hints({})
        phases = list(solver.saved_phases())
        state = (seed & 0x7FFFFFFF) or 1
        for index in range(len(phases)):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            if state & 0x10000:
                phases[index] = not phases[index]
        solver.seed_phases(phases)

    # ------------------------------------------------------------------
    def slice(
        self,
        target: Target,
        sizes,
        want_witness: bool,
        conflict_limit: int | None,
        should_stop=None,
    ) -> tuple[bool, tuple]:
        """Run one bounded slice; returns ``(final, payload)``.

        ``final=False`` means the slice expired (payload kind
        ``"unknown"``) or a lazy candidate triggered full strengthening —
        either way the caller should exchange clauses and re-slice.
        """
        strategy = self.strategy
        if strategy.mode == "partial":
            payload = self.worker.check_escalating(
                target,
                sizes,
                want_witness,
                self._selector,
                conflict_limit,
                should_stop,
            )
            return payload[0] != "unknown", payload
        payload = self.worker.check(
            target, sizes, want_witness, conflict_limit, should_stop
        )
        if payload[0] == "sat" and not self._strengthened:
            # Lazy escalation: the candidate survived the base encoding;
            # conjoin the full row set and keep racing — only a candidate
            # that also survives the strengthened encoding is genuine.
            self._conjoin_all_rows()
            self._strengthened = True
            return False, ("unknown", None, None, payload[3], payload[4])
        return payload[0] != "unknown", payload

    # ------------------------------------------------------------------
    def export_clauses(
        self, cap: int, max_lbd: int
    ) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """Fresh glue-capped learned clauses over the *base* numbering.

        Clauses touching variables this racer minted post-restore
        (invariant atoms, capacity pins, splits) are skipped — peer
        numberings diverge there, and the exchange soundness argument
        (module docstring) only covers the shared base image.
        """
        base_n = self.base_n_vars
        fresh = []
        for lbd, lits in self.worker.solver.learned_clauses(max_lbd=max_lbd):
            if any(abs(lit) > base_n for lit in lits):
                continue
            key = frozenset(lits)
            if key in self._shared:
                continue
            self._shared.add(key)
            fresh.append((lbd, tuple(lits)))
            if len(fresh) >= cap:
                break
        return tuple(fresh)

    def import_clauses(self, clauses: Sequence) -> int:
        if not clauses:
            return 0
        for _, lits in clauses:
            self._shared.add(frozenset(lits))
        solver = self.worker.solver
        return solver.import_learned(
            clauses, demote_to=solver._sat.glue_keep + 1
        )

    def summary(self) -> dict:
        """Cumulative per-racer counters for the race report."""
        stats = self.worker.solver._sat.stats
        return {
            "strategy": self.strategy.name,
            "mode": self.strategy.mode,
            "conflicts": stats["conflicts"],
            "learned": stats["learned"],
            "conflict_limit_hits": stats["conflict_limit_hits"],
            "cancelled": stats["cancelled"],
            "imported_rounds": stats["imported_rounds"],
        }


def _racer_main(
    snapshot,
    strategy,
    index,
    inbox,
    outbox,
    cancel_event,
    exchange_cap,
    exchange_lbd,
):
    """Child-process slice server (process backend).

    Serves ``("slice", seq, target, sizes, want_witness, limit, imports)``
    commands until ``("quit",)``.  The cancel event doubles as the
    in-slice ``should_stop`` poll, so a loser dies mid-slice within one
    propagate cycle of the parent flipping it.
    """
    try:
        racer = Racer(snapshot, strategy)
        while True:
            command = inbox.get()
            if command[0] == "quit":
                break
            # Fault-injection point: a kill exits this child hard, a
            # drop swallows the slice (the parent observes a hang), a
            # raise ships an error reply via the except below.
            if maybe_inject("racer-slice") == "drop":
                continue
            _, seq, target, sizes, want_witness, limit, imports = command
            racer.import_clauses(imports)
            final, payload = racer.slice(
                target,
                sizes,
                want_witness,
                limit,
                should_stop=cancel_event.is_set,
            )
            exports = ()
            if not final and not cancel_event.is_set():
                exports = racer.export_clauses(exchange_cap, exchange_lbd)
            outbox.put(
                (index, seq, "final" if final else "partial", payload,
                 exports, racer.summary())
            )
    except Exception as exc:  # pragma: no cover - ship instead of hanging
        outbox.put((index, -1, "error", repr(exc), (), {}))


class PortfolioSession:
    """Race strategy configurations on one snapshot; first verdict wins.

    The query API mirrors the other sessions — :meth:`verify`,
    :meth:`race` (optionally per-target / per-sizes),
    :meth:`resize_queues`, :meth:`close` — with verdicts identical to a
    sequential eager session.  Per-strategy win tallies accumulate in
    :attr:`strategy_wins` for the experiment scheduler.

    Parameters
    ----------
    network / spec:
        What to verify; the spec must *not* have invariants conjoined
        (the session ships the ranked rows as pending data so every
        racer shares one base numbering).
    strategies:
        Racer roster (default :func:`default_strategies`).  The roster is
        trimmed to :func:`racer_budget` (``jobs``/``ADVOCAT_JOBS``/CPU
        count) unless ``force_race`` keeps it whole.
    jobs:
        Concurrent-racer cap; also selects the backend default.
    backend:
        ``"process"``, ``"inline"``, or ``None`` for automatic —
        process when more than one racer can actually run in parallel,
        inline otherwise.
    slice_conflicts / slice_growth:
        Conflict budget of the first slice and its per-round geometric
        growth (growth > 1 guarantees termination even under clause
        eviction: eventually one slice covers the whole search).
    share_clauses / exchange_cap / exchange_lbd:
        Toggle and shape of the glue-capped clause exchange.
    lead:
        Strategy name to race first (the scheduler's learned leader).
    """

    def __init__(
        self,
        network: Network | None = None,
        spec: SessionSpec | None = None,
        strategies: Sequence[StrategyConfig] | None = None,
        jobs: int | None = None,
        backend: str | None = None,
        slice_conflicts: int = 3000,
        slice_growth: float = 1.5,
        share_clauses: bool = True,
        exchange_cap: int = 256,
        exchange_lbd: int = 4,
        max_splits: int = 100_000,
        force_race: bool = False,
        lead: str | None = None,
        retry_policy: RetryPolicy | None = None,
        reply_timeout: float = 300.0,
        shutdown_timeout: float = 10.0,
    ):
        if backend not in (None, "process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        if spec is None:
            if network is None:
                raise TypeError("PortfolioSession needs a network or a spec")
            spec = SessionSpec(network)
        if spec.invariants is not None:
            raise ValueError(
                "PortfolioSession requires a spec without conjoined "
                "invariants: racers strengthen the shared base image "
                "per-strategy from the pending row data"
            )
        if slice_conflicts < 1:
            raise ValueError(
                f"slice_conflicts must be >= 1, got {slice_conflicts}"
            )
        if slice_growth < 1.0:
            raise ValueError(f"slice_growth must be >= 1, got {slice_growth}")
        if reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be > 0, got {reply_timeout}")
        self.spec = spec
        self.network = spec.network
        self.colors = spec.colors
        self.pool = spec.pool
        self.encoding = spec.encoding
        roster = tuple(
            strategies if strategies is not None else default_strategies()
        )
        if not roster:
            raise ValueError("strategies must be non-empty")
        names = [strategy.name for strategy in roster]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate strategy names: {names}")
        if lead is not None:
            for index, strategy in enumerate(roster):
                if strategy.name == lead:
                    roster = (strategy, *roster[:index], *roster[index + 1:])
                    break
        budget = racer_budget(len(roster), jobs)
        if not force_race:
            roster = roster[:budget]
        self.strategies = roster
        self._concurrency = budget
        if backend is None:
            # A process pool can only win when >1 racer actually runs at
            # once on >1 CPU; otherwise the deterministic inline
            # round-robin is strictly cheaper.
            backend = (
                "process"
                if min(budget, len(roster)) > 1 and (os.cpu_count() or 1) > 1
                else "inline"
            )
        self.backend = backend
        self.slice_conflicts = slice_conflicts
        self.slice_growth = slice_growth
        self.share_clauses = share_clauses
        self.exchange_cap = exchange_cap
        self.exchange_lbd = exchange_lbd
        self._max_splits = max_splits
        self._snapshot: SessionSnapshot | None = None
        self._parametric = spec.parametric
        self._sizes: dict[str, int] = dict(spec.initial_sizes)
        self._inline_racers: list[Racer] | None = None
        self._procs: list | None = None
        self._inboxes = None
        self._outbox = None
        self._events = None
        self._seqs: list[int] | None = None
        self.retry_policy = retry_policy or RetryPolicy()
        self.reply_timeout = reply_timeout
        self.shutdown_timeout = shutdown_timeout
        # Recovery accounting: racer-fleet rebuilds after a crash/hang,
        # and whether the session was quarantined to the inline backend.
        self.recoveries = 0
        self.degraded = False
        # Cumulative per-racer conflict counters at the last reply —
        # the baseline that turns warm children's cumulative summaries
        # into per-race deltas for conflict-budget accounting.
        self._cum_conflicts: dict[int, int] = {}
        self.strategy_wins: dict[str, int] = {
            strategy.name: 0 for strategy in roster
        }
        self.races = 0
        self._var_by_uid = {
            var.uid: var for _, var in spec.pool.state_items()
        }
        self._var_by_uid.update(
            (var.uid, var) for _, var in spec.pool.occupancy_items()
        )
        self._label_by_guard_name = {
            case.guard.name: case.label for case in self.encoding.cases
        }
        self._label_by_guard_name[self.encoding.any_guard.name] = (
            ANY_CASE_LABEL
        )
        self._index_by_guard_name = {
            case.guard.name: index
            for index, case in enumerate(self.encoding.cases)
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _base_snapshot(self) -> SessionSnapshot:
        if self._snapshot is None:
            # Cold and unstrengthened on purpose: every racer must share
            # the base variable numbering (clause-exchange soundness), and
            # strategies diverge only in what they add on top.
            self._snapshot = self.spec.snapshot(
                max_splits=self._max_splits,
                include_pending_invariants=True,
            )
        return self._snapshot

    def _teardown_procs(self, graceful: bool = True) -> None:
        """Stop and forget the child racers, however unhealthy.

        Cancel events fire first (a child mid-slice aborts within one
        propagate cycle instead of running its slice out), then the quit
        commands, then join → ``terminate()`` → ``kill()`` escalation
        (:func:`~repro.core.resilience.reap_process`) so a wedged child
        can never leave a zombie behind.  Queues are drained afterwards —
        dropping one with buffered items can hang interpreter shutdown on
        its feeder thread.
        """
        if self._procs is None:
            return
        for event in self._events or ():
            try:
                event.set()
            except Exception:
                pass
        if graceful:
            for inbox in self._inboxes:
                try:
                    inbox.put(("quit",))
                except Exception:
                    pass
        for proc in self._procs:
            reap_process(proc, timeout=self.shutdown_timeout)
        for inbox in self._inboxes or ():
            drain_queue(inbox)
        if self._outbox is not None:
            drain_queue(self._outbox)
        self._procs = None
        self._inboxes = None
        self._outbox = None
        self._events = None
        self._seqs = None
        self._cum_conflicts = {}

    def close(self) -> None:
        """Stop child racers (the spec and tallies stay usable)."""
        self._teardown_procs(graceful=True)
        self._inline_racers = None

    def __enter__(self) -> "PortfolioSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def resize_queues(self, sizes) -> None:
        """Re-target later races; pins travel per race, racers stay warm."""
        self._sizes = resolve_resize(self._sizes, sizes, self._parametric)

    @property
    def queue_sizes(self) -> dict[str, int]:
        return dict(self._sizes)

    def _sizes_key(self, sizes: Mapping[str, int] | None = None):
        if not self._parametric:
            return None
        mapping = self._sizes if sizes is None else sizes
        return tuple(sorted(mapping.items()))

    # ------------------------------------------------------------------
    # Racing
    # ------------------------------------------------------------------
    def verify(self, deadline=None) -> VerificationResult:
        """The full deadlock check, answered by the winning racer."""
        return self.race(deadline=deadline)

    def race(
        self,
        target: Target = None,
        sizes: Mapping[str, int] | None = None,
        want_witness: bool = True,
        deadline=None,
    ) -> VerificationResult:
        """Race the roster on one query; first final verdict wins.

        The merged result carries ``stats["portfolio"]`` — winner,
        rounds, and per-racer cumulative counters — alongside the usual
        verdict/witness/core fields.  An expired ``deadline`` ends the
        race with a ``TIMEOUT`` result (``winner`` is then ``None`` and
        no strategy is credited); a crashed or hung racer fleet is torn
        down and re-raced under :attr:`retry_policy`, degrading to the
        inline backend once the attempts are exhausted.
        """
        deadline = Deadline.coerce(deadline)
        full = (
            resolve_resize(self._sizes, dict(sizes), True)
            if (sizes is not None and self._parametric)
            else None
        )
        sizes_key = (
            tuple(sorted(full.items()))
            if full is not None
            else self._sizes_key()
        )
        winner, payload, rounds, summaries = self._race_with_recovery(
            target, sizes_key, want_witness, deadline
        )
        self.races += 1
        if winner is not None:
            self.strategy_wins[winner] += 1
        return self._merge(
            payload,
            sizes=full if full is not None else None,
            portfolio={
                "winner": winner,
                "rounds": rounds,
                "backend": self.backend,
                "share_clauses": self.share_clauses,
                "racers": summaries,
                "recoveries": self.recoveries,
                "degraded": self.degraded,
            },
        )

    def _race_with_recovery(self, target, sizes_key, want_witness, deadline):
        """Run one race, recovering from racer crashes and hangs.

        A :exc:`WorkerCrashError` (dead child, error reply) or
        :exc:`WorkerHangError` (no reply within :attr:`reply_timeout`)
        tears the fleet down and re-races from the same base snapshot —
        verdict identity is unaffected because *any* race over the
        snapshot yields the canonical verdict.  After
        ``retry_policy.max_attempts`` failed fleets the session is
        quarantined: it degrades to the deterministic inline backend
        (same snapshot, no children) for this and every later race.
        """
        if deadline is not None and deadline.expired():
            # Budget already gone: answer TIMEOUT without starting (or
            # touching) any racer fleet.
            summaries = [
                {"strategy": strategy.name} for strategy in self.strategies
            ]
            return None, self._timeout_payload(), 0, summaries
        if self.backend != "process":
            return self._race_inline(target, sizes_key, want_witness, deadline)
        policy = self.retry_policy
        for attempt in range(policy.max_attempts):
            try:
                return self._race_process(
                    target, sizes_key, want_witness, deadline
                )
            except (WorkerCrashError, WorkerHangError):
                self._teardown_procs(graceful=False)
                self.recoveries += 1
                if attempt + 1 < policy.max_attempts:
                    policy.sleep(attempt)
        self.backend = "inline"
        self.degraded = True
        return self._race_inline(target, sizes_key, want_witness, deadline)

    def _round_limit(self, round_index: int) -> int:
        limit = self.slice_conflicts * (self.slice_growth ** round_index)
        return max(1, int(limit))

    # -- inline backend -------------------------------------------------
    def _ensure_inline_racers(self) -> list[Racer]:
        if self._inline_racers is None:
            snapshot = self._base_snapshot()
            self._inline_racers = [
                Racer(snapshot, strategy) for strategy in self.strategies
            ]
        return self._inline_racers

    @staticmethod
    def _timeout_payload() -> tuple:
        return ("unknown", None, None, {"timed_out": True}, 0.0)

    def _race_inline(self, target, sizes_key, want_witness, deadline=None):
        """Deterministic round-robin: one slice per racer per round.

        Losing racers simply receive no further slices once a verdict
        lands, so "cancellation" is immediate by construction.  The
        deadline's conflict budget is shared across the whole roster
        (every slice's conflicts are charged against it) and its wall
        clock additionally cancels mid-slice via ``should_stop``.
        """
        racers = self._ensure_inline_racers()
        pending: list[list] = [[] for _ in racers]
        shared_seen: set[frozenset] = set()
        rounds = 0
        while True:
            limit = self._round_limit(rounds)
            rounds += 1
            for index, racer in enumerate(racers):
                if deadline is not None and deadline.expired():
                    summaries = [peer.summary() for peer in racers]
                    return None, self._timeout_payload(), rounds, summaries
                slice_limit = limit
                if deadline is not None:
                    remaining = deadline.remaining_conflicts()
                    if remaining is not None:
                        slice_limit = max(1, min(limit, remaining))
                if pending[index]:
                    racer.import_clauses(pending[index])
                    pending[index] = []
                final, payload = racer.slice(
                    target,
                    sizes_key,
                    want_witness,
                    slice_limit,
                    should_stop=deadline.should_stop if deadline else None,
                )
                if deadline is not None and isinstance(payload[3], dict):
                    deadline.charge(payload[3].get("conflicts", 0))
                if final:
                    summaries = [peer.summary() for peer in racers]
                    return (
                        racer.strategy.name, payload, rounds, summaries
                    )
                if self.share_clauses:
                    for clause in racer.export_clauses(
                        self.exchange_cap, self.exchange_lbd
                    ):
                        key = frozenset(clause[1])
                        if key in shared_seen:
                            continue
                        shared_seen.add(key)
                        for peer_index in range(len(racers)):
                            if peer_index != index:
                                pending[peer_index].append(clause)

    # -- process backend ------------------------------------------------
    def _ensure_procs(self):
        if self._procs is None:
            snapshot = self._base_snapshot()
            ctx = _process_context()
            self._outbox = ctx.Queue()
            self._inboxes = []
            self._events = []
            self._procs = []
            self._seqs = [0] * len(self.strategies)
            for index, strategy in enumerate(self.strategies):
                inbox = ctx.Queue()
                event = ctx.Event()
                proc = ctx.Process(
                    target=_racer_main,
                    args=(
                        snapshot,
                        strategy,
                        index,
                        inbox,
                        self._outbox,
                        event,
                        self.exchange_cap,
                        self.exchange_lbd,
                    ),
                    daemon=True,
                )
                proc.start()
                self._inboxes.append(inbox)
                self._events.append(event)
                self._procs.append(proc)

    def _collect_reply(self, outstanding, deadline=None):
        """One outbox reply — or a typed fault instead of a hang.

        Short-polls the outbox so a dead child is noticed within a poll
        interval (:exc:`WorkerCrashError`) and a silent one within
        :attr:`reply_timeout` (:exc:`WorkerHangError`); both feed the
        recovery path in :meth:`_race_with_recovery`.  An expiring
        deadline flips the outstanding racers' cancel events so their
        replies arrive within one propagate cycle.
        """
        poll = min(0.25, self.reply_timeout)
        waited = 0.0
        cancelled = False
        while True:
            try:
                return self._outbox.get(timeout=poll)
            except Empty:
                dead = [
                    strategy.name
                    for strategy, proc in zip(self.strategies, self._procs)
                    if not proc.is_alive()
                ]
                if dead:
                    raise WorkerCrashError(
                        f"portfolio racer(s) died mid-race: {dead}"
                    ) from None
                if not cancelled and deadline is not None and deadline.expired():
                    for peer_index, event in enumerate(self._events):
                        if peer_index in outstanding:
                            event.set()
                    cancelled = True
                waited += poll
                if waited >= self.reply_timeout:
                    raise WorkerHangError(
                        "no portfolio racer replied within "
                        f"{self.reply_timeout}s (outstanding: "
                        f"{sorted(outstanding)})"
                    ) from None

    def _race_process(self, target, sizes_key, want_witness, deadline=None):
        """Parent-driven pipelined slicing over child slice servers.

        Each racer has at most one outstanding slice.  On the first final
        verdict the parent stops issuing slices and flips the losers'
        cancel events (mid-slice abort via ``should_stop``), then drains
        the outstanding replies so every child is idle — and every event
        cleared — before the next race.  An expired deadline is handled
        the same way, with a ``TIMEOUT`` payload instead of a winner.
        """
        self._ensure_procs()
        pending: list[list] = [[] for _ in self.strategies]
        shared_seen: set[frozenset] = set()
        outstanding: dict[int, int] = {}
        round_of: dict[int, int] = {}
        summaries: dict[int, dict] = {}
        winner = None
        expired = False
        rounds = 0

        def issue(index: int) -> None:
            self._seqs[index] += 1
            limit = self._round_limit(round_of.get(index, 0))
            if deadline is not None:
                remaining = deadline.remaining_conflicts()
                if remaining is not None:
                    limit = max(1, min(limit, remaining))
            self._inboxes[index].put(
                (
                    "slice",
                    self._seqs[index],
                    target,
                    sizes_key,
                    want_witness,
                    limit,
                    tuple(pending[index]),
                )
            )
            pending[index] = []
            outstanding[index] = self._seqs[index]

        for index in range(len(self.strategies)):
            issue(index)
        while outstanding:
            index, seq, status, payload, exports, summary = (
                self._collect_reply(outstanding, deadline)
            )
            if status == "error":
                raise WorkerCrashError(
                    f"portfolio racer "
                    f"{self.strategies[index].name!r} failed: {payload}"
                )
            if outstanding.get(index) != seq:
                continue  # stale reply from an earlier, cancelled race
            del outstanding[index]
            summaries[index] = summary
            round_of[index] = round_of.get(index, 0) + 1
            rounds = max(rounds, round_of[index])
            if deadline is not None and summary:
                # Children report cumulative conflicts (they stay warm
                # across races); charge the delta since the last reply.
                total = summary.get("conflicts", 0)
                deadline.charge(total - self._cum_conflicts.get(index, 0))
                self._cum_conflicts[index] = total
            if winner is None and status == "final":
                winner = (index, payload)
                for peer_index, event in enumerate(self._events):
                    if peer_index in outstanding:
                        event.set()
                continue
            if winner is None and not expired and deadline is not None:
                if deadline.expired():
                    # Budget gone: stop re-slicing, cancel the racers
                    # still out, and drain their final partial replies.
                    expired = True
                    for peer_index, event in enumerate(self._events):
                        if peer_index in outstanding:
                            event.set()
            if winner is None and not expired:
                if self.share_clauses:
                    for clause in exports:
                        key = frozenset(clause[1])
                        if key in shared_seen:
                            continue
                        shared_seen.add(key)
                        for peer_index in range(len(self.strategies)):
                            if peer_index != index:
                                pending[peer_index].append(clause)
                issue(index)
        for event in self._events:
            event.clear()
        ordered = [
            summaries.get(i, {"strategy": strategy.name})
            for i, strategy in enumerate(self.strategies)
        ]
        if winner is None:
            assert expired, "race drained with neither winner nor deadline"
            return None, self._timeout_payload(), rounds, ordered
        index, payload = winner
        return self.strategies[index].name, payload, rounds, ordered

    # ------------------------------------------------------------------
    # Result merge (parent term space), mirroring the parallel session
    # ------------------------------------------------------------------
    def _merge(
        self,
        payload: tuple,
        sizes: Mapping[str, int] | None = None,
        portfolio: dict | None = None,
    ) -> VerificationResult:
        kind, a, b, solver_stats, elapsed = payload[:5]
        solver_stats = dict(solver_stats)
        solver_profile = solver_stats.pop("profile", {})
        snapshot = self._base_snapshot()
        stats = {
            "network": self.network.stats(),
            "color_pairs": self.colors.total_pairs(),
            "invariant_count": len(snapshot.pending_invariant_rows),
            "solver": solver_stats,
            "solver_profile": solver_profile,
            "solve_seconds": elapsed,
        }
        if portfolio is not None:
            stats["portfolio"] = portfolio
        if self._parametric:
            stats["queue_sizes"] = dict(
                self._sizes if sizes is None else sizes
            )
        if len(payload) > 5 and payload[5] is not None:
            stats["invariant_selection"] = payload[5]
        if kind == "unknown":
            # The race's run budget expired before any racer finished.
            stats["timed_out"] = True
            return VerificationResult(
                Verdict.TIMEOUT,
                invariants=[],
                stats=stats,
            )
        if kind == "unsat":
            core = [
                self._label_by_guard_name.get(name, name) for name in a
            ]
            stats["formula_unsat"] = b
            return VerificationResult(
                Verdict.DEADLOCK_FREE,
                invariants=[],
                stats=stats,
                unsat_core=core,
            )
        witness = None
        if a is not None:
            model = Model(
                {self._var_by_uid[uid]: value for uid, value in a.items()},
                dict(b),
            )
            witness = extract_witness(
                self.network, self.colors, self.pool, model
            )
        return VerificationResult(
            Verdict.DEADLOCK_CANDIDATE,
            witness=witness,
            invariants=[],
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "network": self.network.stats(),
            "strategies": [s.name for s in self.strategies],
            "backend": self.backend,
            "concurrency": self._concurrency,
            "share_clauses": self.share_clauses,
            "races": self.races,
            "strategy_wins": dict(self.strategy_wins),
            "recoveries": self.recoveries,
            "degraded": self.degraded,
        }
