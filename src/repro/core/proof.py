"""The ADVOCAT proof engine: colors → invariants → block/idle → SMT verdict.

:func:`verify` is the library's main entry point.  It returns a
:class:`~repro.core.result.VerificationResult`:

* ``DEADLOCK_FREE`` — the equation system conjoined with the invariants and
  the deadlock assertion is UNSAT.  By soundness of the block/idle
  overapproximation and of the invariants, *no reachable deadlock exists*.
* ``DEADLOCK_CANDIDATE`` — a satisfying assignment exists; its queue
  occupancies and automaton states are returned as a
  :class:`~repro.core.result.DeadlockWitness`.  The candidate may be
  unreachable (a false negative); :mod:`repro.mc` can confirm small ones.
"""

from __future__ import annotations

from ..smt import Result, Solver
from ..xmas import Network
from ..util import Stopwatch
from .colors import ColorMap, derive_colors
from .deadlock import DeadlockEncoding, encode_deadlock
from .invariants import generate_invariants
from .result import DeadlockWitness, Verdict, VerificationResult
from .vars import VarPool

__all__ = ["verify", "extract_witness", "enumerate_witnesses"]


def verify(
    network: Network,
    use_invariants: bool = True,
    rotating_precision: bool = True,
    max_splits: int = 100_000,
) -> VerificationResult:
    """Run the full ADVOCAT pipeline on ``network``.

    Parameters
    ----------
    network:
        A validated (or validatable) closed xMAS network.
    use_invariants:
        Generate and conjoin cross-layer invariants (Section 4).  Without
        them the check degenerates to plain block/idle detection (Section
        3) and reports many unreachable candidates.
    rotating_precision:
        Use the stronger block rule for ``rotating`` queues (see
        :mod:`repro.core.deadlock`).
    max_splits:
        Branch-and-bound budget forwarded to the SMT solver.
    """
    network.validate()
    watch = Stopwatch()
    with watch.phase("color derivation"):
        colors = derive_colors(network)
    pool = VarPool()
    invariants = []
    if use_invariants:
        with watch.phase("invariant generation"):
            invariants = generate_invariants(network, colors, pool)
    with watch.phase("deadlock encoding"):
        encoding = encode_deadlock(
            network, colors, pool, rotating_precision=rotating_precision
        )
    solver = Solver(max_splits=max_splits)
    with watch.phase("smt solving"):
        for term in encoding.definitions:
            solver.add(term)
        for term in encoding.domain:
            solver.add(term)
        for invariant in invariants:
            solver.add(invariant.term())
        solver.add(encoding.assertion)
        outcome = solver.check()

    stats = {
        "network": network.stats(),
        "color_pairs": colors.total_pairs(),
        "invariant_count": len(invariants),
        "solver": dict(solver.stats),
        "durations": dict(watch.durations),
    }
    if outcome == Result.UNSAT:
        return VerificationResult(
            Verdict.DEADLOCK_FREE, invariants=invariants, stats=stats
        )
    witness = extract_witness(network, colors, pool, solver, encoding)
    return VerificationResult(
        Verdict.DEADLOCK_CANDIDATE,
        witness=witness,
        invariants=invariants,
        stats=stats,
    )


def enumerate_witnesses(
    network: Network,
    limit: int = 16,
    use_invariants: bool = True,
    rotating_precision: bool = True,
):
    """Yield distinct deadlock candidates (up to ``limit``).

    Each witness differs from all previous ones in automaton states or in
    some queue-occupancy value; the generator stops when the formula
    becomes UNSAT or the limit is reached.  Useful for hunting a *reachable*
    candidate among false negatives (confirm each with
    :class:`repro.mc.Explorer`).
    """
    from ..smt import conj, eq, neg

    network.validate()
    colors = derive_colors(network)
    pool = VarPool()
    solver = Solver()
    if use_invariants:
        for invariant in generate_invariants(network, colors, pool):
            solver.add(invariant.term())
    encoding = encode_deadlock(
        network, colors, pool, rotating_precision=rotating_precision
    )
    for term in encoding.definitions:
        solver.add(term)
    for term in encoding.domain:
        solver.add(term)
    solver.add(encoding.assertion)

    for _ in range(limit):
        if solver.check() != Result.SAT:
            return
        model = solver.model()
        witness = extract_witness(network, colors, pool, solver, encoding)
        yield witness
        shape = []
        for automaton in network.automata():
            for state in automaton.states:
                var = pool.state(automaton, state)
                shape.append(eq(var, model[var]))
        for queue in network.queues():
            for color in colors.of(network.channel_of(queue.i)):
                var = pool.occupancy(queue, color)
                shape.append(eq(var, model[var]))
        solver.add(neg(conj(*shape)))


def extract_witness(
    network: Network,
    colors: ColorMap,
    pool: VarPool,
    solver: Solver,
    encoding: DeadlockEncoding,
) -> DeadlockWitness:
    """Read the deadlock configuration out of the SMT model."""
    model = solver.model()

    automaton_states: dict[str, str] = {}
    for automaton in network.automata():
        chosen = [
            state
            for state in automaton.states
            if model[pool.state(automaton, state)] == 1
        ]
        automaton_states[automaton.name] = chosen[0] if chosen else "?"

    queue_contents: dict[str, dict] = {}
    for queue in network.queues():
        contents = {}
        for color in colors.of(network.channel_of(queue.i)):
            count = model[pool.occupancy(queue, color)]
            if count:
                contents[color] = int(count)
        queue_contents[queue.name] = contents

    blocked = []
    for queue in network.queues():
        out_channel = network.channel_of(queue.o)
        for color in colors.of(out_channel):
            if (
                model[pool.occupancy(queue, color)] >= 1
                and model[pool.block(out_channel, color)]
            ):
                blocked.append(f"{queue.name} head {color!r}")
    for source in network.sources():
        out_channel = network.channel_of(source.o)
        for color in source.colors:
            if model[pool.block(out_channel, color)]:
                blocked.append(f"source {source.name} {color!r}")

    return DeadlockWitness(
        automaton_states=automaton_states,
        queue_contents=queue_contents,
        blocked_channels=blocked,
    )
