"""The ADVOCAT proof engine: colors → invariants → block/idle → SMT verdict.

:func:`verify` is the library's one-shot entry point.  It returns a
:class:`~repro.core.result.VerificationResult`:

* ``DEADLOCK_FREE`` — the equation system conjoined with the invariants and
  the deadlock assertion is UNSAT.  By soundness of the block/idle
  overapproximation and of the invariants, *no reachable deadlock exists*.
* ``DEADLOCK_CANDIDATE`` — a satisfying assignment exists; its queue
  occupancies and automaton states are returned as a
  :class:`~repro.core.result.DeadlockWitness`.  The candidate may be
  unreachable (a false negative); :mod:`repro.mc` can confirm small ones.

Both :func:`verify` and :func:`enumerate_witnesses` are thin wrappers over
a throwaway :class:`~repro.core.engine.VerificationSession`; callers that
issue several queries against the same network should hold a session
directly and let it reuse the encoding and every learned clause.
"""

from __future__ import annotations

from ..smt import Model
from ..xmas import Network
from .colors import ColorMap
from .engine import VerificationSession
from .result import DeadlockWitness, VerificationResult
from .vars import VarPool

__all__ = ["verify", "extract_witness", "enumerate_witnesses"]


def verify(
    network: Network,
    use_invariants: bool = True,
    rotating_precision: bool = True,
    max_splits: int = 100_000,
    deadline=None,
) -> VerificationResult:
    """Run the full ADVOCAT pipeline on ``network``.

    Parameters
    ----------
    network:
        A validated (or validatable) closed xMAS network.
    use_invariants:
        Generate and conjoin cross-layer invariants (Section 4).  Without
        them the check degenerates to plain block/idle detection (Section
        3) and reports many unreachable candidates.
    rotating_precision:
        Use the stronger block rule for ``rotating`` queues (see
        :mod:`repro.core.deadlock`).
    max_splits:
        Branch-and-bound budget forwarded to the SMT solver.
    deadline:
        Optional :class:`~repro.core.resilience.Deadline` (or bare
        seconds); an expired budget yields a ``TIMEOUT`` verdict.
    """
    session = VerificationSession(
        network,
        rotating_precision=rotating_precision,
        max_splits=max_splits,
        parametric_queues=False,
    )
    if use_invariants:
        session.add_invariants()
    return session.verify(deadline=deadline)


def enumerate_witnesses(
    network: Network,
    limit: int = 16,
    use_invariants: bool = True,
    rotating_precision: bool = True,
):
    """Yield distinct deadlock candidates (up to ``limit``).

    Each witness differs from all previous ones in automaton states or in
    some queue-occupancy value; the generator stops when the formula
    becomes UNSAT or the limit is reached.  Useful for hunting a *reachable*
    candidate among false negatives (confirm each with
    :class:`repro.mc.Explorer`).
    """
    session = VerificationSession(
        network, rotating_precision=rotating_precision, parametric_queues=False
    )
    if use_invariants:
        session.add_invariants()
    yield from session.enumerate_witnesses(limit=limit)


def extract_witness(
    network: Network,
    colors: ColorMap,
    pool: VarPool,
    model: Model,
) -> DeadlockWitness:
    """Read the deadlock configuration out of an SMT model.

    ``model`` only needs mapping access for the pool's state/occupancy
    integer variables and the block booleans — a local
    :meth:`~repro.smt.Solver.model` works, and so does a model
    reconstructed from a worker process's value payload
    (:mod:`repro.core.parallel`).
    """
    automaton_states: dict[str, str] = {}
    for automaton in network.automata():
        chosen = [
            state
            for state in automaton.states
            if model[pool.state(automaton, state)] == 1
        ]
        automaton_states[automaton.name] = chosen[0] if chosen else "?"

    queue_contents: dict[str, dict] = {}
    for queue in network.queues():
        contents = {}
        for color in colors.of(network.channel_of(queue.i)):
            count = model[pool.occupancy(queue, color)]
            if count:
                contents[color] = int(count)
        queue_contents[queue.name] = contents

    blocked = []
    for queue in network.queues():
        out_channel = network.channel_of(queue.o)
        for color in colors.of(out_channel):
            if (
                model[pool.occupancy(queue, color)] >= 1
                and model[pool.block(out_channel, color)]
            ):
                blocked.append(f"{queue.name} head {color!r}")
    for source in network.sources():
        out_channel = network.channel_of(source.o)
        for color in source.colors:
            if model[pool.block(out_channel, color)]:
                blocked.append(f"source {source.name} {color!r}")

    return DeadlockWitness(
        automaton_states=automaton_states,
        queue_contents=queue_contents,
        blocked_channels=blocked,
    )
