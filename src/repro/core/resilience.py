"""Fault tolerance for the execution stack: deadlines, retries, fault injection.

The orchestration layers built on top of the incremental engine —
:mod:`repro.core.parallel` (query pools), :mod:`repro.core.portfolio`
(slice-serving racer children) and :mod:`repro.core.experiments`
(scenario grids) — all assume a healthy machine: workers never die,
solves never wedge, children always reply.  This module supplies the
primitives that drop that assumption without touching verdicts:

* :class:`Deadline` — a run budget (wall-clock seconds and/or a conflict
  budget) riding the solver's cooperative-cancellation hooks
  (``Cdcl.solve(conflict_limit=..., should_stop=...)``), so an expired
  query returns a first-class ``TIMEOUT`` verdict with its solver stats
  retained instead of hanging.  Deadlines cross process boundaries as
  plain ``(remaining_seconds, remaining_conflicts)`` tuples
  (:meth:`Deadline.to_wire`), so a worker enforces the *remaining*
  budget locally.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter, shared by every recovery loop (pool rebuilds, racer restarts,
  scenario retries).
* :exc:`WorkerCrashError` / :exc:`WorkerHangError` — typed faults the
  orchestration layers raise when a child dies or stops replying; the
  recovery paths catch exactly these (plus
  :class:`concurrent.futures.BrokenExecutor`) and replay from the same
  :class:`~repro.core.engine.SessionSnapshot`, which is why recovered
  verdicts stay byte-identical.
* :class:`FaultPlan` / :func:`maybe_inject` — a deterministic fault
  injection harness.  A plan is a comma-separated list of
  ``site:action@N`` triggers (fire ``action`` on the ``N``-th arrival at
  ``site`` *in a given process*), installed programmatically
  (:func:`install_fault_plan`) or via the ``ADVOCAT_FAULTS`` environment
  variable, which child processes inherit under both fork and spawn.
  The orchestration layers call ``maybe_inject(site)`` at explicit
  injection points; the chaos suite (``tests/core/test_resilience.py``)
  drives every action through them.

Injection sites and actions
---------------------------

===================  =======================================================
site                 where
===================  =======================================================
``query-worker``     :func:`repro.core.parallel._run_job` (pool worker,
                     once per job)
``parallel-pool``    :meth:`ParallelVerificationSession._dispatch` (parent,
                     once per pool dispatch)
``racer-slice``      :func:`repro.core.portfolio._racer_main` (slice
                     server, once per slice command)
``scenario-worker``  :func:`repro.core.experiments.run_scenario` (once per
                     scenario)
``builder``          :meth:`ScenarioSpec.build` (once per network build)
===================  =======================================================

Actions: ``kill`` (``os._exit`` — a hard worker crash; downgraded to
``raise`` in the plan's owner process so an injected kill can never take
down the test runner), ``raise`` (:exc:`InjectedFault`), ``break``
(:class:`~concurrent.futures.BrokenExecutor` — a simulated pool break),
``drop`` (returned to the caller, which swallows its reply — the parent
observes a hang), ``hang`` (sleep ``HANG_SECONDS`` — the parent's reply
timeout must recover and reap the child), ``delay`` (a short sleep, then
proceed normally).

A plan may carry a *latch directory*: each trigger then fires at most
once **globally** (across every process), via an atomically created
marker file — the knob that turns "every fresh worker dies on its first
task" (the quarantine drill) into "exactly one worker dies, once" (the
recovery drill).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from queue import Empty

__all__ = [
    "Deadline",
    "RetryPolicy",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "WorkerFault",
    "WorkerCrashError",
    "WorkerHangError",
    "install_fault_plan",
    "active_fault_plan",
    "maybe_inject",
    "reap_process",
    "drain_queue",
    "ENV_FAULTS",
    "ENV_FAULT_LATCH",
    "ENV_FAULT_PID",
]

ENV_FAULTS = "ADVOCAT_FAULTS"
ENV_FAULT_LATCH = "ADVOCAT_FAULT_LATCH"
ENV_FAULT_PID = "ADVOCAT_FAULT_PID"

#: How long an injected ``hang`` sleeps — far beyond any reply timeout,
#: so the parent must detect the hang and reap the child.
HANG_SECONDS = 3600.0

#: How long an injected ``delay`` sleeps before proceeding normally.
DELAY_SECONDS = 0.2

#: The exit code of an injected ``kill`` (recognisable in reaped children).
KILL_EXIT_CODE = 17


# ---------------------------------------------------------------------------
# Typed faults
# ---------------------------------------------------------------------------


class InjectedFault(RuntimeError):
    """Raised by an injected ``raise`` action (and by a ``kill`` that
    fires in the plan's owner process, where ``os._exit`` is unsafe)."""


class WorkerFault(RuntimeError):
    """Base of the detected child-process faults the recovery paths catch."""


class WorkerCrashError(WorkerFault):
    """A child process died (or reported a fatal error) mid-task."""


class WorkerHangError(WorkerFault):
    """A live child stopped replying within the reply timeout."""


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """A run budget: wall-clock seconds and/or a total conflict budget.

    The wall clock starts at construction.  The conflict budget is
    *cumulative*: callers :meth:`charge` each query's conflict delta, and
    :meth:`remaining_conflicts` becomes the next query's
    ``conflict_limit``.  :meth:`should_stop` is the zero-argument
    callable handed to ``Solver.check(should_stop=...)`` — it polls the
    wall clock only (the conflict side is enforced by the limit), so the
    hot-path cost is one ``time.monotonic`` call per propagate cycle.

    Deadlines never raise on expiry; the query layers translate an
    expired deadline into a ``TIMEOUT``
    :class:`~repro.core.result.VerificationResult`.  To ship a deadline
    to a worker process, send :meth:`to_wire` (the *remaining* budget as
    plain data) and rebuild with :meth:`from_wire` — the worker then
    enforces the remainder on its own clock.
    """

    __slots__ = ("seconds", "conflicts", "_start", "_spent")

    def __init__(
        self, seconds: float | None = None, conflicts: int | None = None
    ):
        if seconds is None and conflicts is None:
            raise ValueError(
                "Deadline needs at least one bound (seconds or conflicts)"
            )
        if seconds is not None and seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if conflicts is not None and conflicts < 0:
            raise ValueError(f"conflicts must be >= 0, got {conflicts}")
        self.seconds = None if seconds is None else float(seconds)
        self.conflicts = None if conflicts is None else int(conflicts)
        self._start = time.monotonic()
        self._spent = 0

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def remaining_seconds(self) -> float | None:
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def remaining_conflicts(self) -> int | None:
        if self.conflicts is None:
            return None
        return max(0, self.conflicts - self._spent)

    def charge(self, conflicts: int) -> None:
        """Record ``conflicts`` spent against the conflict budget."""
        self._spent += max(0, int(conflicts))

    def expired(self) -> bool:
        if self.seconds is not None and self.elapsed() >= self.seconds:
            return True
        return self.conflicts is not None and self._spent >= self.conflicts

    def should_stop(self) -> bool:
        """Hot-path poll (wall clock only); pass as ``should_stop=``."""
        return (
            self.seconds is not None
            and time.monotonic() - self._start >= self.seconds
        )

    # -- process-boundary plumbing --------------------------------------
    def to_wire(self) -> tuple[float | None, int | None]:
        """The *remaining* budget as plain data (pickle/JSON-safe)."""
        return (self.remaining_seconds(), self.remaining_conflicts())

    @classmethod
    def from_wire(cls, wire) -> "Deadline | None":
        if wire is None:
            return None
        seconds, conflicts = wire
        return cls(seconds=seconds, conflicts=conflicts)

    @classmethod
    def coerce(cls, value) -> "Deadline | None":
        """Normalise the deadline arguments the plumbing accepts:
        ``None``, a :class:`Deadline`, a wire tuple, or bare seconds."""
        if value is None or isinstance(value, Deadline):
            return value
        if isinstance(value, (int, float)):
            return cls(seconds=value)
        return cls.from_wire(tuple(value))

    def __repr__(self) -> str:
        return (
            f"Deadline(seconds={self.seconds}, conflicts={self.conflicts}, "
            f"elapsed={self.elapsed():.3f}, spent={self._spent})"
        )


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` (0-based) is
    ``min(max_delay, base_delay * backoff**attempt)`` scaled by a
    deterministic jitter factor in ``[1, 1 + jitter]`` derived from
    ``(seed, attempt)`` — no global RNG state, so retry schedules are
    reproducible.  ``max_attempts`` bounds how often a recovery loop
    replays before degrading (the quarantine ladder).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    backoff: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        base = min(self.max_delay, self.base_delay * self.backoff**attempt)
        # splitmix64-style hash of (seed, attempt) -> jitter in [0, 1).
        mask = (1 << 64) - 1
        x = (self.seed * 0x9E3779B97F4A7C15 + (attempt + 1)) & mask
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & mask
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & mask
        fraction = ((x ^ (x >> 31)) % 10_000) / 10_000.0
        return base * (1.0 + self.jitter * fraction)

    def sleep(self, attempt: int) -> float:
        """Back off before retry number ``attempt + 1``; returns the delay."""
        delay = self.delay(attempt)
        if delay > 0:
            time.sleep(delay)
        return delay


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

_ACTIONS = ("kill", "raise", "break", "drop", "hang", "delay")


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire ``action`` on the ``at``-th arrival at ``site``
    (counted per process; with a latched plan, at most once globally)."""

    site: str
    action: str
    at: int = 1

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(known: {', '.join(_ACTIONS)})"
            )
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")

    def describe(self) -> str:
        return f"{self.site}:{self.action}@{self.at}"


class FaultPlan:
    """A deterministic set of :class:`FaultSpec` triggers.

    Per-site hit counters live in the plan object, i.e. *per process*
    (fork children copy the parent's counters at fork time; spawn
    children re-parse the plan from the environment with fresh
    counters).  ``latch_dir`` makes every trigger once-globally: the
    first process to fire it creates a marker file atomically and every
    later arrival — in any process — skips it.

    ``owner_pid`` protects the installing process: a ``kill`` firing
    there is downgraded to :exc:`InjectedFault` so a mis-scoped plan can
    never ``os._exit`` the test runner.
    """

    def __init__(
        self,
        specs,
        latch_dir: str | None = None,
        owner_pid: int | None = None,
    ):
        self.specs = tuple(specs)
        self.latch_dir = latch_dir
        self.owner_pid = owner_pid
        self._hits: dict[str, int] = {}

    @classmethod
    def parse(
        cls,
        text: str,
        latch_dir: str | None = None,
        owner_pid: int | None = None,
    ) -> "FaultPlan":
        """Parse ``"site:action@N,site:action"`` (``@N`` defaults to 1)."""
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, _, rest = chunk.partition(":")
            if not rest:
                raise ValueError(
                    f"malformed fault trigger {chunk!r} "
                    "(expected site:action[@N])"
                )
            action, _, at = rest.partition("@")
            specs.append(
                FaultSpec(
                    site=site.strip(),
                    action=action.strip(),
                    at=int(at) if at else 1,
                )
            )
        return cls(specs, latch_dir=latch_dir, owner_pid=owner_pid)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)

    def hits(self, site: str) -> int:
        return self._hits.get(site, 0)

    def _acquire_latch(self, spec: FaultSpec) -> bool:
        if self.latch_dir is None:
            return True
        marker = os.path.join(
            self.latch_dir, f"{spec.site}-{spec.action}-{spec.at}"
        )
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self, site: str) -> str | None:
        """Count one arrival at ``site``; the triggered action or ``None``."""
        self._hits[site] = count = self._hits.get(site, 0) + 1
        for spec in self.specs:
            if spec.site == site and spec.at == count:
                if self._acquire_latch(spec):
                    return spec.action
        return None


_PLAN: FaultPlan | None = None
_PLAN_LOADED = False


def install_fault_plan(
    plan: "FaultPlan | str | None", latch_dir: str | None = None
) -> FaultPlan | None:
    """Install ``plan`` in this process *and* the environment.

    The environment copy (``ADVOCAT_FAULTS`` + latch/owner-pid
    companions) is what child processes inherit — under fork *and*
    spawn — so one installation covers the whole process tree.  The
    installing process is recorded as the plan's owner (``kill`` is
    downgraded there).  ``install_fault_plan(None)`` clears everything.
    """
    global _PLAN, _PLAN_LOADED
    if plan is None:
        _PLAN = None
        _PLAN_LOADED = True
        for key in (ENV_FAULTS, ENV_FAULT_LATCH, ENV_FAULT_PID):
            os.environ.pop(key, None)
        return None
    if isinstance(plan, str):
        plan = FaultPlan.parse(
            plan, latch_dir=latch_dir, owner_pid=os.getpid()
        )
    else:
        if latch_dir is not None:
            plan.latch_dir = latch_dir
        if plan.owner_pid is None:
            plan.owner_pid = os.getpid()
    _PLAN = plan
    _PLAN_LOADED = True
    os.environ[ENV_FAULTS] = plan.describe()
    if plan.latch_dir is not None:
        os.environ[ENV_FAULT_LATCH] = plan.latch_dir
    else:
        os.environ.pop(ENV_FAULT_LATCH, None)
    if plan.owner_pid is not None:
        os.environ[ENV_FAULT_PID] = str(plan.owner_pid)
    else:
        os.environ.pop(ENV_FAULT_PID, None)
    return plan


def active_fault_plan() -> FaultPlan | None:
    """The installed plan, lazily parsed from the environment if needed
    (how spawn-started workers pick up the parent's installation)."""
    global _PLAN, _PLAN_LOADED
    if not _PLAN_LOADED:
        text = os.environ.get(ENV_FAULTS)
        if text:
            pid = os.environ.get(ENV_FAULT_PID)
            _PLAN = FaultPlan.parse(
                text,
                latch_dir=os.environ.get(ENV_FAULT_LATCH),
                owner_pid=int(pid) if pid else None,
            )
        _PLAN_LOADED = True
    return _PLAN


def maybe_inject(site: str) -> str | None:
    """One injection point: no-op without a plan (one dict lookup).

    Executes ``kill``/``raise``/``break``/``hang``/``delay`` directly;
    returns ``"drop"`` (and ``"delay"``, after its sleep) to the caller,
    which decides what swallowing a reply means at its site.
    """
    plan = active_fault_plan()
    if plan is None:
        return None
    action = plan.fire(site)
    if action is None:
        return None
    if action == "kill":
        if plan.owner_pid is not None and os.getpid() == plan.owner_pid:
            raise InjectedFault(
                f"injected kill at {site!r} (downgraded to raise in the "
                "plan's owner process)"
            )
        os._exit(KILL_EXIT_CODE)
    if action == "raise":
        raise InjectedFault(f"injected fault at {site!r}")
    if action == "break":
        raise BrokenExecutor(f"injected pool break at {site!r}")
    if action == "hang":
        time.sleep(HANG_SECONDS)
        return "hang"
    if action == "delay":
        time.sleep(DELAY_SECONDS)
    return action


# ---------------------------------------------------------------------------
# Child-process hygiene
# ---------------------------------------------------------------------------


def reap_process(proc, timeout: float = 5.0) -> str:
    """Stop ``proc`` with escalation: join → ``terminate()`` → ``kill()``.

    Returns how it died (``"joined"`` / ``"terminated"`` / ``"killed"`` /
    ``"lost"``) — a hung child that ignores SIGTERM is force-killed, so
    no zombie survives a session's :meth:`close`.
    """
    proc.join(timeout)
    if not proc.is_alive():
        return "joined"
    proc.terminate()
    proc.join(timeout)
    if not proc.is_alive():
        return "terminated"
    kill = getattr(proc, "kill", None)
    if kill is not None:
        kill()
        proc.join(timeout)
        if not proc.is_alive():
            return "killed"
    return "lost"


def drain_queue(queue) -> int:
    """Empty a multiprocessing queue and detach its feeder thread.

    Dropping a queue with items still buffered can block interpreter
    shutdown on the feeder thread; recovery paths drain before
    rebuilding.  Returns the number of items discarded.
    """
    drained = 0
    try:
        while True:
            queue.get_nowait()
            drained += 1
    except Empty:
        pass
    except (OSError, ValueError):
        pass  # already closed
    cancel = getattr(queue, "cancel_join_thread", None)
    if cancel is not None:
        cancel()
    close = getattr(queue, "close", None)
    if close is not None:
        try:
            close()
        except (OSError, ValueError):
            pass
    return drained
