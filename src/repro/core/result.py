"""Result containers: invariants, witnesses, verdicts."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable, Mapping

from ..smt import IntVar, Term, eq

__all__ = ["Invariant", "DeadlockWitness", "Verdict", "VerificationResult"]

Color = Hashable


class Invariant:
    """A linear invariant  Σ coeffᵢ·varᵢ + constant = 0  over reachable states.

    Variables are the pool's ``#q.d`` occupancies and ``A.s`` indicators.
    Pretty-printing follows the paper's convention of isolating the constant
    and negative terms on the left-hand side, e.g.::

        1 = q0.req + q1.ack + S.s0 - T.t1
    """

    def __init__(self, coeffs: Mapping[IntVar, int | Fraction], constant: int | Fraction):
        items = sorted(
            ((v, Fraction(c)) for v, c in coeffs.items() if c),
            key=lambda item: item[0].name,
        )
        self.coeffs: tuple[tuple[IntVar, Fraction], ...] = tuple(items)
        self.constant = Fraction(constant)

    def term(self) -> Term:
        """The invariant as an SMT equality."""
        expr = sum((c * v for v, c in self.coeffs), 0 * _zero_var())
        return eq(expr, -self.constant)

    def evaluate(self, assignment: Mapping[IntVar, int]) -> bool:
        total = sum((c * assignment.get(v, 0) for v, c in self.coeffs), Fraction(0))
        return total + self.constant == 0

    def variables(self) -> list[IntVar]:
        return [v for v, _ in self.coeffs]

    def pretty(self) -> str:
        positives = [(v, abs(c)) for v, c in self.coeffs if c > 0]
        negatives = [(v, abs(c)) for v, c in self.coeffs if c < 0]

        def render(terms, const):
            parts = []
            if const:
                parts.append(str(const))
            parts.extend(
                v.name if c == 1 else f"{c}*{v.name}" for v, c in terms
            )
            return " + ".join(parts) if parts else "0"

        # Move negatives and the constant so both sides are nonnegative sums:
        # Σ pos + const = Σ neg      (const kept on the lighter side)
        if self.constant <= 0:
            return f"{render(positives, 0)} = {render(negatives, -self.constant)}"
        return f"{render(positives, self.constant)} = {render(negatives, 0)}"

    def __repr__(self) -> str:
        return f"Invariant({self.pretty()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Invariant):
            return NotImplemented
        return self.coeffs == other.coeffs and self.constant == other.constant

    def __hash__(self) -> int:
        return hash((self.coeffs, self.constant))


_ZERO_VAR: IntVar | None = None


def _zero_var() -> IntVar:
    """A throwaway variable so empty sums still build a LinExpr."""
    global _ZERO_VAR
    if _ZERO_VAR is None:
        from ..smt import intvar

        _ZERO_VAR = intvar("_zero")
    return _ZERO_VAR


@dataclass
class DeadlockWitness:
    """A (possibly unreachable) deadlock configuration from the SMT model."""

    automaton_states: dict[str, str]
    queue_contents: dict[str, dict[Color, int]]
    blocked_channels: list[str]

    def total_packets(self) -> int:
        return sum(
            count for contents in self.queue_contents.values()
            for count in contents.values()
        )

    def pretty(self) -> str:
        lines = ["deadlock candidate:"]
        for automaton, state in sorted(self.automaton_states.items()):
            lines.append(f"  {automaton} in state {state}")
        for queue, contents in sorted(self.queue_contents.items()):
            if contents:
                inside = ", ".join(
                    f"{count}x {color}" for color, count in sorted(
                        contents.items(), key=lambda item: str(item[0])
                    )
                )
                lines.append(f"  {queue}: [{inside}]")
        if self.blocked_channels:
            lines.append("  permanently blocked: " + ", ".join(self.blocked_channels))
        return "\n".join(lines)


class Verdict(enum.Enum):
    DEADLOCK_FREE = "deadlock-free"
    DEADLOCK_CANDIDATE = "deadlock-candidate"
    # The run budget (wall clock or conflicts) expired before the solver
    # decided; learning up to the cutoff is retained in the session.
    TIMEOUT = "timeout"


@dataclass
class VerificationResult:
    """Outcome of a full ADVOCAT run."""

    verdict: Verdict
    witness: DeadlockWitness | None = None
    invariants: list[Invariant] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    # On DEADLOCK_FREE: the labels of the assumed guards responsible for
    # UNSAT (deadlock-case labels, "cap[q==k]" capacity pins).  An empty
    # list means the encoding is infeasible regardless of the assumptions
    # (stats["formula_unsat"] is then True); None on SAT results.
    unsat_core: list[str] | None = None

    @property
    def deadlock_free(self) -> bool:
        return self.verdict is Verdict.DEADLOCK_FREE

    @property
    def timed_out(self) -> bool:
        return self.verdict is Verdict.TIMEOUT

    def pretty(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        if self.invariants:
            lines.append(f"invariants: {len(self.invariants)}")
        if self.unsat_core:
            lines.append("unsat core: " + ", ".join(self.unsat_core))
        if self.witness is not None:
            lines.append(self.witness.pretty())
        return "\n".join(lines)
