"""Verification-as-a-service: an asyncio server over tiered caching.

The paper pitches push-button deadlock verification at design-tool
scale; everything through PR 8 is script-shaped — each caller pays a
fresh build+solve even when thousands of requests describe the same
network.  This module turns the stack into a long-lived TCP service:

* **protocol** — length-prefixed JSON frames (4-byte big-endian length,
  then one UTF-8 JSON object).  Requests carry an ``op`` (``ping`` /
  ``stats`` / ``cases`` / ``verify`` / ``verify_channel`` / ``witness``
  / ``size`` / ``shutdown``), a network *description* (a builder name
  plus kwargs, canonicalised through the
  :class:`~repro.core.experiments.ScenarioSpec` registry — no code
  crosses the wire), optional query params and an optional
  ``deadline_s`` honoured per request as a PR-8
  :class:`~repro.core.resilience.Deadline`.
* **three cache tiers**, consulted cheapest-first (see
  :mod:`repro.core.cache`): the cold :class:`VerdictStore` keyed by
  ``(encoding content hash, canonical query)`` — a hit answers without
  any solver; the hot :class:`LruSessionCache` of live in-server
  sessions (eviction calls ``close()``); the warm
  :class:`SnapshotStore` of pickled
  :class:`~repro.core.engine.SessionSnapshot` images that worker
  processes rehydrate (:class:`~repro.core.parallel.WorkerSession`)
  without re-running the build phase.
* **batching + single-flight** — concurrent identical requests share
  one in-flight future; concurrent *distinct* queries against one spec
  serialise through that spec's session (assumption-based guard
  queries on one warm solver) instead of spawning N sessions.
* **backpressure** — requests needing a solve beyond ``max_pending``
  outstanding are rejected with ``"overloaded"`` instead of queueing
  unboundedly; cache hits are always served.

Verdicts are cached by *content*, never by name: the key is
:meth:`SessionSnapshot.content_hash`, so differently labelled requests
that build the same encoding share one solve, and specs whose kwargs
differ at all never collide.  ``TIMEOUT`` verdicts are never cached —
a budget miss is a property of the request, not of the encoding.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import struct
import socket
import threading
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from functools import partial
from typing import Any

from .cache import (
    LruSessionCache,
    SnapshotStore,
    VerdictStore,
    canonical_json,
    stable_hash,
)
from .engine import SessionSnapshot, resolve_resize
from .experiments import ScenarioSpec, builder_catalog, run_scenario
from .parallel import (
    WorkerSession,
    _process_context,
    default_jobs,
    shutdown_scenario_executors,
)
from .resilience import Deadline, RetryPolicy, maybe_inject
from .vars import color_label

__all__ = [
    "VerificationService",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceSession",
    "ServiceError",
    "read_frame",
    "write_frame",
]

#: Upper bound on one frame's JSON body — a spec description plus a
#: witness payload is kilobytes; anything near this is a framing error.
MAX_FRAME = 1 << 24

_QUERY_OPS = ("verify", "verify_channel", "witness")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(payload: Any) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return struct.pack(">I", len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Any:
    header = await reader.readexactly(4)
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    body = await reader.readexactly(length)
    return json.loads(body.decode())


async def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ---------------------------------------------------------------------------
# Worker bodies (module-level: picklable for the process pool; the thread
# backend runs the same functions in-process).  Each worker process keeps
# a small LRU of rehydrated sessions so steady traffic against a handful
# of encodings never re-reads a snapshot pickle.
# ---------------------------------------------------------------------------

_WORKER_CACHE_CAP = 4
_WORKER_CACHE: "OrderedDict[str, WorkerSession]" = OrderedDict()
_WORKER_LOCK = threading.Lock()


def _worker_session(
    cache_dir: str, encoding_hash: str, snapshot: SessionSnapshot | None = None
) -> WorkerSession:
    with _WORKER_LOCK:
        session = _WORKER_CACHE.get(encoding_hash)
        if session is not None:
            _WORKER_CACHE.move_to_end(encoding_hash)
            return session
    if snapshot is None:
        snapshot = SnapshotStore(cache_dir).load(encoding_hash)
        if snapshot is None:
            raise KeyError(f"no warm snapshot for {encoding_hash}")
    session = WorkerSession(snapshot)
    with _WORKER_LOCK:
        _WORKER_CACHE[encoding_hash] = session
        while len(_WORKER_CACHE) > _WORKER_CACHE_CAP:
            _WORKER_CACHE.popitem(last=False)
    return session


def _resolved_sizes(snapshot: SessionSnapshot, overrides):
    """A request's ``sizes`` override → the full pin list (or ``None``).

    ``resize_queues`` semantics: a partial map merges over the
    snapshot's default sizes, so the worker pins *every* queue — a
    partial pin list would leave capacities floating and change the
    verdict.
    """
    if overrides is None:
        return None
    merged = resolve_resize(
        dict(snapshot.default_sizes), overrides, snapshot.parametric
    )
    return tuple(sorted(merged.items()))


def _translate(session: WorkerSession, payload: tuple) -> dict:
    """Worker payload tuple → plain response dict (no snapshot needed
    on the serving side: uid→name mapping happens here, where the
    snapshot lives)."""
    kind, a, b, stats, elapsed = payload[:5]
    out: dict[str, Any] = {
        "solve_seconds": round(elapsed, 6),
        "conflicts": int(stats.get("conflicts", 0) or 0),
    }
    if kind == "unknown":
        out["verdict"] = "timeout"
    elif kind == "unsat":
        out["verdict"] = "deadlock-free"
        out["unsat_core"] = sorted(a or ())
    else:
        out["verdict"] = "deadlock-candidate"
        if a is not None:
            names = dict(session.snapshot.solver.int_vars)
            out["witness"] = {
                "ints": {
                    names[uid]: value
                    for uid, value in sorted(
                        a.items(), key=lambda item: names[item[0]]
                    )
                    if value
                },
                "blocked": sorted(name for name, value in b.items() if value),
            }
    return out


def _check_job(
    cache_dir: str,
    encoding_hash: str,
    target: int | None,
    overrides,
    want_witness: bool,
    wire_deadline,
) -> dict:
    """Answer one guard query on a tier-2-rehydrated worker session."""
    maybe_inject("service-worker")
    session = _worker_session(cache_dir, encoding_hash)
    sizes = _resolved_sizes(session.snapshot, overrides)
    job = ("check", target, sizes, want_witness)
    if wire_deadline is not None:
        job = (*job, tuple(wire_deadline))
    return _translate(session, session.run(job))


def _build_job(
    cache_dir: str, builder: str, kwargs: tuple, job_request
) -> tuple[str, dict, dict | None]:
    """Cold miss: build the network, snapshot it into the warm store,
    and (optionally) answer the triggering query in the same trip."""
    maybe_inject("service-builder")
    spec = ScenarioSpec(builder=builder, kwargs=kwargs)
    session_spec = spec.session_spec(parametric_queues=True)
    session_spec.generate_invariants()
    snapshot = session_spec.snapshot()
    meta = {
        "builder": spec.builder,
        "label": spec.display_label,
        "cases": [
            {
                "label": case.label,
                "kind": case.kind,
                "subject": case.subject,
                "color": color_label(case.color),
                "guard": case.guard.name,
            }
            for case in session_spec.encoding.cases
        ],
        "default_sizes": dict(snapshot.default_sizes),
        "invariants": snapshot.invariant_count,
    }
    encoding_hash = SnapshotStore(cache_dir).store(snapshot, meta)
    answer = None
    if job_request is not None:
        target, overrides, want_witness, wire_deadline = job_request
        session = _worker_session(cache_dir, encoding_hash, snapshot)
        sizes = _resolved_sizes(snapshot, overrides)
        job = ("check", target, sizes, want_witness)
        if wire_deadline is not None:
            job = (*job, tuple(wire_deadline))
        answer = _translate(session, session.run(job))
    return encoding_hash, meta, answer


def _scenario_job(spec_kwargs: dict, wire_deadline) -> dict:
    """Worker body for the ``size`` op: a full minimal-size search."""
    maybe_inject("service-worker")
    spec = ScenarioSpec(**spec_kwargs)
    deadline = Deadline.from_wire(
        tuple(wire_deadline) if wire_deadline is not None else None
    )
    result = run_scenario(
        spec, query_jobs=1, backend="process", portfolio=False,
        deadline=deadline,
    )
    return {
        "minimal_size": result.minimal_size,
        "probes": {
            str(size): free for size, free in sorted(result.probes.items())
        },
        "timed_out": bool(deadline.expired()) if deadline else False,
        "failure": result.failure,
    }


# ---------------------------------------------------------------------------
# Hot tier entries
# ---------------------------------------------------------------------------


class ServiceSession:
    """One hot-tier entry: a live worker session inside the server.

    Honours the session ``close()`` contract (idempotent; drops the
    solver so eviction reclaims the CNF arena immediately).  All calls
    are serialised by the service's per-spec lock — concurrent queries
    against one spec batch through this one session's guard API.
    """

    def __init__(self, encoding_hash: str, snapshot: SessionSnapshot):
        self.encoding_hash = encoding_hash
        self.worker: WorkerSession | None = WorkerSession(snapshot)
        self.closed = False

    def run(
        self, target, overrides, want_witness: bool, wire_deadline
    ) -> dict:
        if self.closed or self.worker is None:
            raise RuntimeError("hot session is closed")
        sizes = _resolved_sizes(self.worker.snapshot, overrides)
        job = ("check", target, sizes, want_witness)
        if wire_deadline is not None:
            job = (*job, tuple(wire_deadline))
        return _translate(self.worker, self.worker.run(job))

    def close(self) -> None:
        self.worker = None
        self.closed = True


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class ServiceError(Exception):
    """A request-level failure reported to the client (never fatal)."""


class VerificationService:
    """Long-lived verification server over the three cache tiers.

    Parameters
    ----------
    cache_dir:
        Root of the on-disk tiers (warm snapshots + cold verdicts).
        Required — the content-addressed stores *are* the service.
    hot_capacity:
        Live sessions kept in-server under LRU eviction.
    jobs:
        Worker processes for cache misses (default
        :func:`~repro.core.parallel.default_jobs`).
    max_pending:
        Solve-requiring requests allowed to wait; beyond it requests
        are rejected with ``"overloaded"`` (cache hits always served).
    backend:
        ``"process"`` (default) or ``"thread"`` — the latter runs
        worker bodies on threads, for tests and 1-CPU hosts.
    """

    def __init__(
        self,
        cache_dir,
        hot_capacity: int = 8,
        jobs: int | None = None,
        max_pending: int = 64,
        backend: str = "process",
        retry_policy: RetryPolicy | None = None,
    ):
        if backend not in ("process", "thread"):
            raise ValueError(f"unknown backend {backend!r}")
        self.cache_dir = str(cache_dir)
        self.jobs = jobs if jobs is not None else default_jobs()
        self.backend = backend
        self.max_pending = max_pending
        self.retry_policy = retry_policy or RetryPolicy()
        self.verdicts = VerdictStore(self.cache_dir)
        self.snapshots = SnapshotStore(self.cache_dir)
        self.hot = LruSessionCache(hot_capacity)
        self._pool: Executor | None = None
        # Hot-tier solves and snapshot rehydration run here, off the
        # event loop; sized with the pool so hot traffic scales too.
        self._threads = ThreadPoolExecutor(
            max_workers=max(2, self.jobs),
            thread_name_prefix="svc-hot",
        )
        self._ehash_by_spec: dict[str, str] = {}
        self._spec_locks: dict[str, asyncio.Lock] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending = 0
        self._solve_sem = asyncio.Semaphore(max(1, self.jobs))
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._shutdown = asyncio.Event()
        self._closed = False
        self.counters = {
            "queries": 0,
            "hits": {"cold": 0, "hot": 0, "warm": 0, "build": 0},
            "coalesced": 0,
            "rejected": 0,
            "pool_recoveries": 0,
            "errors": 0,
        }

    # -- executors -------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="svc-worker"
                )
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=_process_context()
                )
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    async def _in_pool(self, fn, *args):
        """Dispatch a worker body, rebuilding a broken pool under the
        retry policy (same quarantine convention as the session layer)."""
        loop = asyncio.get_running_loop()
        for attempt in range(self.retry_policy.max_attempts):
            pool = self._ensure_pool()
            try:
                return await loop.run_in_executor(pool, partial(fn, *args))
            except BrokenExecutor:
                self._discard_pool()
                self.counters["pool_recoveries"] += 1
                if attempt + 1 >= self.retry_policy.max_attempts:
                    raise
                await asyncio.sleep(self.retry_policy.delay(attempt))
        raise RuntimeError("unreachable")

    async def _in_threads(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._threads, partial(fn, *args))

    # -- request plumbing ------------------------------------------------
    @staticmethod
    def _spec_of(request: dict) -> ScenarioSpec:
        spec = request.get("spec")
        if not isinstance(spec, dict) or "builder" not in spec:
            raise ServiceError(
                "request needs spec: {builder: name, kwargs: {...}}"
            )
        kwargs = spec.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise ServiceError("spec.kwargs must be an object")
        try:
            return ScenarioSpec(
                builder=str(spec["builder"]), kwargs=tuple(kwargs.items())
            )
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad spec: {error}") from error

    @staticmethod
    def _overrides_of(params: dict):
        sizes = params.get("sizes")
        if sizes is None:
            return None
        if isinstance(sizes, bool):
            raise ServiceError("sizes must be an int or {queue: int}")
        if isinstance(sizes, int):
            return sizes
        if isinstance(sizes, dict):
            try:
                return {str(k): int(v) for k, v in sorted(sizes.items())}
            except (TypeError, ValueError) as error:
                raise ServiceError(f"bad sizes: {error}") from error
        raise ServiceError("sizes must be an int or {queue: int}")

    @staticmethod
    def _deadline_of(request: dict) -> Deadline | None:
        seconds = request.get("deadline_s")
        if seconds is None:
            return None
        try:
            return Deadline(seconds=float(seconds))
        except (TypeError, ValueError) as error:
            raise ServiceError(f"bad deadline_s: {error}") from error

    @staticmethod
    def _resolve_case(params: dict, meta: dict) -> tuple[int, str]:
        """The ``verify_channel`` target: an index, a case label, or a
        ``{queue: name, color: label}`` pair → (case index, label)."""
        cases = meta["cases"]
        case = params.get("case")
        if case is None and "queue" in params:
            case = {
                "queue": params["queue"],
                "color": params.get("color"),
            }
        if isinstance(case, bool):
            raise ServiceError("case must be an index, label or object")
        if isinstance(case, int):
            if not 0 <= case < len(cases):
                raise ServiceError(
                    f"case index {case} out of range ({len(cases)} cases)"
                )
            return case, cases[case]["label"]
        if isinstance(case, str):
            for index, entry in enumerate(cases):
                if entry["label"] == case:
                    return index, entry["label"]
            raise ServiceError(f"no deadlock case labelled {case!r}")
        if isinstance(case, dict):
            subject = case.get("queue") or case.get("subject")
            color = case.get("color")
            for index, entry in enumerate(cases):
                if entry["subject"] == subject and (
                    color is None or entry["color"] == str(color)
                ):
                    return index, entry["label"]
            raise ServiceError(
                f"no deadlock case for subject {subject!r} color {color!r}"
            )
        raise ServiceError("verify_channel needs a case (index/label/object)")

    @staticmethod
    def _query_key(op: str, target, overrides) -> str:
        """Canonical cold-store key of one query against one encoding."""
        want_witness = op == "witness"
        sizes = (
            sorted(overrides.items())
            if isinstance(overrides, dict)
            else overrides
        )
        return canonical_json(
            {"target": target, "sizes": sizes, "witness": want_witness}
        )

    def _spec_lock(self, spec_sha: str) -> asyncio.Lock:
        lock = self._spec_locks.get(spec_sha)
        if lock is None:
            lock = self._spec_locks[spec_sha] = asyncio.Lock()
        return lock

    # -- tiers -----------------------------------------------------------
    def _lookup_ehash(self, spec_key: str) -> str | None:
        ehash = self._ehash_by_spec.get(spec_key)
        if ehash is None:
            ehash = self.snapshots.lookup(spec_key)
            if ehash is not None:
                self._ehash_by_spec[spec_key] = ehash
        return ehash

    async def _promote(self, ehash: str) -> ServiceSession | None:
        """Load a warm snapshot into the hot tier (LRU may evict)."""
        entry = self.hot.get(ehash)
        if entry is not None:
            return entry
        snapshot = await self._in_threads(self.snapshots.load, ehash)
        if snapshot is None:
            return None
        entry = ServiceSession(ehash, snapshot)
        self.hot.put(ehash, entry)
        return entry

    async def _ensure_built(
        self, spec: ScenarioSpec, spec_key: str, job_request=None
    ) -> tuple[str, dict, dict | None]:
        """The build tier: one pool trip builds, snapshots, persists and
        (optionally) answers the triggering query."""
        ehash, meta, answer = await self._in_pool(
            _build_job, self.cache_dir, spec.builder, spec.kwargs, job_request
        )
        self.snapshots.bind(spec_key, ehash)
        self._ehash_by_spec[spec_key] = ehash
        return ehash, meta, answer

    # -- op handlers -----------------------------------------------------
    async def handle_request(self, request: dict) -> dict:
        """One request → one response dict (the protocol-free core)."""
        request_id = request.get("id")
        op = request.get("op")
        started = asyncio.get_running_loop().time()
        try:
            if op == "ping":
                response = {"pong": True}
            elif op == "stats":
                response = {"stats": self.stats()}
            elif op == "shutdown":
                self._shutdown.set()
                response = {"stopping": True}
            elif op == "cases":
                response = await self._handle_cases(request)
            elif op == "size":
                response = await self._handle_size(request)
            elif op in _QUERY_OPS:
                response = await self._handle_query(request, op)
            else:
                raise ServiceError(f"unknown op {op!r}")
            response["ok"] = True
        except ServiceError as error:
            self.counters["errors"] += 1
            response = {"ok": False, "error": str(error)}
        except Exception as error:  # never kill the server on one request
            self.counters["errors"] += 1
            response = {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }
        response["id"] = request_id
        elapsed = asyncio.get_running_loop().time() - started
        response["elapsed_ms"] = round(elapsed * 1000.0, 3)
        return response

    async def _handle_cases(self, request: dict) -> dict:
        if not isinstance(request.get("spec"), dict):
            # Discovery: a spec-less ``cases`` request lists what can be
            # built — every registered builder with its protocol family
            # and keyword parameters (the shape of a valid spec).
            return {"builders": builder_catalog()}
        spec = self._spec_of(request)
        spec_key = spec.key()
        async with self._spec_lock(stable_hash(spec_key)):
            ehash = self._lookup_ehash(spec_key)
            if ehash is None:
                ehash, meta, _ = await self._ensure_built(spec, spec_key)
            else:
                meta = self.snapshots.meta(ehash) or {}
        return {
            "encoding_hash": ehash,
            "label": meta.get("label"),
            "cases": meta.get("cases", []),
            "default_sizes": meta.get("default_sizes", {}),
            "invariants": meta.get("invariants", 0),
        }

    async def _handle_size(self, request: dict) -> dict:
        base = self._spec_of(request)
        params = request.get("params") or {}
        deadline = self._deadline_of(request)
        spec_kwargs = {
            "builder": base.builder,
            "kwargs": base.kwargs,
            "mode": "search",
            "low": int(params.get("low", 1)),
            "max_size": int(params.get("max_size", 64)),
            "size_param": str(params.get("size_param", "queue_size")),
        }
        spec = ScenarioSpec(**spec_kwargs)
        bucket = "scenario-" + stable_hash(spec.key())[:32]
        qkey = canonical_json({"op": "size"})
        cached = self.verdicts.get(bucket, qkey)
        if cached is not None:
            self.counters["queries"] += 1
            self.counters["hits"]["cold"] += 1
            return {**cached, "cache": "cold"}
        result, _ = await self._single_flight(
            bucket,
            partial(self._solve_size, spec_kwargs, bucket, qkey, deadline),
        )
        return result

    async def _solve_size(
        self, spec_kwargs: dict, bucket: str, qkey: str, deadline
    ) -> dict:
        self.counters["queries"] += 1
        await self._admit()
        try:
            async with self._solve_sem:
                wire = deadline.to_wire() if deadline is not None else None
                answer = await self._in_pool(_scenario_job, spec_kwargs, wire)
        finally:
            self._pending -= 1
        self.counters["hits"]["build"] += 1
        response = {
            "minimal_size": answer["minimal_size"],
            "probes": answer["probes"],
        }
        if answer.get("failure"):
            raise ServiceError(f"size search failed: {answer['failure']}")
        if not answer.get("timed_out"):
            self.verdicts.put(bucket, qkey, response)
        else:
            response["timed_out"] = True
        return {**response, "cache": "build"}

    async def _handle_query(self, request: dict, op: str) -> dict:
        spec = self._spec_of(request)
        spec_key = spec.key()
        spec_sha = stable_hash(spec_key)
        params = request.get("params") or {}
        overrides = self._overrides_of(params)
        deadline = self._deadline_of(request)
        want_witness = op == "witness"

        # Cold store first: if the encoding is known and this exact
        # query is archived, answer without touching any solver.
        ehash = self._lookup_ehash(spec_key)
        target: int | None = None
        case_label: str | None = None
        if ehash is not None:
            meta = self.snapshots.meta(ehash) or {}
            if op == "verify_channel":
                target, case_label = self._resolve_case(params, meta)
            qkey = self._query_key(op, target, overrides)
            cached = self.verdicts.get(ehash, qkey)
            if cached is not None:
                self.counters["queries"] += 1
                self.counters["hits"]["cold"] += 1
                return {**cached, "cache": "cold"}

        flight_key = canonical_json(
            {"spec": spec_sha, "op": op, "params": {
                "case": params.get("case"),
                "queue": params.get("queue"),
                "color": params.get("color"),
                "sizes": overrides if not isinstance(overrides, dict)
                else sorted(overrides.items()),
            }}
        )
        result, _ = await self._single_flight(
            flight_key,
            partial(
                self._solve_query,
                spec, spec_key, spec_sha, op, params, overrides,
                deadline, want_witness,
            ),
        )
        return result

    async def _single_flight(self, key: str, thunk):
        """Coalesce concurrent identical requests onto one in-flight
        solve; every waiter gets (a shallow copy of) the same response."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.counters["coalesced"] += 1
            self.counters["queries"] += 1
            result = await asyncio.shield(existing)
            return dict(result), True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await thunk()
            future.set_result(result)
            return dict(result), False
        except BaseException as error:
            future.set_exception(error)
            # Consume the exception so un-awaited futures don't warn.
            future.exception()
            raise
        finally:
            del self._inflight[key]

    async def _admit(self) -> None:
        """Bounded-queue backpressure for solve-requiring requests."""
        if self._pending >= self.max_pending:
            self.counters["rejected"] += 1
            raise ServiceError("overloaded")
        self._pending += 1

    async def _solve_query(
        self, spec, spec_key, spec_sha, op, params, overrides,
        deadline, want_witness,
    ) -> dict:
        self.counters["queries"] += 1
        await self._admit()
        try:
            async with self._solve_sem:
                async with self._spec_lock(spec_sha):
                    return await self._solve_query_locked(
                        spec, spec_key, op, params, overrides,
                        deadline, want_witness,
                    )
        finally:
            self._pending -= 1

    async def _solve_query_locked(
        self, spec, spec_key, op, params, overrides, deadline, want_witness
    ) -> dict:
        wire = deadline.to_wire() if deadline is not None else None
        ehash = self._lookup_ehash(spec_key)
        if ehash is None:
            # Build tier: the pool builds, persists and answers in one
            # trip.  verify/witness target the master guard; a channel
            # query needs the case table first, so it builds bare and
            # falls through to the hot path below.
            job_request = None
            if op != "verify_channel":
                job_request = (None, overrides, want_witness, wire)
            ehash, meta, answer = await self._ensure_built(
                spec, spec_key, job_request
            )
            if answer is not None:
                self.counters["hits"]["build"] += 1
                qkey = self._query_key(op, None, overrides)
                return self._finish(ehash, qkey, None, answer, "build")
        meta = self.snapshots.meta(ehash) or {}
        target, case_label = None, None
        if op == "verify_channel":
            target, case_label = self._resolve_case(params, meta)
        qkey = self._query_key(op, target, overrides)
        cached = self.verdicts.get(ehash, qkey)
        if cached is not None:
            self.counters["hits"]["cold"] += 1
            return {**cached, "cache": "cold"}

        entry = self.hot.get(ehash)
        if entry is not None and not entry.closed:
            answer = await self._in_threads(
                entry.run, target, overrides, want_witness, wire
            )
            self.counters["hits"]["hot"] += 1
            return self._finish(ehash, qkey, case_label, answer, "hot")

        # Warm tier: solve on a pool worker rehydrated from the pickled
        # snapshot, then promote this encoding into the hot tier so the
        # next distinct query solves in-server.
        answer = await self._in_pool(
            _check_job, self.cache_dir, ehash, target, overrides,
            want_witness, wire,
        )
        self.counters["hits"]["warm"] += 1
        await self._promote(ehash)
        return self._finish(ehash, qkey, case_label, answer, "warm")

    def _finish(
        self, ehash: str, qkey: str, case_label, answer: dict, tier: str
    ) -> dict:
        payload = dict(answer)
        if case_label is not None:
            payload["case"] = case_label
        if payload["verdict"] != "timeout":
            # TIMEOUT is a property of the request's budget, not of the
            # encoding — never archived.
            self.verdicts.put(ehash, qkey, payload)
        return {**payload, "cache": tier}

    # -- stats / lifecycle ----------------------------------------------
    def stats(self) -> dict:
        hits = dict(self.counters["hits"])
        return {
            "builders": {
                name: meta["family"]
                for name, meta in builder_catalog().items()
            },
            "queries": self.counters["queries"],
            "hits": hits,
            "coalesced": self.counters["coalesced"],
            "rejected": self.counters["rejected"],
            "errors": self.counters["errors"],
            "pool_recoveries": self.counters["pool_recoveries"],
            "evictions": self.hot.evictions,
            "hot_live": len(self.hot),
            "inflight": len(self._inflight),
            "pending": self._pending,
            "store": {
                "verdict_hits": self.verdicts.hits,
                "verdict_misses": self.verdicts.misses,
                "verdicts": len(self.verdicts),
            },
        }

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        self._connections.add(writer)

        async def _serve_one(request: dict) -> None:
            response = await self.handle_request(request)
            async with write_lock:
                try:
                    await write_frame(writer, response)
                except (ConnectionError, RuntimeError):
                    pass

        try:
            while not self._shutdown.is_set():
                try:
                    request = await read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ValueError,
                ):
                    break
                task = asyncio.create_task(_serve_one(request))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def serve(self, host: str = "127.0.0.1", port: int = 0):
        """Start listening; returns the asyncio server (``self.port``
        carries the bound port, for ``port=0`` ephemeral binds)."""
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        return self._server

    @property
    def port(self) -> int:
        assert self._server is not None, "serve() first"
        return self._server.sockets[0].getsockname()[1]

    async def run_until_shutdown(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        await self.serve(host, port)
        try:
            await self._shutdown.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop serving and release every held resource: hot sessions
        (via their ``close()`` contract), the worker pool, the hot
        thread executor and any scenario executors — a clean shutdown
        leaks no child processes."""
        if self._closed:
            return
        self._closed = True
        self._shutdown.set()
        # Unblock connection handlers parked on a read before waiting on
        # the server: 3.12's wait_closed() waits for every handler.
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.hot.close_all()
        pool, self._pool = self._pool, None
        if pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, partial(pool.shutdown, wait=True)
            )
        self._threads.shutdown(wait=True)
        shutdown_scenario_executors()


# ---------------------------------------------------------------------------
# Clients
# ---------------------------------------------------------------------------


class ServiceClient:
    """Blocking client (tests, scripts): one outstanding request."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._seq = 0

    def request(
        self,
        op: str,
        spec: dict | None = None,
        params: dict | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        self._seq += 1
        payload: dict[str, Any] = {"id": self._seq, "op": op}
        if spec is not None:
            payload["spec"] = spec
        if params is not None:
            payload["params"] = params
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        self._sock.sendall(encode_frame(payload))
        header = self._file.read(4)
        if len(header) < 4:
            raise ConnectionError("server closed the connection")
        (length,) = struct.unpack(">I", header)
        body = self._file.read(length)
        if len(body) < length:
            raise ConnectionError("truncated frame")
        return json.loads(body.decode())

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio client: one outstanding request per connection (open
    several connections for concurrency — the load generator does)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._seq = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        op: str,
        spec: dict | None = None,
        params: dict | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        async with self._lock:
            self._seq += 1
            payload: dict[str, Any] = {"id": self._seq, "op": op}
            if spec is not None:
                payload["spec"] = spec
            if params is not None:
                payload["params"] = params
            if deadline_s is not None:
                payload["deadline_s"] = deadline_s
            await write_frame(self._writer, payload)
            return await read_frame(self._reader)

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="ADVOCAT verification service (length-prefixed JSON/TCP)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7333)
    parser.add_argument(
        "--cache-dir", required=True, help="root of the warm/cold tiers"
    )
    parser.add_argument("--hot-capacity", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--backend", choices=("process", "thread"), default="process"
    )
    args = parser.parse_args(argv)

    async def _run() -> None:
        service = VerificationService(
            cache_dir=args.cache_dir,
            hot_capacity=args.hot_capacity,
            jobs=args.jobs,
            backend=args.backend,
        )
        await service.serve(args.host, args.port)
        print(f"serving on {args.host}:{service.port}", flush=True)
        try:
            await service._shutdown.wait()
        finally:
            await service.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
