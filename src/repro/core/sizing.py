"""Minimal queue-size search (the Figure 4 experiment).

Deadlock freedom of the case-study networks is monotone in queue size: a
deadlock that exists with larger queues can be replayed with the same
packet placement when queues shrink only if it still fits, while enlarging
queues only adds slack (the paper's Figure 3 argument: the third slot can
not be occupied and therefore breaks the cycle).  The search exploits this:
exponential climb until a deadlock-free size is found, then binary search
for the boundary.

The sweep runs on one :class:`~repro.core.engine.VerificationSession` with
*parametric* queue capacities: the block/idle encoding, the invariants and
every clause the solver learns are shared across all probed sizes — only
the ``cap[q] == size`` assumptions change per probe.  Set
``incremental=False`` to fall back to one fresh :func:`verify` per size
(the from-scratch baseline measured by ``benchmarks/bench_incremental.py``).
The incremental path assumes ``build(size)`` changes only queue capacities,
never network structure — true of every sweep in this repository (and of
the paper's Figure 4); pass ``incremental=False`` for exotic builders.

``minimal_queue_size`` is deliberately defensive: monotonicity is an
assumption about the *model family*, so the result records every probed
size and its verdict, and ``exhaustive=True`` re-checks every size below
the reported minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..xmas import Network
from .engine import VerificationSession
from .proof import verify
from .result import VerificationResult

__all__ = ["SizingResult", "minimal_queue_size"]


@dataclass
class SizingResult:
    """Outcome of a queue-size search."""

    minimal_size: int
    probes: dict[int, bool] = field(default_factory=dict)  # size -> deadlock-free?
    results: dict[int, VerificationResult] = field(default_factory=dict)

    def pretty(self) -> str:
        probed = ", ".join(
            f"{size}:{'free' if free else 'deadlock'}"
            for size, free in sorted(self.probes.items())
        )
        return f"minimal deadlock-free queue size = {self.minimal_size} ({probed})"


def minimal_queue_size(
    build: Callable[[int], Network],
    low: int = 1,
    max_size: int = 512,
    exhaustive: bool = False,
    incremental: bool = True,
    **verify_kwargs,
) -> SizingResult:
    """Smallest uniform queue size for which ``build(size)`` verifies.

    Parameters
    ----------
    build:
        Constructs the network with every queue sized to the argument.
    low:
        Smallest size to consider.
    max_size:
        Upper limit of the exponential climb; exceeded ⇒ ``RuntimeError``.
    exhaustive:
        Verify every size in ``[low, found)`` is deadlocked rather than
        trusting monotonicity.
    incremental:
        Probe all sizes through one shared :class:`VerificationSession`
        (requires ``build`` to vary only queue capacities).  ``False``
        re-verifies each size from scratch.
    verify_kwargs:
        Forwarded to :func:`repro.core.proof.verify` (``use_invariants``,
        ``rotating_precision``, ``max_splits``).
    """
    probes: dict[int, bool] = {}
    results: dict[int, VerificationResult] = {}

    if incremental:
        use_invariants = verify_kwargs.pop("use_invariants", True)
        base_network = build(low)
        base_stats = base_network.stats()
        base_queues = {q.name for q in base_network.queues()}
        session = VerificationSession(
            base_network, parametric_queues=True, **verify_kwargs
        )
        if use_invariants:
            session.add_invariants()

        def probe(size: int) -> bool:
            if size not in probes:
                # Resize to what build(size) *actually* produces: builders
                # may pin some queues (non-uniform capacities).  Guard the
                # capacity-only assumption: primitive/channel counts or the
                # queue-name set changing means the builder varies structure
                # (same-count rewires remain the caller's responsibility).
                built = build(size)
                if (
                    built.stats() != base_stats
                    or {q.name for q in built.queues()} != base_queues
                ):
                    raise ValueError(
                        "build(size) changed network structure, not just "
                        "queue capacities; rerun with incremental=False"
                    )
                session.resize_queues({q.name: q.size for q in built.queues()})
                result = session.verify()
                probes[size] = result.deadlock_free
                results[size] = result
            return probes[size]

    else:

        def probe(size: int) -> bool:
            if size not in probes:
                result = verify(build(size), **verify_kwargs)
                probes[size] = result.deadlock_free
                results[size] = result
            return probes[size]

    # Exponential climb to the first deadlock-free size.
    size = low
    while not probe(size):
        size *= 2
        if size > max_size:
            raise RuntimeError(
                f"no deadlock-free size found up to {max_size}; "
                "the deadlock may be size-independent"
            )
    # Binary search in (last deadlocked, first free].
    high = size
    low_bound = max(low, size // 2)
    while low_bound < high:
        middle = (low_bound + high) // 2
        if probe(middle):
            high = middle
        else:
            low_bound = middle + 1
    minimal = high
    if exhaustive:
        for candidate in range(low, minimal):
            if probe(candidate):
                raise AssertionError(
                    f"monotonicity violated: size {candidate} verifies but "
                    f"binary search reported {minimal}"
                )
    return SizingResult(minimal_size=minimal, probes=probes, results=results)
