"""Minimal queue-size search (the Figure 4 experiment).

Deadlock freedom of the case-study networks is monotone in queue size: a
deadlock that exists with larger queues can be replayed with the same
packet placement when queues shrink only if it still fits, while enlarging
queues only adds slack (the paper's Figure 3 argument: the third slot can
not be occupied and therefore breaks the cycle).  The search exploits this:
exponential climb until a deadlock-free size is found, then binary search
for the boundary.

The sweep runs on one :class:`~repro.core.engine.VerificationSession` with
*parametric* queue capacities: the block/idle encoding, the invariants and
every clause the solver learns are shared across all probed sizes — only
the ``cap[q] == size`` assumptions change per probe.  Set
``incremental=False`` to fall back to one fresh :func:`verify` per size
(the from-scratch baseline measured by ``benchmarks/bench_incremental.py``).
The incremental path assumes ``build(size)`` changes only queue capacities,
never network structure — true of every sweep in this repository (and of
the paper's Figure 4); pass ``incremental=False`` for exotic builders.

``minimal_queue_size`` is deliberately defensive: monotonicity is an
assumption about the *model family*, so the result records every probed
size and its verdict, and ``exhaustive=True`` re-checks every size below
the reported minimum.

:func:`sweep_queue_sizes` is the parallel counterpart for the *curve*
rather than the boundary: probe an explicit list of sizes (Figure 4 plots
one verdict per point) sharded across pool workers.  Each worker holds
one rehydrated parametric session and walks its shard in ascending order,
so every probe warm-starts on the clauses learned by the previous ones —
the same locality the sequential sweep exploits, multiplied by the worker
count.  Per-shard outcomes are aggregated with :meth:`SizingResult.merge`.

Both walks are additionally *phase-seeded*: after a deadlocked probe the
next probe's branching phases are initialised from the previous witness's
blocking shape (``seed_phases_from_witness`` locally, ``phase_hints`` in
the shard workers), so each capacity step starts its search at the model
the last step ended on instead of from scratch.

**Invariant modes.**  Both entry points take ``invariants=`` with four
settings.  ``"eager"`` (the default, equivalent to the old
``use_invariants=True``) conjoins the cross-layer invariants before the
first probe.  ``"none"`` never generates them — plain block/idle detection.
``"lazy"`` is *batched invariant strengthening*: probes start without
automaton-equation invariants and the set is generated and conjoined only
when a deadlock candidate survives plain block/idle (a deadlock-free
verdict without invariants stays deadlock-free with them — invariants only
strengthen — so lazy verdicts are identical to eager ones while networks
that verify outright never pay for invariant generation).  ``"partial"``
goes further: instead of conjoining the *full* set on the first surviving
candidate, it escalates CEGAR-style through the statically ranked rows
(:class:`~repro.core.invariants.InvariantSelector` — only rows the
candidate's model violates, witness-overlap first, geometrically growing
``rank_budget`` batches), terminating at the full set, so verdicts stay
byte-identical to eager mode while the big meshes typically encode a
small fraction of the rows.  The result records whether invariants ended
up in force (``invariants_used``), how many probes forced an escalation
step (``lazy_escalations``), how many rows were encoded
(``invariants_generated``) and how deep into the ranking the refinement
reached (``rank_histogram``), so experiment grids can report the
selection ablation per scenario.

**Timing split.**  Results separate ``build_seconds`` (network
construction, encoding, invariant generation) from ``query_seconds``
(solver time across probes) so experiment aggregation can attribute
wall-clock to the right phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Sequence

from ..xmas import Network
from .engine import VerificationSession, escalate_partial
from .proof import verify
from .resilience import Deadline
from .result import VerificationResult

__all__ = [
    "SizingResult",
    "minimal_queue_size",
    "sweep_queue_sizes",
    "resolve_invariants_mode",
]

INVARIANT_MODES = ("eager", "lazy", "partial", "none")


class _DeadlineExpired(Exception):
    """Internal control flow: a probe answered TIMEOUT; abort the walk."""


def resolve_invariants_mode(
    invariants: str | None, use_invariants: bool = True
) -> str:
    """Normalise the ``invariants=`` / legacy ``use_invariants=`` pair.

    ``invariants`` wins when given; otherwise the boolean maps onto
    ``"eager"`` / ``"none"``.
    """
    if invariants is None:
        return "eager" if use_invariants else "none"
    if invariants not in INVARIANT_MODES:
        raise ValueError(
            f"invariants must be one of {INVARIANT_MODES}, got {invariants!r}"
        )
    return invariants


@dataclass
class SizingResult:
    """Outcome of a queue-size search or sweep.

    ``minimal_size`` is ``None`` when no probed size verified — possible
    for shard-level partial results (see :meth:`merge`) and for sweeps
    over a fixed size list that never reaches the boundary.

    ``build_seconds`` / ``query_seconds`` split the wall-clock between the
    build phase (network construction, encoding, invariant generation) and
    the solver queries; ``invariants_used`` and ``lazy_escalations`` record
    the invariant-mode ablation (see the module docstring).
    ``lazy_escalations`` counts escalation steps — probes re-answered
    under a strengthened encoding — *under this schedule*: a sequential
    lazy walk strengthens at the first surviving candidate (at most 1),
    the batched lazy pool pass re-answers every surviving size, and a
    partial walk counts every CEGAR refinement step — verdicts are
    identical in every case.  ``invariants_generated`` counts the
    invariant rows actually encoded (eager/escalated lazy: the full set;
    partial: the selected subset; schedule-dependent, summed across
    shards by :meth:`merge`) and ``rank_histogram`` buckets those rows by
    static-rank tier (partial mode only).
    """

    minimal_size: int | None
    probes: dict[int, bool] = field(default_factory=dict)  # size -> deadlock-free?
    results: dict[int, VerificationResult] = field(default_factory=dict)
    build_seconds: float = 0.0
    query_seconds: float = 0.0
    invariants_mode: str = "eager"
    invariants_used: bool = True
    lazy_escalations: int = 0
    invariants_generated: int = 0
    rank_histogram: dict[int, int] = field(default_factory=dict)
    # Portfolio racing (strategy name -> races won); empty unless the
    # search ran through a PortfolioSession.  ``portfolio_races`` counts
    # the races behind those wins, so win *rates* survive aggregation.
    strategy_wins: dict[str, int] = field(default_factory=dict)
    portfolio_races: int = 0
    # True when a run budget expired before the search/sweep completed:
    # ``probes`` then holds only the sizes decided in budget (TIMEOUT
    # probes appear in ``results`` but never in ``probes``), and a
    # search's ``minimal_size`` is ``None`` (unconfirmed).
    timed_out: bool = False

    def pretty(self) -> str:
        probed = ", ".join(
            f"{size}:{'free' if free else 'deadlock'}"
            for size, free in sorted(self.probes.items())
        )
        if self.minimal_size is None:
            return f"no deadlock-free queue size probed ({probed})"
        return f"minimal deadlock-free queue size = {self.minimal_size} ({probed})"

    @classmethod
    def merge(cls, parts: Iterable["SizingResult"]) -> "SizingResult":
        """Aggregate shard-level results into one.

        Probe maps are unioned (a size probed by two shards must agree —
        verdicts are semantically determined) and the minimal size is
        recomputed from the union, so partial shards with
        ``minimal_size=None`` merge cleanly.  Timing splits are summed;
        the invariant-mode ablation fields aggregate conservatively
        (``invariants_used`` if any part used them).
        """
        probes: dict[int, bool] = {}
        results: dict[int, VerificationResult] = {}
        build_s = query_s = 0.0
        mode: str | None = None
        used = False
        escalations = 0
        generated = 0
        histogram: dict[int, int] = {}
        wins: dict[str, int] = {}
        races = 0
        timed_out = False
        for part in parts:
            for size, free in part.probes.items():
                if size in probes and probes[size] != free:
                    raise ValueError(
                        f"conflicting verdicts for queue size {size} "
                        "across merged SizingResults"
                    )
                probes[size] = free
            results.update(part.results)
            build_s += part.build_seconds
            query_s += part.query_seconds
            mode = part.invariants_mode if mode is None else mode
            used = used or part.invariants_used
            escalations += part.lazy_escalations
            generated += part.invariants_generated
            for tier, count in part.rank_histogram.items():
                histogram[tier] = histogram.get(tier, 0) + count
            for name, count in part.strategy_wins.items():
                wins[name] = wins.get(name, 0) + count
            races += part.portfolio_races
            timed_out = timed_out or part.timed_out
        free_sizes = [size for size, free in probes.items() if free]
        return cls(
            minimal_size=min(free_sizes) if free_sizes else None,
            probes=probes,
            results=results,
            build_seconds=build_s,
            query_seconds=query_s,
            invariants_mode=mode or "eager",
            invariants_used=used,
            lazy_escalations=escalations,
            invariants_generated=generated,
            rank_histogram=histogram,
            strategy_wins=wins,
            portfolio_races=races,
            timed_out=timed_out,
        )


class _SplitTimer:
    """Accumulates the build/query wall-clock split."""

    def __init__(self) -> None:
        self.build = 0.0
        self.query = 0.0

    def timed(self, bucket: str, thunk: Callable):
        start = perf_counter()
        try:
            return thunk()
        finally:
            elapsed = perf_counter() - start
            if bucket == "build":
                self.build += elapsed
            else:
                self.query += elapsed


def minimal_queue_size(
    build: Callable[[int], Network],
    low: int = 1,
    max_size: int = 512,
    exhaustive: bool = False,
    incremental: bool = True,
    invariants: str | None = None,
    rank_budget: int | None = None,
    rank_growth: int | None = None,
    portfolio: bool = False,
    portfolio_jobs: int | None = None,
    portfolio_lead: str | None = None,
    deadline=None,
    **verify_kwargs,
) -> SizingResult:
    """Smallest uniform queue size for which ``build(size)`` verifies.

    Parameters
    ----------
    build:
        Constructs the network with every queue sized to the argument.
    low:
        Smallest size to consider.
    max_size:
        Upper limit of the exponential climb; exceeded ⇒ ``RuntimeError``.
    exhaustive:
        Verify every size in ``[low, found)`` is deadlocked rather than
        trusting monotonicity.
    incremental:
        Probe all sizes through one shared :class:`VerificationSession`
        (requires ``build`` to vary only queue capacities).  ``False``
        re-verifies each size from scratch.
    invariants:
        ``"eager"`` / ``"lazy"`` / ``"partial"`` / ``"none"`` — see the
        module docstring.  Defaults to eager; the legacy
        ``use_invariants=False`` kwarg still maps to ``"none"``.
    rank_budget, rank_growth:
        Partial-mode escalation schedule: the first batch size and the
        per-step growth factor
        (:class:`~repro.core.invariants.InvariantSelector` defaults).
    portfolio:
        Answer every probe through one persistent
        :class:`~repro.core.portfolio.PortfolioSession` racing the
        strategy roster (eager/lazy/partial + variants) with shared
        clauses — verdicts identical to eager, wall-clock tracks the best
        strategy per probe.  ``invariants`` is ignored (the roster spans
        the modes); requires ``incremental=True``.  ``portfolio_jobs``
        caps concurrent racers (``ADVOCAT_JOBS``/CPU budget otherwise)
        and ``portfolio_lead`` names the strategy to race first (the
        experiment scheduler passes its learned per-family leader).
        The result's ``strategy_wins`` records who won each probe.
    deadline:
        Optional :class:`~repro.core.resilience.Deadline` (or bare
        seconds / a wire tuple) bounding the *whole search*.  On expiry
        the walk stops and the partial result comes back with
        ``timed_out=True`` and ``minimal_size=None`` — the sizes decided
        in budget stay in ``probes``, and the TIMEOUT probe itself is
        recorded in ``results`` only.
    verify_kwargs:
        Forwarded to :func:`repro.core.proof.verify` (``use_invariants``,
        ``rotating_precision``, ``max_splits``).
    """
    mode = resolve_invariants_mode(
        invariants, verify_kwargs.pop("use_invariants", True)
    )
    deadline = Deadline.coerce(deadline)
    probes: dict[int, bool] = {}
    results: dict[int, VerificationResult] = {}
    timer = _SplitTimer()
    state = {
        "added": mode == "eager",
        "escalations": 0,
        "generated": 0,
        "histogram": {},
        "selector": None,
        "ranked": None,
    }

    def guard_timeout(size: int, result):
        """Record a TIMEOUT probe and abort the walk (partial result)."""
        if result.timed_out:
            results[size] = result
            raise _DeadlineExpired
        return result

    def settle_partial(session: VerificationSession, result):
        """Partial-mode refinement of one surviving candidate."""
        if state["selector"] is None:

            def build_selection():
                state["ranked"] = session.spec.ranked_invariants()
                state["selector"] = session.spec.invariant_selector(
                    rank_budget=rank_budget, rank_growth=rank_growth
                )

            timer.timed("build", build_selection)
        result = timer.timed(
            "query",
            lambda: escalate_partial(
                session,
                state["selector"],
                state["ranked"],
                result,
                lambda: session.verify(deadline=deadline),
            ),
        )
        state["escalations"] = state["selector"].escalations
        state["generated"] = state["selector"].generated
        state["histogram"] = dict(state["selector"].rank_histogram)
        return result

    portfolio_session = None
    if portfolio:
        if not incremental:
            raise ValueError(
                "portfolio=True probes through one persistent racing "
                "session and requires incremental=True"
            )
        from .portfolio import PortfolioSession

        base_network = timer.timed("build", lambda: build(low))
        base_stats = base_network.stats()
        base_queues = {q.name for q in base_network.queues()}
        portfolio_session = timer.timed(
            "build",
            lambda: PortfolioSession(
                network=base_network,
                jobs=portfolio_jobs,
                lead=portfolio_lead,
                max_splits=verify_kwargs.get("max_splits", 100_000),
            ),
        )

        def probe(size: int) -> bool:
            if size not in probes:
                built = timer.timed("build", lambda: build(size))
                if (
                    built.stats() != base_stats
                    or {q.name for q in built.queues()} != base_queues
                ):
                    raise ValueError(
                        "build(size) changed network structure, not just "
                        "queue capacities; rerun with incremental=False"
                    )
                portfolio_session.resize_queues(
                    {q.name: q.size for q in built.queues()}
                )
                result = timer.timed(
                    "query",
                    lambda: portfolio_session.verify(deadline=deadline),
                )
                guard_timeout(size, result)
                probes[size] = result.deadlock_free
                results[size] = result
            return probes[size]

    elif incremental:
        base_network = timer.timed("build", lambda: build(low))
        base_stats = base_network.stats()
        base_queues = {q.name for q in base_network.queues()}
        session = timer.timed(
            "build",
            lambda: VerificationSession(
                base_network, parametric_queues=True, **verify_kwargs
            ),
        )
        if mode == "eager":
            timer.timed("build", session.add_invariants)
            state["generated"] = len(session.invariants)

        def probe(size: int) -> bool:
            if size not in probes:
                # Resize to what build(size) *actually* produces: builders
                # may pin some queues (non-uniform capacities).  Guard the
                # capacity-only assumption: primitive/channel counts or the
                # queue-name set changing means the builder varies structure
                # (same-count rewires remain the caller's responsibility).
                built = timer.timed("build", lambda: build(size))
                if (
                    built.stats() != base_stats
                    or {q.name for q in built.queues()} != base_queues
                ):
                    raise ValueError(
                        "build(size) changed network structure, not just "
                        "queue capacities; rerun with incremental=False"
                    )
                session.resize_queues({q.name: q.size for q in built.queues()})
                session.seed_phases_from_witness()
                result = timer.timed(
                    "query", lambda: session.verify(deadline=deadline)
                )
                # TIMEOUT is checked *before* any escalation: an expired
                # probe is neither free nor deadlocked, so strengthening
                # on it would both waste budget and corrupt accounting.
                guard_timeout(size, result)
                if not result.deadlock_free:
                    if mode == "partial":
                        # CEGAR-style partial strengthening: conjoin only
                        # ranked rows the candidate's model violates,
                        # escalating until the verdict settles.
                        result = guard_timeout(
                            size, settle_partial(session, result)
                        )
                    elif mode == "lazy" and not state["added"]:
                        # Lazy strengthening: the candidate survived plain
                        # block/idle, so generate + conjoin the invariants
                        # (permanent, sound) and re-ask the same probe.
                        timer.timed("build", session.add_invariants)
                        state["added"] = True
                        state["escalations"] += 1
                        state["generated"] = len(session.invariants)
                        result = timer.timed(
                            "query", lambda: session.verify(deadline=deadline)
                        )
                        guard_timeout(size, result)
                probes[size] = result.deadlock_free
                results[size] = result
            return probes[size]

    else:

        def probe(size: int) -> bool:
            if size not in probes:
                network = timer.timed("build", lambda: build(size))
                if mode == "partial":
                    # No shared session to escalate on: open a throwaway
                    # one per size and run the same refinement loop (a
                    # fresh selector each size — counters accumulate).
                    session = timer.timed(
                        "build",
                        lambda: VerificationSession(
                            network, parametric_queues=False, **verify_kwargs
                        ),
                    )
                    state["selector"] = state["ranked"] = None
                    generated_before = state["generated"]
                    escalations_before = state["escalations"]
                    histogram_before = dict(state["histogram"])
                    result = timer.timed(
                        "query", lambda: session.verify(deadline=deadline)
                    )
                    guard_timeout(size, result)
                    if not result.deadlock_free:
                        result = guard_timeout(
                            size, settle_partial(session, result)
                        )
                        state["generated"] += generated_before
                        state["escalations"] += escalations_before
                        for tier, count in histogram_before.items():
                            state["histogram"][tier] = (
                                state["histogram"].get(tier, 0) + count
                            )
                else:
                    result = timer.timed(
                        "query",
                        lambda: verify(
                            network,
                            use_invariants=state["added"],
                            deadline=deadline,
                            **verify_kwargs,
                        ),
                    )
                    guard_timeout(size, result)
                    if (
                        mode == "lazy"
                        and not result.deadlock_free
                        and not state["added"]
                    ):
                        state["added"] = True
                        state["escalations"] += 1
                        result = timer.timed(
                            "query",
                            lambda: verify(
                                network,
                                use_invariants=True,
                                deadline=deadline,
                                **verify_kwargs,
                            ),
                        )
                        guard_timeout(size, result)
                        state["generated"] = len(result.invariants)
                probes[size] = result.deadlock_free
                results[size] = result
            return probes[size]

    timed_out = False
    minimal: int | None = None
    try:
        # Exponential climb to the first deadlock-free size.
        size = low
        while not probe(size):
            size *= 2
            if size > max_size:
                raise RuntimeError(
                    f"no deadlock-free size found up to {max_size}; "
                    "the deadlock may be size-independent"
                )
        # Binary search in (last deadlocked, first free].
        high = size
        low_bound = max(low, size // 2)
        while low_bound < high:
            middle = (low_bound + high) // 2
            if probe(middle):
                high = middle
            else:
                low_bound = middle + 1
        minimal = high
        if exhaustive:
            for candidate in range(low, minimal):
                if probe(candidate):
                    raise AssertionError(
                        f"monotonicity violated: size {candidate} verifies "
                        f"but binary search reported {minimal}"
                    )
    except _DeadlineExpired:
        # The budget ran out mid-walk: return what was decided in budget
        # as a partial result instead of an answer we cannot stand behind
        # (an unconfirmed minimum from a truncated search would be worse
        # than none).
        timed_out = True
        minimal = None
    if mode == "eager" and not incremental and results:
        # Each from-scratch probe regenerated the full set; report its size.
        state["generated"] = max(
            len(result.invariants) for result in results.values()
        )
    wins: dict[str, int] = {}
    races = 0
    if portfolio_session is not None:
        wins = dict(portfolio_session.strategy_wins)
        races = portfolio_session.races
        state["added"] = True  # racers strengthen from the pending rows
        state["generated"] = len(
            portfolio_session._base_snapshot().pending_invariant_rows
        )
        portfolio_session.close()
    return SizingResult(
        minimal_size=minimal,
        probes=probes,
        results=results,
        build_seconds=timer.build,
        query_seconds=timer.query,
        invariants_mode=mode,
        invariants_used=(
            state["generated"] > 0 if mode == "partial" else state["added"]
        ),
        lazy_escalations=state["escalations"],
        invariants_generated=state["generated"],
        rank_histogram=dict(state["histogram"]),
        strategy_wins=wins,
        portfolio_races=races,
        timed_out=timed_out,
    )


def _capacity_only_assignment(
    built: Network, base_stats: dict, base_queues: set[str]
) -> dict[int, int] | dict[str, int]:
    """The per-queue sizes of ``built``, after guarding the capacity-only
    assumption shared with the incremental ``minimal_queue_size`` path."""
    if (
        built.stats() != base_stats
        or {q.name for q in built.queues()} != base_queues
    ):
        raise ValueError(
            "build(size) changed network structure, not just queue "
            "capacities; sweep the sizes with one session per size instead"
        )
    return {q.name: q.size for q in built.queues()}


def _pool_sweep(
    base_network: Network,
    size_list: Sequence[int],
    assignments: dict[int, dict[str, int]],
    jobs: int,
    backend: str,
    want_witness: bool,
    add_invariants: bool,
    timer: _SplitTimer,
    verify_kwargs: dict,
    escalation: tuple[int | None, int | None] | None = None,
    deadline=None,
) -> SizingResult:
    """One sharded pass over ``size_list`` (striped shards, warm-start
    ascending order within each shard).  With ``escalation`` the workers
    run partial-invariant probes: the pool snapshot carries the ranked
    rows and every surviving candidate escalates worker-locally."""
    from .parallel import ParallelVerificationSession

    session = timer.timed(
        "build",
        lambda: ParallelVerificationSession(
            base_network,
            jobs=jobs,
            backend=backend,
            parametric_queues=True,
            partial_invariants=escalation is not None,
            **verify_kwargs,
        ),
    )
    with session:
        if add_invariants:
            timer.timed("build", session.add_invariants)
        shard_sizes = [size_list[w::jobs] for w in range(jobs)]
        shard_sizes = [shard for shard in shard_sizes if shard]
        shard_results = timer.timed(
            "query",
            lambda: session.probe_shards(
                [[assignments[size] for size in shard] for shard in shard_sizes],
                want_witness=want_witness,
                escalation=escalation,
                deadline=deadline,
            ),
        )
        generated_full = len(session.invariants) if add_invariants else 0
    parts = []
    for shard, results_list in zip(shard_sizes, shard_results):
        part = SizingResult(minimal_size=None)
        for size, result in zip(shard, results_list):
            if result.timed_out:
                # The shard's budget expired at this probe: keep the
                # TIMEOUT result but no boolean verdict (the size stays
                # undecided) and mark the part partial.
                part.results[size] = result
                part.timed_out = True
                continue
            part.probes[size] = result.deadlock_free
            part.results[size] = result
            selection = result.stats.get("invariant_selection")
            if selection:
                part.invariants_generated += selection["invariants_generated"]
                part.lazy_escalations += selection["escalations"]
                for tier, count in selection["rank_histogram"].items():
                    part.rank_histogram[tier] = (
                        part.rank_histogram.get(tier, 0) + count
                    )
        free = [size for size, ok in part.probes.items() if ok]
        part.minimal_size = min(free) if free else None
        parts.append(part)
    merged = SizingResult.merge(parts)
    merged.invariants_used = (
        add_invariants or merged.invariants_generated > 0
    )
    if add_invariants:
        merged.invariants_generated = generated_full
    return merged


def sweep_queue_sizes(
    build: Callable[[int], Network],
    sizes: Iterable[int],
    jobs: int = 1,
    use_invariants: bool = True,
    backend: str = "process",
    want_witness: bool = True,
    invariants: str | None = None,
    rank_budget: int | None = None,
    rank_growth: int | None = None,
    portfolio: bool = False,
    portfolio_lead: str | None = None,
    deadline=None,
    **verify_kwargs,
) -> SizingResult:
    """Verdict per queue size over an explicit size list, sharded.

    The Figure-4 *curve*: every size in ``sizes`` is probed (no binary
    search, no monotonicity assumption) and the result records the full
    verdict map.  With ``jobs > 1`` the points are striped across pool
    workers — worker ``w`` probes sizes ``w, w+jobs, w+2*jobs, ...`` of
    the ascending list, in ascending order, on its own rehydrated
    parametric session (warm-start within the shard).  Per-shard
    :class:`SizingResult`\\ s are aggregated with :meth:`SizingResult.merge`.

    ``invariants="lazy"`` batches the strengthening: a first pass probes
    every size without invariants, then only the sizes whose candidate
    survived are re-probed with the invariants conjoined (sharded again
    when ``jobs > 1``) — verdict-identical to eager mode.

    ``invariants="partial"`` ranks the rows instead and escalates
    CEGAR-style per surviving candidate (``rank_budget`` /
    ``rank_growth`` shape the schedule); with ``jobs > 1`` the ranked
    rows travel inside the pool snapshot and each worker escalates
    locally — also verdict-identical to eager mode.

    ``portfolio=True`` walks the size list sequentially through one
    persistent :class:`~repro.core.portfolio.PortfolioSession` instead of
    sharding sizes across workers: the parallelism budget (``jobs``,
    routed through :func:`~repro.core.portfolio.racer_budget`) goes to
    concurrent *racers* per probe rather than concurrent probes, and the
    racers stay warm across the ascending walk.  ``invariants`` is
    ignored (the roster spans the modes); ``strategy_wins`` records the
    per-probe winners.

    ``build`` must vary only queue capacities (checked), as for the
    incremental ``minimal_queue_size``.  ``verify_kwargs`` forwards
    ``rotating_precision`` / ``max_splits``.

    ``deadline`` bounds the whole sweep; on expiry the undecided sizes
    are simply absent from ``probes`` (their TIMEOUT results stay in
    ``results``) and the merged result carries ``timed_out=True``.
    """
    mode = resolve_invariants_mode(invariants, use_invariants)
    deadline = Deadline.coerce(deadline)
    size_list = sorted(set(sizes))
    if not size_list:
        raise ValueError("sweep_queue_sizes() needs at least one size")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    timer = _SplitTimer()
    base_network = timer.timed("build", lambda: build(size_list[0]))
    base_stats = base_network.stats()
    base_queues = {q.name for q in base_network.queues()}
    assignments = timer.timed(
        "build",
        lambda: {
            size: _capacity_only_assignment(
                build(size), base_stats, base_queues
            )
            if size != size_list[0]
            else {q.name: q.size for q in base_network.queues()}
            for size in size_list
        },
    )

    if portfolio:
        from .portfolio import PortfolioSession

        psession = timer.timed(
            "build",
            lambda: PortfolioSession(
                network=base_network,
                jobs=jobs,
                lead=portfolio_lead,
                max_splits=verify_kwargs.get("max_splits", 100_000),
            ),
        )
        part = SizingResult(minimal_size=None)
        with psession:
            for size in size_list:
                psession.resize_queues(assignments[size])
                result = timer.timed(
                    "query", lambda: psession.verify(deadline=deadline)
                )
                if not want_witness:
                    result.witness = None
                if result.timed_out:
                    part.results[size] = result
                    part.timed_out = True
                    break
                part.probes[size] = result.deadlock_free
                part.results[size] = result
            part.strategy_wins = dict(psession.strategy_wins)
            part.portfolio_races = psession.races
            generated = len(
                psession._base_snapshot().pending_invariant_rows
            )
        merged = SizingResult.merge([part])
        merged.invariants_used = True
        merged.invariants_generated = generated
    elif jobs == 1:
        session = timer.timed(
            "build",
            lambda: VerificationSession(
                base_network, parametric_queues=True, **verify_kwargs
            ),
        )
        added = mode == "eager"
        escalations = 0
        generated = 0
        selector = None
        ranked = None
        if added:
            timer.timed("build", session.add_invariants)
            generated = len(session.invariants)
        part = SizingResult(minimal_size=None)
        for size in size_list:
            session.resize_queues(assignments[size])
            # Ascending walk: start each probe's search at the previous
            # witness (the shard workers do the same via phase_hints).
            session.seed_phases_from_witness()
            result = timer.timed(
                "query", lambda: session.verify(deadline=deadline)
            )
            if result.timed_out:
                part.results[size] = result
                part.timed_out = True
                break
            if not result.deadlock_free:
                if mode == "partial":
                    if selector is None:

                        def build_selection():
                            nonlocal selector, ranked
                            ranked = session.spec.ranked_invariants()
                            selector = session.spec.invariant_selector(
                                rank_budget=rank_budget,
                                rank_growth=rank_growth,
                            )

                        timer.timed("build", build_selection)
                    result = timer.timed(
                        "query",
                        lambda: escalate_partial(
                            session,
                            selector,
                            ranked,
                            result,
                            lambda: session.verify(deadline=deadline),
                        ),
                    )
                elif mode == "lazy" and not added:
                    timer.timed("build", session.add_invariants)
                    added = True
                    escalations += 1
                    generated = len(session.invariants)
                    result = timer.timed(
                        "query", lambda: session.verify(deadline=deadline)
                    )
            if result.timed_out:
                part.results[size] = result
                part.timed_out = True
                break
            if not want_witness:
                # Match the parallel path's payload shape: the session
                # always extracts on SAT, so drop it afterwards.
                result.witness = None
            part.probes[size] = result.deadlock_free
            part.results[size] = result
        if selector is not None:
            escalations = selector.escalations
            generated = selector.generated
            part.rank_histogram = dict(selector.rank_histogram)
        merged = SizingResult.merge([part])
        merged.invariants_used = added or generated > 0
        merged.lazy_escalations = escalations
        merged.invariants_generated = generated
    elif mode == "partial":
        merged = _pool_sweep(
            base_network,
            size_list,
            assignments,
            jobs,
            backend,
            want_witness,
            False,
            timer,
            verify_kwargs,
            escalation=(rank_budget, rank_growth),
            deadline=deadline,
        )
    elif mode != "lazy":
        merged = _pool_sweep(
            base_network,
            size_list,
            assignments,
            jobs,
            backend,
            want_witness,
            mode == "eager",
            timer,
            verify_kwargs,
            deadline=deadline,
        )
    else:
        # Batched strengthening across the pool: one unstrengthened pass
        # over every size, then a second sharded pass (invariants
        # conjoined) over only the sizes whose candidate survived.
        first = _pool_sweep(
            base_network,
            size_list,
            assignments,
            jobs,
            backend,
            want_witness,
            False,
            timer,
            verify_kwargs,
            deadline=deadline,
        )
        # A timed-out size is absent from ``probes``; it is not a
        # survivor — its TIMEOUT result stands as recorded.
        surviving = [size for size in size_list if not first.probes.get(size, True)]
        if not surviving:
            merged = first
        else:
            for size in surviving:
                # Drop the unstrengthened candidate verdicts: the second
                # pass re-answers them under the stronger encoding.
                first.probes.pop(size)
                first.results.pop(size, None)
            second = _pool_sweep(
                base_network,
                surviving,
                assignments,
                min(jobs, len(surviving)),
                backend,
                want_witness,
                True,
                timer,
                verify_kwargs,
                deadline=deadline,
            )
            merged = SizingResult.merge([first, second])
            merged.invariants_used = True
            merged.lazy_escalations = len(surviving)
    merged.invariants_mode = mode
    merged.build_seconds = timer.build
    merged.query_seconds = timer.query
    return merged
