"""Shared variable pool for the deadlock and invariant encodings.

Both encoders must talk about the *same* queue occupancies ``#q.d`` and
automaton state indicators ``A.s``; the pool hands out one canonical
:class:`~repro.smt.terms.IntVar` / BoolVar per structured key and offers
stable, human-readable names so invariants print the way the paper writes
them (``qE.getX(c)``, ``d.MI(c)``, …).
"""

from __future__ import annotations

from typing import Hashable

from ..smt import IntVar, Term, boolvar, intvar
from ..xmas import Automaton, Channel, Queue, Sink

__all__ = ["VarPool", "color_label"]

Color = Hashable


def color_label(color: Color) -> str:
    """A compact, deterministic label for a packet color."""
    if isinstance(color, str):
        return color
    label = getattr(color, "label", None)
    if label is not None:
        return label() if callable(label) else str(label)
    return repr(color)


class VarPool:
    """Canonical variables keyed by network structure."""

    def __init__(self) -> None:
        self._occupancy: dict[tuple[str, Color], IntVar] = {}
        self._state: dict[tuple[str, str], IntVar] = {}
        self._block: dict[tuple[str, Color], Term] = {}
        self._idle: dict[tuple[str, Color], Term] = {}
        self._dead: dict[str, Term] = {}
        self._dead_sink: dict[str, Term] = {}

    # -- integer-valued ------------------------------------------------
    def occupancy(self, queue: Queue, color: Color) -> IntVar:
        """``#q.d`` — number of ``color`` packets stored in ``queue``."""
        key = (queue.name, color)
        var = self._occupancy.get(key)
        if var is None:
            var = intvar(f"#{queue.name}.{color_label(color)}")
            self._occupancy[key] = var
        return var

    def state(self, automaton: Automaton, state: str) -> IntVar:
        """``A.s`` — 1 iff ``automaton`` is in ``state`` (0/1 integer)."""
        key = (automaton.name, state)
        var = self._state.get(key)
        if var is None:
            var = intvar(automaton.state_var_name(state))
            self._state[key] = var
        return var

    # -- boolean-valued ------------------------------------------------
    def block(self, channel: Channel, color: Color) -> Term:
        """``Block(c, d)`` — channel permanently refuses ``color``."""
        key = (channel.name, color)
        var = self._block.get(key)
        if var is None:
            var = boolvar(f"blk[{channel.name}:{color_label(color)}]")
            self._block[key] = var
        return var

    def idle(self, channel: Channel, color: Color) -> Term:
        """``Idle(c, d)`` — channel permanently stops offering ``color``."""
        key = (channel.name, color)
        var = self._idle.get(key)
        if var is None:
            var = boolvar(f"idl[{channel.name}:{color_label(color)}]")
            self._idle[key] = var
        return var

    def dead(self, automaton: Automaton) -> Term:
        """``dead(A)`` — the automaton can make no transition, ever."""
        var = self._dead.get(automaton.name)
        if var is None:
            var = boolvar(f"dead[{automaton.name}]")
            self._dead[automaton.name] = var
        return var

    def dead_sink_choice(self, sink: Sink) -> Term:
        """Free variable: a non-fair sink may choose to be dead."""
        var = self._dead_sink.get(sink.name)
        if var is None:
            var = boolvar(f"sinkdead[{sink.name}]")
            self._dead_sink[sink.name] = var
        return var

    # -- inventory -----------------------------------------------------
    def occupancy_items(self) -> list[tuple[tuple[str, Color], IntVar]]:
        return list(self._occupancy.items())

    def state_items(self) -> list[tuple[tuple[str, str], IntVar]]:
        return list(self._state.items())
