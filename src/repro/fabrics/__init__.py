"""Interconnect fabrics assembled from xMAS primitives.

:func:`build_mesh` instantiates a store-and-forward 2D mesh with XY (or
caller-supplied) routing and optional virtual channels into a
:class:`~repro.xmas.NetworkBuilder`; protocol automata attach through the
returned :class:`MeshFabric` ports.
"""

from .mesh import MeshConfig, MeshFabric, build_mesh
from .routing import route_path, xy_routing, yx_routing
from .topology import Direction, MeshTopology, octant_positions

__all__ = [
    "MeshConfig",
    "MeshFabric",
    "build_mesh",
    "MeshTopology",
    "Direction",
    "octant_positions",
    "xy_routing",
    "yx_routing",
    "route_path",
]
