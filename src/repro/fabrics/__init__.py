"""Interconnect fabrics assembled from xMAS primitives.

The fabric layer is a plugin API around the abstract
:class:`~repro.fabrics.topology.Topology` interface:

* :mod:`repro.fabrics.topology` — :class:`MeshTopology`,
  :class:`TorusTopology` (wraparound + dateline escape VCs) and
  :class:`RingTopology`; each knows its ports, neighbours, symmetry-orbit
  probe positions and routing functions.
* :mod:`repro.fabrics.fabric` — :func:`build_fabric` instantiates the
  store-and-forward input-queued router at every node of any topology
  into a :class:`~repro.xmas.NetworkBuilder`; protocol automata attach
  through the returned :class:`Fabric` ports.
* :mod:`repro.fabrics.mesh` — the historic mesh-shaped front
  (:class:`MeshConfig` / :func:`build_mesh`), byte-identical to the old
  mesh-only builder.
"""

from .fabric import (
    Fabric,
    FabricConfig,
    build_fabric,
    build_traffic,
    traffic_mesh,
    traffic_ring,
    traffic_torus,
)
from .mesh import MeshConfig, MeshFabric, build_mesh
from .routing import as_routing_function, route_path, xy_routing, yx_routing
from .topology import (
    Direction,
    MeshTopology,
    RingTopology,
    Topology,
    TorusTopology,
    octant_positions,
)

__all__ = [
    "Topology",
    "MeshTopology",
    "TorusTopology",
    "RingTopology",
    "Direction",
    "Fabric",
    "FabricConfig",
    "build_fabric",
    "build_traffic",
    "MeshConfig",
    "MeshFabric",
    "build_mesh",
    "traffic_mesh",
    "traffic_torus",
    "traffic_ring",
    "octant_positions",
    "as_routing_function",
    "xy_routing",
    "yx_routing",
    "route_path",
]
