"""Topology-generic fabric built from xMAS primitives.

Router microarchitecture (store-and-forward, input-queued)::

            ┌──────────────────────────────────────────────┐
   link in ─► [demux by VC]─► input queue(s) ─► route switch ─► output merges ─► link out
            │                                        │
   inject  ─► [VC assign] ─► injection queue ─► route switch ─► eject merge ─► ejection queue (rotating) ─► deliver
            └──────────────────────────────────────────────┘

:func:`build_fabric` instantiates this router at every node of *any*
:class:`~repro.fabrics.topology.Topology` — the microarchitecture is
port-shaped, not mesh-shaped:

* one input queue per incoming link port (and per VC layer when the fabric
  carries more than one);
* one injection queue (per protocol VC) fed by the node's automaton;
* a route switch after every queue, targeting the node's ports plus local
  ejection, driven by the topology's routing function;
* a fair merge in front of every outgoing link and in front of the
  ejection queue;
* the ejection queue is ``rotating``: a head packet the automaton cannot
  currently consume is moved to the tail (the paper's stalling rule).

All queues share one ``queue_size`` (the quantity Figure 4 minimises);
ejection/injection queues can be sized separately for ablations.

Escape VCs (wraparound fabrics)
-------------------------------

With ``escape_vcs=True`` every protocol VC is split into a pre- and
post-dateline layer (``vc = protocol_vc * 2 + dateline_bit``).  Routing is
deterministic, so the layer a packet occupies on any given link is a pure
function of ``(message, link)``: a function primitive on each link rewrites
the VC from the topology's :meth:`~repro.fabrics.topology.Topology.\
escape_vc_bit` before the receiving demux.  Packets that cross the wrap
link of the dimension they are travelling move to the escape layer, whose
channel-dependence chain terminates before the dateline — the cycle the
wrap links introduce cannot close, restoring the acyclicity argument the
mesh gets from its turn restriction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..xmas import Network, NetworkBuilder, Port, Queue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..protocols.messages import Message
from .routing import RoutingFunction, as_routing_function
from .topology import (
    MeshTopology,
    Node,
    RingTopology,
    Topology,
    TorusTopology,
)
from .topology import Port as TopoPort

__all__ = [
    "Fabric",
    "FabricConfig",
    "build_fabric",
    "build_traffic",
    "traffic_mesh",
    "traffic_ring",
    "traffic_torus",
]

_EJECT = "EJ"


@dataclass
class FabricConfig:
    """Parameters of a fabric over an arbitrary topology."""

    topology: Topology
    queue_size: int
    vcs: int = 1
    routing: Callable | None = None
    vc_of: Callable[[Message], int] | None = None
    escape_vcs: bool = False
    injection_size: int | None = None
    ejection_size: int | None = None

    def __post_init__(self) -> None:
        if self.topology.node_count() < 2:
            raise ValueError("a fabric needs at least two nodes")
        if self.vcs < 1:
            raise ValueError("vcs must be >= 1")
        if self.vcs > 1 and self.vc_of is None:
            raise ValueError("vc_of is required when vcs > 1")
        if self.escape_vcs:
            overridden = (
                type(self.topology).escape_vc_bit is not Topology.escape_vc_bit
            )
            if not overridden:
                raise ValueError(
                    f"escape_vcs=True needs a topology with a dateline "
                    f"(escape_vc_bit); {self.topology} has none"
                )

    @property
    def vc_layers(self) -> int:
        """Physical VC count: protocol VCs × (pre/post-dateline split)."""
        return self.vcs * (2 if self.escape_vcs else 1)

    def routing_function(self) -> RoutingFunction:
        fn = self.routing if self.routing is not None else self.topology.routing()
        return as_routing_function(fn)


@dataclass
class Fabric:
    """Handles into a built fabric: per-node attachment points."""

    config: FabricConfig
    inject_ports: dict[Node, Port] = field(default_factory=dict)
    deliver_ports: dict[Node, Port] = field(default_factory=dict)
    link_queues: list[Queue] = field(default_factory=list)
    ejection_queues: dict[Node, Queue] = field(default_factory=dict)
    injection_queues: dict[Node, list[Queue]] = field(default_factory=dict)

    @property
    def topology(self) -> Topology:
        return self.config.topology


def _tag(node: Node) -> str:
    return f"{node[0]}_{node[1]}"


def build_fabric(builder: NetworkBuilder, config: FabricConfig) -> Fabric:
    """Instantiate the fabric into ``builder``.

    Returns a :class:`Fabric` whose ``inject_ports[node]`` (an IN port)
    accepts the node automaton's outgoing packets and whose
    ``deliver_ports[node]`` (an OUT port, the ejection queue output) feeds
    the automaton's network in-port.
    """
    fabric = Fabric(config)
    topology = config.topology
    routing = config.routing_function()
    inj_size = config.injection_size or config.queue_size
    ej_size = config.ejection_size or config.queue_size
    layers = config.vc_layers

    # Per node: merge feeding each outgoing link, keyed by port.
    out_merges: dict[Node, dict[TopoPort, object]] = {}
    # Per node: entry point of each incoming link (queue.i or demux.i).
    link_entries: dict[tuple[Node, TopoPort], Port] = {}

    for node in topology.nodes():
        tag = _tag(node)
        ports = topology.ports(node)

        switches: list[tuple[object, list[object]]] = []
        targets: list[object] = [*ports, _EJECT]

        def make_route_switch(name: str, origin: Node = node,
                              switch_targets: list[object] = targets):
            def route(message: Message) -> int:
                step = routing(topology, origin, message)
                key = step if step is not None else _EJECT
                return switch_targets.index(key)

            return builder.switch(name, route, n_outputs=len(switch_targets))

        # ---- link inputs ------------------------------------------------
        for port in ports:
            kind = topology.port_tag(port)
            if layers == 1:
                queue = builder.queue(f"q_{tag}_{kind}", config.queue_size)
                fabric.link_queues.append(queue)
                link_entries[(node, port)] = queue.i
                switch = make_route_switch(f"sw_{tag}_{kind}")
                builder.connect(queue.o, switch.i)
                switches.append((switch, targets))
            else:
                demux = builder.switch(
                    f"dx_{tag}_{kind}",
                    route=lambda message: message.vc,
                    n_outputs=layers,
                )
                link_entries[(node, port)] = demux.i
                for vc in range(layers):
                    queue = builder.queue(
                        f"q_{tag}_{kind}_v{vc}", config.queue_size
                    )
                    fabric.link_queues.append(queue)
                    builder.connect(demux.outs[vc], queue.i)
                    switch = make_route_switch(f"sw_{tag}_{kind}_v{vc}")
                    builder.connect(queue.o, switch.i)
                    switches.append((switch, targets))

        # ---- injection --------------------------------------------------
        # Injection queues split by *protocol* VC only: the dateline layer
        # is a per-link property, recomputed by the link functions below.
        fabric.injection_queues[node] = []
        if config.vcs == 1:
            inj_queue = builder.queue(f"inj_{tag}", inj_size)
            fabric.injection_queues[node].append(inj_queue)
            fabric.inject_ports[node] = inj_queue.i
            switch = make_route_switch(f"sw_{tag}_J")
            builder.connect(inj_queue.o, switch.i)
            switches.append((switch, targets))
        else:
            vc_of = config.vc_of
            assert vc_of is not None
            vc_assign = builder.function(
                f"vca_{tag}", fn=lambda message: message.with_vc(vc_of(message))
            )
            fabric.inject_ports[node] = vc_assign.i
            demux = builder.switch(
                f"dx_{tag}_J",
                route=lambda message: message.vc,
                n_outputs=config.vcs,
            )
            builder.connect(vc_assign.o, demux.i)
            for vc in range(config.vcs):
                inj_queue = builder.queue(f"inj_{tag}_v{vc}", inj_size)
                fabric.injection_queues[node].append(inj_queue)
                builder.connect(demux.outs[vc], inj_queue.i)
                switch = make_route_switch(f"sw_{tag}_J_v{vc}")
                builder.connect(inj_queue.o, switch.i)
                switches.append((switch, targets))

        # ---- output merges ----------------------------------------------
        n_feeders = len(switches)
        merges: dict[TopoPort, object] = {}
        for port in ports:
            merges[port] = builder.merge(
                f"m_{tag}_{topology.port_tag(port)}", n_inputs=n_feeders
            )
        out_merges[node] = merges

        # ---- ejection ---------------------------------------------------
        eject_merge = builder.merge(f"m_{tag}_EJ", n_inputs=n_feeders)
        ej_queue = builder.queue(f"ej_{tag}", ej_size, rotating=True)
        fabric.ejection_queues[node] = ej_queue
        if layers == 1:
            builder.connect(eject_merge.o, ej_queue.i)
        else:
            strip = builder.function(
                f"vcs_{tag}", fn=lambda message: message.with_vc(0)
            )
            builder.connect(eject_merge.o, strip.i)
            builder.connect(strip.o, ej_queue.i)
        fabric.deliver_ports[node] = ej_queue.o

        # wire every route switch into the merges
        for feeder_index, (switch, switch_targets) in enumerate(switches):
            for position, target in enumerate(switch_targets):
                if target == _EJECT:
                    builder.connect(switch.outs[position], eject_merge.ins[feeder_index])
                else:
                    builder.connect(
                        switch.outs[position], merges[target].ins[feeder_index]
                    )

    # ---- inter-node links -----------------------------------------------
    vcs = config.vcs
    vc_of = config.vc_of
    for node in topology.nodes():
        for port, merge in out_merges[node].items():
            neighbour = topology.neighbour(node, port)
            assert neighbour is not None
            entry = link_entries[(neighbour, topology.opposite(port))]
            link_name = f"link_{_tag(node)}_{topology.port_tag(port)}"
            if not config.escape_vcs:
                builder.connect(merge.o, entry, name=link_name)
                continue

            # Dateline scheme: recompute the packet's VC layer for this
            # link from its (deterministic) journey, before the demux.
            def link_vc(message: Message, u: Node = node, p: TopoPort = port):
                base = vc_of(message) if vc_of is not None else 0
                bit = topology.escape_vc_bit(u, p, message)
                return message.with_vc(base * 2 + bit)

            relabel = builder.function(
                f"dl_{_tag(node)}_{topology.port_tag(port)}", fn=link_vc
            )
            builder.connect(merge.o, relabel.i, name=link_name)
            builder.connect(relabel.o, entry)

    return fabric


# ---------------------------------------------------------------------------
# Pure-fabric traffic networks: every node sources all-to-all packets and
# sinks its deliveries.  With no protocol layer on top, any deadlock these
# exhibit is the *fabric's own* — the scenarios that separate the torus
# wrap-cycle (deadlock-prone without escape VCs) from the dateline scheme.
# ---------------------------------------------------------------------------


def build_traffic(
    topology: Topology,
    queue_size: int,
    vcs: int = 1,
    vc_of: Callable[[Message], int] | None = None,
    escape_vcs: bool = False,
    routing: Callable | None = None,
    validate: bool = True,
) -> Network:
    """All-to-all source/sink traffic over ``topology`` — fabric only."""
    from ..protocols.messages import Message

    builder = NetworkBuilder(f"traffic-{topology}-q{queue_size}".replace(" ", "-"))
    config = FabricConfig(
        topology=topology,
        queue_size=queue_size,
        vcs=vcs,
        vc_of=vc_of,
        escape_vcs=escape_vcs,
        routing=routing,
    )
    fabric = build_fabric(builder, config)
    all_nodes = list(topology.nodes())
    for node in all_nodes:
        colors = {
            Message("pkt", src=node, dst=other)
            for other in all_nodes
            if other != node
        }
        src = builder.source(f"src_{_tag(node)}", colors=colors)
        snk = builder.sink(f"snk_{_tag(node)}")
        builder.connect(src.o, fabric.inject_ports[node])
        builder.connect(fabric.deliver_ports[node], snk.i)
    return builder.build(validate=validate)


def traffic_mesh(width: int, height: int, queue_size: int) -> Network:
    """Registry builder: all-to-all traffic on a mesh (XY routing)."""
    return build_traffic(MeshTopology(width, height), queue_size)


def traffic_torus(
    width: int, height: int, queue_size: int, escape_vcs: bool = True
) -> Network:
    """Registry builder: all-to-all traffic on a torus.

    ``escape_vcs=False`` exposes the wrap-link cycle: the fabric deadlocks
    at *every* queue size (the witness the encoder must find).
    """
    return build_traffic(
        TorusTopology(width, height), queue_size, escape_vcs=escape_vcs
    )


def traffic_ring(n_nodes: int, queue_size: int, escape_vcs: bool = True) -> Network:
    """Registry builder: all-to-all traffic on a bidirectional ring."""
    return build_traffic(
        RingTopology(n_nodes), queue_size, escape_vcs=escape_vcs
    )
