"""2D-mesh fabric built from xMAS primitives.

Router microarchitecture (store-and-forward, input-queued, XY by default)::

            ┌──────────────────────────────────────────────┐
   link in ─► [demux by VC]─► input queue(s) ─► route switch ─► output merges ─► link out
            │                                        │
   inject  ─► [VC assign] ─► injection queue ─► route switch ─► eject merge ─► ejection queue (rotating) ─► deliver
            └──────────────────────────────────────────────┘

* one input queue per incoming link (and per VC when ``vcs > 1``);
* one injection queue (per VC) fed by the node's protocol automaton;
* a route switch after every queue, targeting the available directions plus
  local ejection;
* a fair merge in front of every outgoing link and in front of the ejection
  queue;
* the ejection queue is ``rotating``: a head packet the automaton cannot
  currently consume is moved to the tail (the paper's stalling rule).

All queues share one ``queue_size`` (the quantity Figure 4 minimises);
ejection/injection queues can be sized separately for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..xmas import NetworkBuilder, Port, Queue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..protocols.messages import Message
from .routing import RoutingFunction, xy_routing
from .topology import Direction, MeshTopology, Node

__all__ = ["MeshConfig", "MeshFabric", "build_mesh"]

_EJECT = "EJ"


@dataclass
class MeshConfig:
    """Parameters of a mesh fabric."""

    width: int
    height: int
    queue_size: int
    vcs: int = 1
    routing: RoutingFunction = xy_routing
    vc_of: Callable[[Message], int] | None = None
    injection_size: int | None = None
    ejection_size: int | None = None

    def __post_init__(self) -> None:
        if self.width * self.height < 2:
            raise ValueError("a mesh fabric needs at least two nodes")
        if self.vcs < 1:
            raise ValueError("vcs must be >= 1")
        if self.vcs > 1 and self.vc_of is None:
            raise ValueError("vc_of is required when vcs > 1")

    @property
    def topology(self) -> MeshTopology:
        return MeshTopology(self.width, self.height)


@dataclass
class MeshFabric:
    """Handles into a built mesh: per-node attachment points."""

    config: MeshConfig
    inject_ports: dict[Node, Port] = field(default_factory=dict)
    deliver_ports: dict[Node, Port] = field(default_factory=dict)
    link_queues: list[Queue] = field(default_factory=list)
    ejection_queues: dict[Node, Queue] = field(default_factory=dict)
    injection_queues: dict[Node, list[Queue]] = field(default_factory=dict)


def _tag(node: Node) -> str:
    return f"{node[0]}_{node[1]}"


def build_mesh(builder: NetworkBuilder, config: MeshConfig) -> MeshFabric:
    """Instantiate the mesh fabric into ``builder``.

    Returns a :class:`MeshFabric` whose ``inject_ports[node]`` (an IN port)
    accepts the node automaton's outgoing packets and whose
    ``deliver_ports[node]`` (an OUT port, the ejection queue output) feeds
    the automaton's network in-port.
    """
    fabric = MeshFabric(config)
    topology = config.topology
    inj_size = config.injection_size or config.queue_size
    ej_size = config.ejection_size or config.queue_size

    # Per node and input kind: list of (route switch, targets) to wire later.
    route_points: dict[Node, list[tuple[object, list[object]]]] = {}
    # Per node: merge feeding each outgoing link, keyed by direction.
    out_merges: dict[Node, dict[Direction, object]] = {}
    # Per node: entry point of each incoming link (queue.i or demux.i).
    link_entries: dict[tuple[Node, Direction], Port] = {}

    for node in topology.nodes():
        tag = _tag(node)
        directions = sorted(topology.neighbours(node), key=lambda d: d.name)

        switches: list[tuple[object, list[object]]] = []
        targets: list[object] = [*directions, _EJECT]

        def make_route_switch(name: str, origin: Node = node,
                              switch_targets: list[object] = targets):
            def route(message: Message) -> int:
                step = config.routing(origin, message)
                key = step if step is not None else _EJECT
                return switch_targets.index(key)

            return builder.switch(name, route, n_outputs=len(switch_targets))

        # ---- link inputs ------------------------------------------------
        for direction in directions:
            kind = direction.short
            if config.vcs == 1:
                queue = builder.queue(f"q_{tag}_{kind}", config.queue_size)
                fabric.link_queues.append(queue)
                link_entries[(node, direction)] = queue.i
                switch = make_route_switch(f"sw_{tag}_{kind}")
                builder.connect(queue.o, switch.i)
                switches.append((switch, targets))
            else:
                demux = builder.switch(
                    f"dx_{tag}_{kind}",
                    route=lambda message: message.vc,
                    n_outputs=config.vcs,
                )
                link_entries[(node, direction)] = demux.i
                for vc in range(config.vcs):
                    queue = builder.queue(
                        f"q_{tag}_{kind}_v{vc}", config.queue_size
                    )
                    fabric.link_queues.append(queue)
                    builder.connect(demux.outs[vc], queue.i)
                    switch = make_route_switch(f"sw_{tag}_{kind}_v{vc}")
                    builder.connect(queue.o, switch.i)
                    switches.append((switch, targets))

        # ---- injection --------------------------------------------------
        fabric.injection_queues[node] = []
        if config.vcs == 1:
            inj_queue = builder.queue(f"inj_{tag}", inj_size)
            fabric.injection_queues[node].append(inj_queue)
            fabric.inject_ports[node] = inj_queue.i
            switch = make_route_switch(f"sw_{tag}_J")
            builder.connect(inj_queue.o, switch.i)
            switches.append((switch, targets))
        else:
            vc_of = config.vc_of
            assert vc_of is not None
            vc_assign = builder.function(
                f"vca_{tag}", fn=lambda message: message.with_vc(vc_of(message))
            )
            fabric.inject_ports[node] = vc_assign.i
            demux = builder.switch(
                f"dx_{tag}_J",
                route=lambda message: message.vc,
                n_outputs=config.vcs,
            )
            builder.connect(vc_assign.o, demux.i)
            for vc in range(config.vcs):
                inj_queue = builder.queue(f"inj_{tag}_v{vc}", inj_size)
                fabric.injection_queues[node].append(inj_queue)
                builder.connect(demux.outs[vc], inj_queue.i)
                switch = make_route_switch(f"sw_{tag}_J_v{vc}")
                builder.connect(inj_queue.o, switch.i)
                switches.append((switch, targets))

        route_points[node] = switches

        # ---- output merges ----------------------------------------------
        n_feeders = len(switches)
        merges: dict[Direction, object] = {}
        for direction in directions:
            merges[direction] = builder.merge(
                f"m_{tag}_{direction.short}", n_inputs=n_feeders
            )
        out_merges[node] = merges

        # ---- ejection ---------------------------------------------------
        eject_merge = builder.merge(f"m_{tag}_EJ", n_inputs=n_feeders)
        ej_queue = builder.queue(f"ej_{tag}", ej_size, rotating=True)
        fabric.ejection_queues[node] = ej_queue
        if config.vcs == 1:
            builder.connect(eject_merge.o, ej_queue.i)
        else:
            strip = builder.function(
                f"vcs_{tag}", fn=lambda message: message.with_vc(0)
            )
            builder.connect(eject_merge.o, strip.i)
            builder.connect(strip.o, ej_queue.i)
        fabric.deliver_ports[node] = ej_queue.o

        # wire every route switch into the merges
        for feeder_index, (switch, switch_targets) in enumerate(switches):
            for position, target in enumerate(switch_targets):
                if target == _EJECT:
                    builder.connect(switch.outs[position], eject_merge.ins[feeder_index])
                else:
                    builder.connect(
                        switch.outs[position], merges[target].ins[feeder_index]
                    )

    # ---- inter-node links -----------------------------------------------
    for node in topology.nodes():
        for direction, merge in out_merges[node].items():
            neighbour = topology.neighbour(node, direction)
            assert neighbour is not None
            entry = link_entries[(neighbour, direction.opposite)]
            builder.connect(merge.o, entry, name=f"link_{_tag(node)}_{direction.short}")

    return fabric
