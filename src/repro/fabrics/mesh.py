"""2D-mesh front for the topology-generic fabric builder.

Historically the router microarchitecture lived here, hard-coded to a
``width × height`` mesh; it now lives in :mod:`repro.fabrics.fabric`,
parameterized by any :class:`~repro.fabrics.topology.Topology`.  This
module keeps the mesh-shaped public API — :class:`MeshConfig` (dims +
queue sizing) and :func:`build_mesh` — as a thin adapter so existing
protocol builders, tests and benchmarks are untouched: for a mesh the
generic builder emits exactly the element names, counts and wiring order
the original mesh builder did, so encodings (and therefore committed
verdict SHAs) are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..xmas import NetworkBuilder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..protocols.messages import Message
from .fabric import Fabric, FabricConfig, build_fabric
from .routing import xy_routing
from .topology import MeshTopology

__all__ = ["MeshConfig", "MeshFabric", "build_mesh"]

# The fabric handle is topology-generic; meshes get the same one.
MeshFabric = Fabric


@dataclass
class MeshConfig:
    """Parameters of a mesh fabric (see :class:`FabricConfig`)."""

    width: int
    height: int
    queue_size: int
    vcs: int = 1
    routing: Callable = xy_routing
    vc_of: Callable[[Message], int] | None = None
    injection_size: int | None = None
    ejection_size: int | None = None

    def __post_init__(self) -> None:
        if self.width * self.height < 2:
            raise ValueError("a mesh fabric needs at least two nodes")
        if self.vcs < 1:
            raise ValueError("vcs must be >= 1")
        if self.vcs > 1 and self.vc_of is None:
            raise ValueError("vc_of is required when vcs > 1")

    @property
    def topology(self) -> MeshTopology:
        return MeshTopology(self.width, self.height)

    def fabric_config(self) -> FabricConfig:
        return FabricConfig(
            topology=self.topology,
            queue_size=self.queue_size,
            vcs=self.vcs,
            routing=self.routing,
            vc_of=self.vc_of,
            injection_size=self.injection_size,
            ejection_size=self.ejection_size,
        )


def build_mesh(builder: NetworkBuilder, config: MeshConfig) -> MeshFabric:
    """Instantiate the mesh fabric into ``builder``.

    Returns a :class:`Fabric` whose ``inject_ports[node]`` (an IN port)
    accepts the node automaton's outgoing packets and whose
    ``deliver_ports[node]`` (an OUT port, the ejection queue output) feeds
    the automaton's network in-port.
    """
    return build_fabric(builder, config.fabric_config())
