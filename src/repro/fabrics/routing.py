"""Routing algorithms for 2D meshes.

XY (dimension-ordered) routing: correct the x coordinate first, then the y
coordinate.  The turn restriction (no Y→X turns) makes the routing function
acyclic on the channel dependence graph, so the *fabric alone* is
deadlock-free — exactly the premise of the paper's case study, where the
deadlocks that remain are cross-layer.

Routing functions map ``(current node, message) -> Direction | None``
(``None`` = deliver locally).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .topology import Direction, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..protocols.messages import Message

__all__ = ["RoutingFunction", "xy_routing", "yx_routing", "route_path"]

RoutingFunction = Callable[[Node, "Message"], "Direction | None"]


def xy_routing(node: Node, message: Message) -> Direction | None:
    """Dimension-ordered XY: fix x first, then y; None at the destination."""
    x, y = node
    dst_x, dst_y = message.dst
    if dst_x > x:
        return Direction.EAST
    if dst_x < x:
        return Direction.WEST
    if dst_y > y:
        return Direction.SOUTH
    if dst_y < y:
        return Direction.NORTH
    return None


def yx_routing(node: Node, message: Message) -> Direction | None:
    """Dimension-ordered YX (fix y first) — for ablation experiments."""
    x, y = node
    dst_x, dst_y = message.dst
    if dst_y > y:
        return Direction.SOUTH
    if dst_y < y:
        return Direction.NORTH
    if dst_x > x:
        return Direction.EAST
    if dst_x < x:
        return Direction.WEST
    return None


def route_path(
    routing: RoutingFunction, source: Node, message: Message, max_hops: int = 1024
) -> list[Node]:
    """The node sequence a message visits from ``source`` to delivery."""
    path = [source]
    node = source
    for _ in range(max_hops):
        step = routing(node, message)
        if step is None:
            return path
        node = (node[0] + step.dx, node[1] + step.dy)
        path.append(node)
    raise RuntimeError(
        f"routing did not converge from {source} to {message.dst} "
        f"within {max_hops} hops"
    )
