"""Routing functions over :class:`~repro.fabrics.topology.Topology`.

The unified routing type is

    ``RoutingFunction = (topology, node, message) -> port | None``

(``None`` = deliver locally): the topology argument carries the shape, the
returned port is one of ``topology.ports(node)``.  The historic mesh
routers :func:`xy_routing` / :func:`yx_routing` keep their original
``(node, message) -> Direction | None`` signature as adapters —
:func:`as_routing_function` lifts either shape to the unified type, so
existing call sites and configs keep working unchanged.

XY (dimension-ordered) mesh routing: correct the x coordinate first, then
the y coordinate.  The turn restriction (no Y→X turns) makes the routing
function acyclic on the mesh's channel dependence graph, so that *fabric
alone* is deadlock-free — exactly the premise of the paper's case study,
where the deadlocks that remain are cross-layer.  On wraparound fabrics
(torus/ring) dimension order is not enough: see
:meth:`~repro.fabrics.topology.Topology.escape_vc_bit`.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Optional

from .topology import Direction, Node, Port, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..protocols.messages import Message

__all__ = [
    "RoutingFunction",
    "as_routing_function",
    "route_path",
    "xy_routing",
    "yx_routing",
]

RoutingFunction = Callable[[Topology, Node, "Message"], Optional[Port]]

# Legacy mesh shape, kept for the xy/yx adapters below.
LegacyRoutingFunction = Callable[[Node, "Message"], Optional[Direction]]


def xy_routing(node: Node, message: Message) -> Direction | None:
    """Dimension-ordered XY: fix x first, then y; None at the destination."""
    x, y = node
    dst_x, dst_y = message.dst
    if dst_x > x:
        return Direction.EAST
    if dst_x < x:
        return Direction.WEST
    if dst_y > y:
        return Direction.SOUTH
    if dst_y < y:
        return Direction.NORTH
    return None


def yx_routing(node: Node, message: Message) -> Direction | None:
    """Dimension-ordered YX (fix y first) — for ablation experiments."""
    x, y = node
    dst_x, dst_y = message.dst
    if dst_y > y:
        return Direction.SOUTH
    if dst_y < y:
        return Direction.NORTH
    if dst_x > x:
        return Direction.EAST
    if dst_x < x:
        return Direction.WEST
    return None


def as_routing_function(fn: Callable) -> RoutingFunction:
    """Lift ``fn`` to the unified ``(topology, node, message)`` shape.

    Already-unified functions pass through; two-parameter legacy mesh
    routers (``(node, message) -> Direction | None``) are wrapped to ignore
    the topology argument.
    """
    try:
        # follow_wrapped=False: an already-lifted function advertises its
        # legacy original via __wrapped__ and must not be lifted twice.
        arity = len(inspect.signature(fn, follow_wrapped=False).parameters)
    except (TypeError, ValueError):  # builtins / odd callables: assume new
        return fn
    if arity >= 3:
        return fn

    def lifted(topology: Topology, node: Node, message: Message):
        return fn(node, message)

    lifted.__name__ = getattr(fn, "__name__", "routing")
    lifted.__wrapped__ = fn
    return lifted


def route_path(
    routing: Callable,
    source: Node,
    message: Message,
    max_hops: int = 1024,
    topology: Topology | None = None,
) -> list[Node]:
    """The node sequence a message visits from ``source`` to delivery.

    With a ``topology``, hops follow ``topology.neighbour`` (any port
    shape, wraparound included); without one, the legacy mesh geometry
    (``Direction`` offsets) is used so historic call sites keep working.
    """
    path = [source]
    node = source
    fn = as_routing_function(routing) if topology is not None else None
    for _ in range(max_hops):
        if topology is None:
            step = routing(node, message)
            if step is None:
                return path
            node = (node[0] + step.dx, node[1] + step.dy)
        else:
            step = fn(topology, node, message)
            if step is None:
                return path
            next_node = topology.neighbour(node, step)
            if next_node is None:
                raise RuntimeError(
                    f"routing stepped off {topology} at {node} via {step!r}"
                )
            node = next_node
        path.append(node)
    raise RuntimeError(
        f"routing did not converge from {source} to {message.dst} "
        f"within {max_hops} hops"
    )
