"""Mesh topology descriptions: coordinates, directions, neighbours."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Direction", "MeshTopology", "Node", "octant_positions"]

Node = tuple[int, int]


class Direction(enum.Enum):
    """Link directions; +x is EAST, +y is SOUTH (row-major screen layout)."""

    NORTH = (0, -1)
    EAST = (1, 0)
    SOUTH = (0, 1)
    WEST = (-1, 0)

    @property
    def dx(self) -> int:
        return self.value[0]

    @property
    def dy(self) -> int:
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]

    @property
    def short(self) -> str:
        return self.name[0]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}


@dataclass(frozen=True)
class MeshTopology:
    """A ``width × height`` 2D mesh."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")

    def nodes(self) -> Iterator[Node]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def contains(self, node: Node) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbour(self, node: Node, direction: Direction) -> Node | None:
        x, y = node
        candidate = (x + direction.dx, y + direction.dy)
        return candidate if self.contains(candidate) else None

    def neighbours(self, node: Node) -> dict[Direction, Node]:
        result = {}
        for direction in Direction:
            other = self.neighbour(node, direction)
            if other is not None:
                result[direction] = other
        return result

    def node_count(self) -> int:
        return self.width * self.height

    def __str__(self) -> str:
        return f"{self.width}x{self.height} mesh"


def octant_positions(width: int, height: int) -> list[Node]:
    """Directory positions up to the mesh's symmetry group.

    For a ``width × height`` mesh, the reflective symmetries make many
    directory placements equivalent; this returns one representative per
    orbit: the quadrant folded by the x- and y-reflections, plus — only
    for square meshes, whose symmetry group also contains the diagonal
    reflection — the fold onto ``x ≥ y`` (the "octant").  The Figure-4
    experiment grids (``examples/queue_sizing.py``,
    ``benchmarks/bench_fig4_queue_sizes.py``,
    ``benchmarks/bench_experiments.py``) all iterate exactly this list, so
    the drivers stay byte-comparable.
    """
    positions = []
    for y in range((height + 1) // 2):
        for x in range((width + 1) // 2):
            if width == height and x < y:
                continue  # diagonal reflection folds (x, y) onto (y, x)
            positions.append((x, y))
    return positions
