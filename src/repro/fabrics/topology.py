"""Fabric topologies: the abstract :class:`Topology` interface and its
mesh / torus / ring implementations.

A topology describes the *shape* of an interconnect: its nodes, the ports
through which each node reaches its neighbours, a canonical directory
placement per symmetry orbit (:meth:`Topology.probe_positions`), and a
factory for its deadlock-aware routing functions (:meth:`Topology.routing`).
The router builder (:mod:`repro.fabrics.fabric`) instantiates any topology
into xMAS primitives without knowing its shape — per-port input queues, a
route switch behind every queue, a fair merge per outgoing link.

Ports are opaque hashables: the 2D fabrics use :class:`Direction` members,
the ring uses plain ``"CW"`` / ``"CCW"`` strings — nothing in the generic
machinery assumes a 4-way :class:`Direction` anymore.

Wraparound fabrics (:class:`TorusTopology`, :class:`RingTopology`) carry a
*dateline* escape-VC scheme (:meth:`Topology.escape_vc_bit`): their wrap
links close the channel-dependence graph into a cycle, so dimension-ordered
routing alone is deadlock-prone; splitting every link class into a pre- and
post-dateline virtual channel (packets switch to the escape VC when they
cross the wrap link of the dimension they are travelling) breaks the cycle.
The fabric builder applies the bit per link when ``escape_vcs=True``.
"""

from __future__ import annotations

import enum
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..protocols.messages import Message
    from .routing import RoutingFunction

__all__ = [
    "Direction",
    "MeshTopology",
    "Node",
    "Port",
    "RingTopology",
    "Topology",
    "TorusTopology",
    "octant_positions",
]

Node = tuple[int, int]
Port = Hashable


class Direction(enum.Enum):
    """Link directions; +x is EAST, +y is SOUTH (row-major screen layout)."""

    NORTH = (0, -1)
    EAST = (1, 0)
    SOUTH = (0, 1)
    WEST = (-1, 0)

    @property
    def dx(self) -> int:
        return self.value[0]

    @property
    def dy(self) -> int:
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]

    @property
    def short(self) -> str:
        return self.name[0]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

# Canonical port order of the 2D fabrics (sorted by enum name, which is the
# order the original mesh builder used: EAST, NORTH, SOUTH, WEST).  Kept
# explicit so fabric queue names stay byte-stable.
_DIRECTIONS_BY_NAME = tuple(sorted(Direction, key=lambda d: d.name))


class Topology(ABC):
    """Abstract interconnect shape consumed by the generic fabric builder.

    Implementations must be frozen/hashable plain data (they ride inside
    fabric configs and builder closures) and must keep :meth:`nodes` and
    :meth:`ports` deterministically ordered — fabric element names and
    therefore encoding identity derive from that order.
    """

    # ---- shape -----------------------------------------------------------
    @abstractmethod
    def nodes(self) -> Iterator[Node]:
        """All nodes, in canonical (row-major) order."""

    @abstractmethod
    def node_count(self) -> int:
        """``len(list(self.nodes()))`` without the iteration."""

    @abstractmethod
    def ports(self, node: Node) -> tuple[Port, ...]:
        """The outgoing link ports of ``node``, in canonical order."""

    @abstractmethod
    def neighbour(self, node: Node, port: Port) -> Node | None:
        """The node reached from ``node`` through ``port`` (None = edge)."""

    @abstractmethod
    def opposite(self, port: Port) -> Port:
        """The port through which a neighbour sees the link back."""

    def port_tag(self, port: Port) -> str:
        """Short stable label used in fabric element names."""
        return port.short if isinstance(port, Direction) else str(port)

    def degree(self, node: Node) -> int:
        return len(self.ports(node))

    # ---- experiment support ---------------------------------------------
    @abstractmethod
    def probe_positions(self) -> list[Node]:
        """One directory placement per orbit of the topology's symmetry
        group — the grid axis the Figure-4 drivers iterate."""

    # ---- routing ---------------------------------------------------------
    @abstractmethod
    def routing(self, name: str | None = None) -> "RoutingFunction":
        """A deadlock-aware routing function ``(topology, node, message) ->
        port | None`` (``None`` = deliver locally).  ``name`` selects among
        the topology's algorithms (:meth:`routing_names`); default first."""

    def routing_names(self) -> tuple[str, ...]:
        """The algorithm names :meth:`routing` accepts (default first)."""
        return ("default",)

    def escape_vc_bit(self, node: Node, port: Port, message: "Message") -> int:
        """Dateline bit of the link ``node --port-->``: 1 once ``message``
        has crossed the wrap link of the dimension it is travelling.

        Only wraparound topologies have datelines; acyclic fabrics never
        need escape VCs.
        """
        raise NotImplementedError(f"{self} has no wrap links (no escape VCs)")


@dataclass(frozen=True)
class MeshTopology(Topology):
    """A ``width × height`` 2D mesh."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")

    def nodes(self) -> Iterator[Node]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def contains(self, node: Node) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbour(self, node: Node, direction: Direction) -> Node | None:
        x, y = node
        candidate = (x + direction.dx, y + direction.dy)
        return candidate if self.contains(candidate) else None

    def neighbours(self, node: Node) -> dict[Direction, Node]:
        result = {}
        for direction in Direction:
            other = self.neighbour(node, direction)
            if other is not None:
                result[direction] = other
        return result

    def ports(self, node: Node) -> tuple[Direction, ...]:
        return tuple(
            d for d in _DIRECTIONS_BY_NAME if self.neighbour(node, d) is not None
        )

    def opposite(self, port: Direction) -> Direction:
        return port.opposite

    def node_count(self) -> int:
        return self.width * self.height

    def probe_positions(self) -> list[Node]:
        """Directory positions up to the mesh's symmetry group.

        The reflective symmetries make many directory placements
        equivalent; this returns one representative per orbit: the quadrant
        folded by the x- and y-reflections, plus — only for square meshes,
        whose symmetry group also contains the diagonal reflection — the
        fold onto ``x ≥ y`` (the "octant").  The Figure-4 experiment grids
        (``examples/queue_sizing.py``,
        ``benchmarks/bench_fig4_queue_sizes.py``,
        ``benchmarks/bench_experiments.py``) all iterate exactly this list,
        so the drivers stay byte-comparable.
        """
        positions = []
        for y in range((self.height + 1) // 2):
            for x in range((self.width + 1) // 2):
                if self.width == self.height and x < y:
                    continue  # diagonal reflection folds (x, y) onto (y, x)
                positions.append((x, y))
        return positions

    def routing_names(self) -> tuple[str, ...]:
        return ("xy", "yx")

    def routing(self, name: str | None = None) -> "RoutingFunction":
        from .routing import as_routing_function, xy_routing, yx_routing

        table = {"xy": xy_routing, "yx": yx_routing, None: xy_routing}
        try:
            return as_routing_function(table[name])
        except KeyError:
            raise ValueError(
                f"unknown mesh routing {name!r} (have {self.routing_names()})"
            ) from None

    def __str__(self) -> str:
        return f"{self.width}x{self.height} mesh"


def _ring_step(cur: int, dst: int, n: int, positive: Port, negative: Port):
    """One dimension-ordered hop around an ``n``-ring (tie breaks positive).

    The choice is stable along the path: moving in the chosen direction
    strictly shrinks the forward distance, so a packet never flips
    direction mid-ring (the dateline arithmetic in :func:`_dateline_bit`
    relies on this).
    """
    forward = (dst - cur) % n
    return positive if 2 * forward <= n else negative


def _dateline_bit(start: int, dst: int, n: int, cur: int, positive: bool) -> int:
    """1 iff the ``start → dst`` journey has crossed the ring's wrap link
    by the time it finishes the hop leaving coordinate ``cur``.

    Travelling positive, the journey wraps at all iff ``start > dst``; the
    coordinate after this hop is then past the dateline iff it has landed
    in ``[0, dst]``.  Mirror-image for negative travel.
    """
    if positive:
        after = (cur + 1) % n
        return 1 if (start > dst and after <= dst) else 0
    after = (cur - 1) % n
    return 1 if (start < dst and after >= dst) else 0


@dataclass(frozen=True)
class TorusTopology(Topology):
    """A ``width × height`` 2D torus: the mesh plus wraparound links.

    Every node has all four ports; dimension-ordered routing takes the
    shorter way around each ring (ties break EAST/SOUTH).  The wrap links
    make the channel-dependence graph cyclic, so the fabric is only
    deadlock-free under the dateline escape-VC scheme
    (:meth:`escape_vc_bit` + ``escape_vcs=True`` in the fabric config).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(
                "torus dimensions must be >= 2 (a 1-wide torus is a ring; "
                "use RingTopology)"
            )

    def nodes(self) -> Iterator[Node]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def node_count(self) -> int:
        return self.width * self.height

    def ports(self, node: Node) -> tuple[Direction, ...]:
        return _DIRECTIONS_BY_NAME

    def neighbour(self, node: Node, direction: Direction) -> Node:
        x, y = node
        return ((x + direction.dx) % self.width, (y + direction.dy) % self.height)

    def opposite(self, port: Direction) -> Direction:
        return port.opposite

    def probe_positions(self) -> list[Node]:
        # A torus is vertex-transitive: every placement is equivalent.
        return [(0, 0)]

    def routing_names(self) -> tuple[str, ...]:
        return ("dor",)

    def routing(self, name: str | None = None) -> "RoutingFunction":
        if name not in (None, "dor"):
            raise ValueError(
                f"unknown torus routing {name!r} (have {self.routing_names()})"
            )
        return torus_routing

    def escape_vc_bit(self, node: Node, port: Direction, message: "Message") -> int:
        (sx, sy), (tx, ty) = message.src, message.dst
        x, y = node
        if port in (Direction.EAST, Direction.WEST):
            return _dateline_bit(sx, tx, self.width, x, port is Direction.EAST)
        return _dateline_bit(sy, ty, self.height, y, port is Direction.SOUTH)

    def __str__(self) -> str:
        return f"{self.width}x{self.height} torus"


def torus_routing(topology: TorusTopology, node: Node, message: "Message"):
    """Wraparound dimension-ordered routing: x-ring first, then y-ring."""
    x, y = node
    tx, ty = message.dst
    if x != tx:
        return _ring_step(x, tx, topology.width, Direction.EAST, Direction.WEST)
    if y != ty:
        return _ring_step(y, ty, topology.height, Direction.SOUTH, Direction.NORTH)
    return None


@dataclass(frozen=True)
class RingTopology(Topology):
    """An ``n``-node bidirectional ring — the degenerate (1D) torus.

    Nodes are ``(i, 0)`` so protocol automata and messages keep their 2D
    coordinates; ports are the plain strings ``"CW"`` (+1) and ``"CCW"``
    (-1), exercising the port-agnostic side of the fabric builder.
    """

    n_nodes: int

    CW = "CW"
    CCW = "CCW"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("a ring needs at least two nodes")

    def nodes(self) -> Iterator[Node]:
        for i in range(self.n_nodes):
            yield (i, 0)

    def node_count(self) -> int:
        return self.n_nodes

    def ports(self, node: Node) -> tuple[str, ...]:
        return (self.CCW, self.CW)

    def neighbour(self, node: Node, port: str) -> Node:
        step = 1 if port == self.CW else -1
        return ((node[0] + step) % self.n_nodes, 0)

    def opposite(self, port: str) -> str:
        return self.CCW if port == self.CW else self.CW

    def probe_positions(self) -> list[Node]:
        # Rotationally symmetric: one orbit.
        return [(0, 0)]

    def routing_names(self) -> tuple[str, ...]:
        return ("shortest",)

    def routing(self, name: str | None = None) -> "RoutingFunction":
        if name not in (None, "shortest"):
            raise ValueError(
                f"unknown ring routing {name!r} (have {self.routing_names()})"
            )
        return ring_routing

    def escape_vc_bit(self, node: Node, port: str, message: "Message") -> int:
        return _dateline_bit(
            message.src[0], message.dst[0], self.n_nodes, node[0], port == self.CW
        )

    def __str__(self) -> str:
        return f"{self.n_nodes}-ring"


def ring_routing(topology: RingTopology, node: Node, message: "Message"):
    """Shortest-way-around ring routing (ties break clockwise)."""
    x, tx = node[0], message.dst[0]
    if x == tx:
        return None
    return _ring_step(x, tx, topology.n_nodes, RingTopology.CW, RingTopology.CCW)


def octant_positions(width: int, height: int) -> list[Node]:
    """Deprecated mesh-only alias of :meth:`MeshTopology.probe_positions`.

    Kept so old drivers keep producing byte-identical probe lists; new code
    should ask the topology (any topology) for its probe positions.
    """
    warnings.warn(
        "octant_positions(width, height) is deprecated; use "
        "MeshTopology(width, height).probe_positions()",
        DeprecationWarning,
        stacklevel=2,
    )
    return MeshTopology(width, height).probe_positions()
