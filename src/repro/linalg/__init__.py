"""Exact sparse rational linear algebra.

This subpackage is the numeric substrate of the invariant generator: flow
matrices are built as lists of :class:`SparseVector` rows and reduced with
:func:`eliminate_columns` / :func:`rref`.  All arithmetic uses
:class:`fractions.Fraction`, so results are exact.
"""

from .matrix import eliminate_columns, rank, row_space_contains, rref
from .vector import SparseVector

__all__ = [
    "SparseVector",
    "rref",
    "eliminate_columns",
    "row_space_contains",
    "rank",
]
