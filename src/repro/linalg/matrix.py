"""Sparse exact Gaussian elimination.

Two kernels are provided on lists of :class:`~repro.linalg.vector.SparseVector`
rows:

* :func:`rref` — reduced row-echelon form with a caller-controlled column
  (pivot preference) order, used to canonicalise invariant sets.
* :func:`eliminate_columns` — project the row space onto the complement of a
  set of columns.  This is the core operation of Chatterjee–Kishinevsky
  invariant generation: transfer-count (λ) and transition-count (κ) columns
  are swept away and the surviving rows are invariants over queue occupancy
  and automaton-state columns only.

Both kernels maintain the Gauss–Jordan invariant that every pivot column
occurs in exactly one row, which makes the "rows free of the eliminated
columns span exactly the eliminable subspace of the row space" argument
immediate.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Mapping, Sequence

from .vector import Rational, SparseVector

__all__ = ["rref", "eliminate_columns", "row_space_contains", "rank"]


def _reduce_against(row: SparseVector, pivots: dict[int, SparseVector]) -> None:
    """Subtract pivot rows from ``row`` until it has no pivot-column support.

    Pivot rows never contain other pivot columns (Gauss–Jordan invariant), so
    one pass over a snapshot of the support suffices.
    """
    for col in list(row.columns()):
        coeff = row[col]
        if not coeff:
            continue
        pivot_row = pivots.get(col)
        if pivot_row is not None:
            row.add_scaled_inplace(pivot_row, -coeff)


def _install_pivot(
    row: SparseVector, pivot_col: int, pivots: dict[int, SparseVector]
) -> None:
    """Normalise ``row`` on ``pivot_col`` and back-substitute into ``pivots``."""
    row.scale_inplace(Fraction(1) / row[pivot_col])
    for other in pivots.values():
        coeff = other[pivot_col]
        if coeff:
            other.add_scaled_inplace(row, -coeff)
    pivots[pivot_col] = row


def rref(
    rows: Iterable[SparseVector],
    pivot_key: Callable[[int], object] | None = None,
) -> tuple[list[SparseVector], list[int]]:
    """Reduced row-echelon form of ``rows``.

    Parameters
    ----------
    rows:
        The matrix rows; the inputs are not mutated.
    pivot_key:
        Sort key ranking candidate pivot columns within a row; the smallest
        key wins.  Defaults to the column index itself, giving the textbook
        leftmost-pivot RREF.

    Returns
    -------
    (reduced_rows, pivot_columns):
        ``reduced_rows`` sorted by pivot key, each scaled to a unit pivot;
        ``pivot_columns[i]`` is the pivot column of ``reduced_rows[i]``.
    """
    key = pivot_key if pivot_key is not None else (lambda col: col)
    pivots: dict[int, SparseVector] = {}
    for original in rows:
        row = original.copy()
        _reduce_against(row, pivots)
        if not row:
            continue
        pivot_col = min(row.columns(), key=key)
        _install_pivot(row, pivot_col, pivots)
    ordered = sorted(pivots.items(), key=lambda item: key(item[0]))
    return [row for _, row in ordered], [col for col, _ in ordered]


def eliminate_columns(
    rows: Iterable[SparseVector], eliminate: frozenset[int] | set[int]
) -> list[SparseVector]:
    """Project the row space of ``rows`` away from the ``eliminate`` columns.

    Returns a basis (in RREF over the kept columns) of the subspace of the
    row space whose members have zero coefficients on every eliminated
    column.  For flow matrices this is exactly the set of independent
    invariants that mention only state variables and queue occupancies.
    """
    pivots: dict[int, SparseVector] = {}
    leftover: list[SparseVector] = []
    for original in rows:
        row = original.copy()
        _reduce_against(row, pivots)
        if not row:
            continue
        elim_support = [col for col in row.columns() if col in eliminate]
        if elim_support:
            _install_pivot(row, min(elim_support), pivots)
        else:
            leftover.append(row)
    reduced, _ = rref(leftover)
    return reduced


def row_space_contains(
    rows: Sequence[SparseVector], candidate: SparseVector
) -> bool:
    """True iff ``candidate`` is a linear combination of ``rows``.

    Test helper: used to check that generated invariants lie in the flow
    matrix row space and that published invariants are derivable.
    """
    reduced, _ = rref(rows)
    pivots = {min(r.columns()): r for r in reduced}
    probe = candidate.copy()
    _reduce_against(probe, pivots)
    # One pass may be insufficient for an arbitrary pivot layout; rref rows
    # satisfy the Gauss-Jordan invariant, so a second pass is a no-op check.
    return not probe


def rank(rows: Iterable[SparseVector]) -> int:
    """Rank of the matrix formed by ``rows``."""
    reduced, _ = rref(rows)
    return len(reduced)


def evaluate(row: SparseVector, assignment: Mapping[int, Rational]) -> Fraction:
    """Evaluate a row as a linear form over ``assignment`` (missing = 0)."""
    return row.dot(assignment)
