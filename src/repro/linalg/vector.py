"""Sparse rational vectors.

A :class:`SparseVector` maps integer column indices to non-zero
:class:`~fractions.Fraction` coefficients.  It is the row representation used
throughout the invariant-generation pipeline, where flow matrices are
extremely sparse (a handful of non-zeros per equation over tens of thousands
of columns).

All arithmetic is exact; zeros are never stored.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Iterator, Mapping

Rational = Fraction | int

__all__ = ["SparseVector"]


class SparseVector:
    """An immutable-by-convention sparse vector of exact rationals.

    The underlying storage is a plain ``dict`` for speed; mutating helpers
    (``add_scaled_inplace``) are clearly named and used only inside the
    elimination kernels.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Mapping[int, Rational] | None = None):
        self.entries: dict[int, Fraction] = {}
        if entries:
            for col, value in entries.items():
                value = Fraction(value)
                if value:
                    self.entries[col] = value

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, col: int) -> "SparseVector":
        """The standard basis vector with a 1 in position ``col``."""
        return cls({col: Fraction(1)})

    def copy(self) -> "SparseVector":
        fresh = SparseVector()
        fresh.entries = dict(self.entries)
        return fresh

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[int, Fraction]]:
        return iter(self.entries.items())

    def __contains__(self, col: int) -> bool:
        return col in self.entries

    def __getitem__(self, col: int) -> Fraction:
        return self.entries.get(col, Fraction(0))

    def get(self, col: int, default: Rational = 0) -> Fraction:
        return self.entries.get(col, Fraction(default))

    def columns(self) -> Iterable[int]:
        return self.entries.keys()

    def support(self) -> frozenset[int]:
        """The set of columns holding non-zero coefficients."""
        return frozenset(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(frozenset(self.entries.items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{c}: {v}" for c, v in sorted(self.entries.items()))
        return f"SparseVector({{{body}}})"

    # ------------------------------------------------------------------
    # Arithmetic (pure)
    # ------------------------------------------------------------------
    def scaled(self, factor: Rational) -> "SparseVector":
        factor = Fraction(factor)
        if not factor:
            return SparseVector()
        fresh = SparseVector()
        fresh.entries = {c: v * factor for c, v in self.entries.items()}
        return fresh

    def __add__(self, other: "SparseVector") -> "SparseVector":
        result = self.copy()
        result.add_scaled_inplace(other, Fraction(1))
        return result

    def __sub__(self, other: "SparseVector") -> "SparseVector":
        result = self.copy()
        result.add_scaled_inplace(other, Fraction(-1))
        return result

    def __neg__(self) -> "SparseVector":
        return self.scaled(-1)

    def dot(self, assignment: Mapping[int, Rational]) -> Fraction:
        """Evaluate the linear form at ``assignment`` (missing columns = 0)."""
        total = Fraction(0)
        for col, coeff in self.entries.items():
            value = assignment.get(col)
            if value is not None:
                total += coeff * Fraction(value)
        return total

    # ------------------------------------------------------------------
    # Arithmetic (in place, used by elimination kernels)
    # ------------------------------------------------------------------
    def add_scaled_inplace(self, other: "SparseVector", factor: Rational) -> None:
        """``self += factor * other`` without allocating a new vector."""
        factor = Fraction(factor)
        if not factor:
            return
        entries = self.entries
        for col, value in other.entries.items():
            updated = entries.get(col, Fraction(0)) + value * factor
            if updated:
                entries[col] = updated
            else:
                entries.pop(col, None)

    def scale_inplace(self, factor: Rational) -> None:
        factor = Fraction(factor)
        if factor == 1:
            return
        if not factor:
            self.entries.clear()
            return
        for col in self.entries:
            self.entries[col] *= factor

    # ------------------------------------------------------------------
    # Normalisation
    # ------------------------------------------------------------------
    def normalized_integer(self) -> "SparseVector":
        """Scale to coprime integer coefficients with a canonical sign.

        The sign convention makes the coefficient of the smallest-index
        column positive, which gives a unique representative per ray and
        keeps printed invariants deterministic.
        """
        if not self.entries:
            return SparseVector()
        denominator_lcm = 1
        for value in self.entries.values():
            denominator_lcm = denominator_lcm * value.denominator // gcd(
                denominator_lcm, value.denominator
            )
        numerator_gcd = 0
        for value in self.entries.values():
            numerator_gcd = gcd(numerator_gcd, abs(value.numerator * (denominator_lcm // value.denominator)))
        factor = Fraction(denominator_lcm, numerator_gcd)
        result = self.scaled(factor)
        lead_col = min(result.entries)
        if result.entries[lead_col] < 0:
            result.scale_inplace(-1)
        return result
