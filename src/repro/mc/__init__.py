"""Explicit-state model checking — the reproduction's UPPAAL substitute.

* :class:`Executable` — executable xMAS semantics (endpoint-to-endpoint
  atomic packet moves, rotating-queue stalls).
* :class:`Explorer` — BFS reachability, deadlock detection, SMT-witness
  confirmation with counterexample traces.
* :func:`check_handshake_composition` — the paper's bus-abstraction
  baseline: protocol automata composed by synchronous rendezvous.
"""

from .executable import Executable, Step
from .explorer import ExplorationResult, Explorer
from .handshake import HandshakeResult, check_handshake_composition
from .simulator import automaton_states_of, occupancy_of, random_run
from .state import ExecState, StateSpace

__all__ = [
    "Executable",
    "Explorer",
    "ExplorationResult",
    "ExecState",
    "StateSpace",
    "Step",
    "HandshakeResult",
    "check_handshake_composition",
    "random_run",
    "occupancy_of",
    "automaton_states_of",
]
