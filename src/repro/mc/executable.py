"""Executable semantics of xMAS networks.

The model is the standard endpoint-to-endpoint abstraction for
store-and-forward xMAS analysis: state lives only in queues and automata;
a *step* moves one packet atomically from a storage/production endpoint
(source, queue head, automaton output) through the stateless combinational
fabric (functions, switches, merges, forks, joins) into the next
storage/consumption endpoint (queue, sink, automaton input).

Step kinds:

* ``inject`` — a fair source emits one of its colors;
* ``advance`` — a queue forwards its head packet;
* ``rotate`` — a ``rotating`` queue moves an un-deliverable head to its
  tail (the paper's "stalled and moved to the end of the queue").

Delivery is resolved recursively; non-determinism (an automaton with
several enabled transitions, a join partner choice) yields several
successor states.  Fork transfers are synchronous: both branches must be
deliverable in the same step.

The abstraction is deadlock-equivalent to the cycle-accurate semantics for
networks whose combinational paths hold no packets between clock edges —
true of every xMAS network by construction (channels are wires).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..xmas import (
    Automaton,
    Channel,
    Fork,
    Function,
    Join,
    Merge,
    Network,
    Queue,
    Sink,
    Source,
    Switch,
)
from .state import ExecState, StateSpace

__all__ = ["Executable", "Step"]

Color = Hashable

#: (kind, subject, detail) — e.g. ("inject", "src0", "token"),
#: ("advance", "q_0_0_S", "getX[...]"), ("rotate", "ej_1_1", "putX[...]").
Step = tuple[str, str, str]


class Executable:
    """Successor-state generator for a network."""

    def __init__(self, network: Network):
        network.validate()
        self.network = network
        self.space = StateSpace(network)

    # ------------------------------------------------------------------
    # Delivery through the stateless fabric
    # ------------------------------------------------------------------
    def _deliver(
        self, channel: Channel, color: Color, state: ExecState, depth: int = 0
    ) -> list[ExecState]:
        """All states reachable by pushing ``color`` into ``channel`` now.

        An empty list means the packet cannot currently be accepted.
        """
        if depth > 64:  # combinational cycles are modelling errors
            raise RuntimeError(
                f"delivery recursion exceeded on channel {channel.name}; "
                "is there a queue-free cycle?"
            )
        target = channel.target.owner
        port = channel.target

        if isinstance(target, Queue):
            index = self.space.queue_index[target.name]
            contents = state.queue_contents[index]
            if len(contents) >= target.size:
                return []
            return [self.space.with_queue(state, index, contents + (color,))]

        if isinstance(target, Sink):
            return [state] if target.fair else []

        if isinstance(target, Function):
            return self._deliver(
                self.network.channel_of(target.o), target.fn(color), state, depth + 1
            )

        if isinstance(target, Switch):
            out = target.outs[target.route(color)]
            return self._deliver(
                self.network.channel_of(out), color, state, depth + 1
            )

        if isinstance(target, Merge):
            return self._deliver(
                self.network.channel_of(target.o), color, state, depth + 1
            )

        if isinstance(target, Fork):
            results = []
            for first in self._deliver(
                self.network.channel_of(target.a), target.fn_a(color), state, depth + 1
            ):
                results.extend(
                    self._deliver(
                        self.network.channel_of(target.b),
                        target.fn_b(color),
                        first,
                        depth + 1,
                    )
                )
            return results

        if isinstance(target, Join):
            return self._deliver_join(target, port.name, color, state, depth)

        if isinstance(target, Automaton):
            return self._deliver_automaton(target, port.name, color, state, depth)

        raise TypeError(f"undeliverable target {type(target).__name__}")

    def _deliver_automaton(
        self, automaton: Automaton, port_name: str, color: Color,
        state: ExecState, depth: int,
    ) -> list[ExecState]:
        index = self.space.automaton_index[automaton.name]
        local = state.automaton_states[index]
        results = []
        for transition in automaton.transitions_from(local):
            if transition.in_port != port_name or not transition.accepts(color):
                continue
            moved = self.space.with_automaton(state, index, transition.target)
            output = transition.output(color)
            if output is None:
                results.append(moved)
                continue
            out_port, produced = output
            out_channel = self.network.channel_of(automaton.port(out_port))
            results.extend(self._deliver(out_channel, produced, moved, depth + 1))
        return results

    def _deliver_join(
        self, join: Join, port_name: str, color: Color,
        state: ExecState, depth: int,
    ) -> list[ExecState]:
        """A join fires only with a simultaneous partner packet.

        The partner input must be fed directly by a queue or a source
        (richer feeding structures would require speculative evaluation of
        the combinational fabric; the case-study networks never need it).
        """
        other_port = join.b if port_name == "a" else join.a
        partner_channel = self.network.channel_of(other_port)
        feeder = partner_channel.initiator.owner
        out_channel = self.network.channel_of(join.o)

        def combined(da_db: tuple[Color, Color]) -> Color:
            da, db = da_db
            return join.combine(da, db)

        def pair(partner_color: Color) -> tuple[Color, Color]:
            if port_name == "a":
                return (color, partner_color)
            return (partner_color, color)

        results: list[ExecState] = []
        if isinstance(feeder, Source):
            for partner_color in sorted(feeder.colors, key=repr):
                results.extend(
                    self._deliver(
                        out_channel, combined(pair(partner_color)), state, depth + 1
                    )
                )
            return results
        if isinstance(feeder, Queue):
            index = self.space.queue_index[feeder.name]
            contents = state.queue_contents[index]
            if not contents:
                return []
            partner_color = contents[0]
            dequeued = self.space.with_queue(state, index, contents[1:])
            return self._deliver(
                out_channel, combined(pair(partner_color)), dequeued, depth + 1
            )
        raise NotImplementedError(
            f"join {join.name}: partner input fed by "
            f"{type(feeder).__name__}; only Queue/Source feeders are supported"
        )

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def successors(self, state: ExecState) -> Iterator[tuple[Step, ExecState]]:
        """All (step, next state) pairs, including rotations."""
        yield from self.progress_successors(state)
        yield from self.rotation_successors(state)

    def progress_successors(
        self, state: ExecState
    ) -> Iterator[tuple[Step, ExecState]]:
        for source in self.network.sources():
            channel = self.network.channel_of(source.o)
            for color in sorted(source.colors, key=repr):
                for result in self._deliver(channel, color, state):
                    yield ("inject", source.name, repr(color)), result
        for queue in self.space.queues:
            index = self.space.queue_index[queue.name]
            contents = state.queue_contents[index]
            if not contents:
                continue
            head = contents[0]
            dequeued = self.space.with_queue(state, index, contents[1:])
            channel = self.network.channel_of(queue.o)
            for result in self._deliver(channel, head, dequeued):
                yield ("advance", queue.name, repr(head)), result

    def rotation_successors(
        self, state: ExecState
    ) -> Iterator[tuple[Step, ExecState]]:
        """Head-to-tail moves of rotating queues with stuck heads."""
        for queue in self.space.queues:
            if not queue.rotating:
                continue
            index = self.space.queue_index[queue.name]
            contents = state.queue_contents[index]
            if len(contents) < 2:
                continue  # rotating a singleton is a no-op
            head = contents[0]
            dequeued = self.space.with_queue(state, index, contents[1:])
            channel = self.network.channel_of(queue.o)
            if self._deliver(channel, head, dequeued):
                continue  # head can make progress; rotation not needed
            rotated = contents[1:] + (contents[0],)
            yield ("rotate", queue.name, repr(head)), self.space.with_queue(
                state, index, rotated
            )

    # ------------------------------------------------------------------
    # Deadlock predicate
    # ------------------------------------------------------------------
    def is_dead(self, state: ExecState) -> bool:
        """No progress step is enabled anywhere in the rotation closure."""
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for _, _next in self.progress_successors(current):
                return False
            for _, rotated in self.rotation_successors(current):
                if rotated not in seen:
                    seen.add(rotated)
                    frontier.append(rotated)
        return True
