"""Breadth-first reachability over the executable semantics.

This is the reproduction's stand-in for the paper's UPPAAL runs: it
confirms (on small configurations) that deadlock candidates reported by
the SMT pipeline are actually reachable, and that verified configurations
have no reachable deadlock within an exhaustive (or bounded) search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..xmas import Network
from .executable import Executable, Step
from .state import ExecState

__all__ = ["ExplorationResult", "Explorer"]

Color = Hashable


@dataclass
class ExplorationResult:
    """Outcome of a (possibly bounded) reachability run."""

    states_explored: int
    exhausted: bool  # True iff the full reachable space was covered
    deadlock: ExecState | None = None
    trace: list[Step] = field(default_factory=list)

    @property
    def found_deadlock(self) -> bool:
        return self.deadlock is not None


class Explorer:
    """BFS reachability with deadlock detection and witness matching."""

    def __init__(self, network: Network):
        self.executable = Executable(network)
        self.space = self.executable.space

    # ------------------------------------------------------------------
    def find_deadlock(
        self,
        max_states: int = 200_000,
        stop_predicate: Callable[[ExecState], bool] | None = None,
    ) -> ExplorationResult:
        """Search for a dead state (optionally a specific one).

        ``stop_predicate`` narrows the search: only states satisfying it
        are tested for deadness (used to confirm a particular SMT witness
        shape).  Returns the trace of steps from the initial state.
        """
        executable = self.executable
        initial = self.space.initial_state()
        parent: dict[ExecState, tuple[ExecState, Step] | None] = {initial: None}
        frontier: deque[ExecState] = deque([initial])
        explored = 0
        while frontier:
            state = frontier.popleft()
            explored += 1
            candidate = stop_predicate is None or stop_predicate(state)
            if candidate and executable.is_dead(state):
                return ExplorationResult(
                    states_explored=explored,
                    exhausted=False,
                    deadlock=state,
                    trace=self._trace(parent, state),
                )
            for step, successor in executable.successors(state):
                if successor not in parent:
                    parent[successor] = (state, step)
                    frontier.append(successor)
            if len(parent) > max_states:
                return ExplorationResult(states_explored=explored, exhausted=False)
        return ExplorationResult(states_explored=explored, exhausted=True)

    def confirm_witness(
        self,
        automaton_states: dict[str, str],
        queue_contents: dict[str, dict[Color, int]],
        max_states: int = 200_000,
    ) -> ExplorationResult:
        """Search for a *dead* reachable state matching an SMT witness.

        Matching is up to queue-content multisets (the SMT model has no
        packet order) and exact automaton states.
        """

        def matches(state: ExecState) -> bool:
            for name, expected in automaton_states.items():
                index = self.space.automaton_index[name]
                if state.automaton_states[index] != expected:
                    return False
            for name, expected_multiset in queue_contents.items():
                index = self.space.queue_index[name]
                actual: dict[Color, int] = {}
                for color in state.queue_contents[index]:
                    actual[color] = actual.get(color, 0) + 1
                if actual != {c: n for c, n in expected_multiset.items() if n}:
                    return False
            return True

        return self.find_deadlock(max_states=max_states, stop_predicate=matches)

    # ------------------------------------------------------------------
    def _trace(
        self,
        parent: dict[ExecState, tuple[ExecState, Step] | None],
        state: ExecState,
    ) -> list[Step]:
        steps: list[Step] = []
        cursor: ExecState | None = state
        while cursor is not None:
            entry = parent[cursor]
            if entry is None:
                break
            cursor, step = entry
            steps.append(step)
        steps.reverse()
        return steps
