"""Synchronous-handshake composition of automata — the paper's baseline.

"When ignoring the communication fabric and considering the composition
obtained by synchronous handshaking, the two automata are deadlock-free."
(Section 1.)  The baseline is realised as a *queue-free ether network*:
protocol automata keep their token sources but exchange packets through
purely combinational fabric (merge + destination switch).  Under the
executable semantics a packet emission then completes only if the receiver
consumes it in the same atomic step — rendezvous — and consume-and-emit
transitions cascade naturally (cache consumes ``inv`` and emits ``putX``,
which the directory consumes and answers with ``ack``, which the cache
consumes, all in one synchronous chain).

Because the composition has no queues, its state is just the automaton
state vector and exhaustive search is instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xmas import Network
from .explorer import Explorer

__all__ = ["HandshakeResult", "check_handshake_composition"]


@dataclass
class HandshakeResult:
    deadlock_free: bool
    states_explored: int
    deadlock: dict[str, str] | None = None
    trace: list = field(default_factory=list)


def check_handshake_composition(network: Network) -> HandshakeResult:
    """Exhaustive deadlock search over a queue-free composition network.

    ``network`` must contain no queues (build it with an ether topology,
    e.g. :func:`repro.protocols.abstract_mi_ether`); a network with queues
    is not a handshake composition and is rejected.
    """
    if network.queues():
        raise ValueError(
            "handshake composition must be queue-free; "
            f"{network.name!r} has {len(network.queues())} queues"
        )
    explorer = Explorer(network)
    result = explorer.find_deadlock(max_states=1_000_000)
    if not result.exhausted and not result.found_deadlock:
        raise RuntimeError("handshake composition search did not exhaust")
    if result.found_deadlock:
        assert result.deadlock is not None
        states = {
            name: state
            for name, state in zip(
                explorer.space.automaton_names, result.deadlock.automaton_states
            )
        }
        return HandshakeResult(
            deadlock_free=False,
            states_explored=result.states_explored,
            deadlock=states,
            trace=result.trace,
        )
    return HandshakeResult(
        deadlock_free=True, states_explored=result.states_explored
    )
