"""Random-walk simulation over the executable semantics.

A cheap dynamic-validation tool: walk the successor relation with a seeded
RNG and hand every visited state to callers.  The property-based test
suite uses it to check that statically derived invariants hold along real
executions and that color derivation covers every packet that actually
materialises.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Iterator

from ..xmas import Network
from .executable import Executable, Step
from .state import ExecState

__all__ = ["random_run", "occupancy_of", "automaton_states_of"]

Color = Hashable


def random_run(
    network: Network,
    steps: int,
    seed: int = 0,
    observer: Callable[[ExecState], None] | None = None,
) -> Iterator[tuple[Step, ExecState]]:
    """Yield ``steps`` random (step, state) pairs starting from the initial
    state.  Stops early in states without successors."""
    executable = Executable(network)
    rng = random.Random(seed)
    state = executable.space.initial_state()
    if observer is not None:
        observer(state)
    for _ in range(steps):
        successors = list(executable.successors(state))
        if not successors:
            return
        step, state = rng.choice(successors)
        if observer is not None:
            observer(state)
        yield step, state


def occupancy_of(network: Network, state: ExecState) -> dict[tuple[str, Color], int]:
    """Queue occupancies per (queue name, color) — the ``#q.d`` valuation."""
    executable_space = Executable(network).space
    result: dict[tuple[str, Color], int] = {}
    for name, contents in zip(executable_space.queue_names, state.queue_contents):
        for color in contents:
            result[(name, color)] = result.get((name, color), 0) + 1
    return result


def automaton_states_of(network: Network, state: ExecState) -> dict[str, str]:
    space = Executable(network).space
    return dict(zip(space.automaton_names, state.automaton_states))
