"""Global states of the executable xMAS semantics.

A state is the pair (automaton states, queue contents); everything else in
an xMAS network is stateless.  States are plain tuples, hashable and cheap
to copy, because the explorer stores millions of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..xmas import Network

__all__ = ["ExecState", "StateSpace"]

Color = Hashable


@dataclass(frozen=True)
class ExecState:
    """An immutable global configuration."""

    automaton_states: tuple[str, ...]
    queue_contents: tuple[tuple[Color, ...], ...]

    def describe(self, space: "StateSpace") -> str:
        lines = []
        for name, state in zip(space.automaton_names, self.automaton_states):
            lines.append(f"{name}={state}")
        for name, contents in zip(space.queue_names, self.queue_contents):
            if contents:
                lines.append(f"{name}={list(contents)!r}")
        return ", ".join(lines)


class StateSpace:
    """Index maps between a network and the tuple layout of its states."""

    def __init__(self, network: Network):
        self.network = network
        self.automata = sorted(network.automata(), key=lambda a: a.name)
        self.queues = sorted(network.queues(), key=lambda q: q.name)
        self.automaton_names = [a.name for a in self.automata]
        self.queue_names = [q.name for q in self.queues]
        self.automaton_index = {a.name: i for i, a in enumerate(self.automata)}
        self.queue_index = {q.name: i for i, q in enumerate(self.queues)}

    def initial_state(self) -> ExecState:
        return ExecState(
            automaton_states=tuple(a.initial for a in self.automata),
            queue_contents=tuple(() for _ in self.queues),
        )

    def with_automaton(
        self, state: ExecState, index: int, new_local_state: str
    ) -> ExecState:
        states = list(state.automaton_states)
        states[index] = new_local_state
        return ExecState(tuple(states), state.queue_contents)

    def with_queue(
        self, state: ExecState, index: int, contents: tuple[Color, ...]
    ) -> ExecState:
        queues = list(state.queue_contents)
        queues[index] = contents
        return ExecState(state.automaton_states, tuple(queues))
