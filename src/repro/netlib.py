"""Small ready-made networks used by examples, tests and benchmarks.

The centrepiece is :func:`running_example` — Figure 1 of the paper: two
automata S and T connected through two queues.  S injects requests and
consumes acknowledgments; T consumes requests and injects acknowledgments.
Injection is triggered by local fair token sources, exactly as the paper's
semantics require (every transition is triggered by an in-channel packet).
"""

from __future__ import annotations

from dataclasses import dataclass

from .xmas import Automaton, Network, NetworkBuilder, Queue, Transition

__all__ = ["RunningExample", "running_example", "token_ring", "producer_consumer"]

TOKEN = "token"
REQ = "req"
ACK = "ack"


@dataclass
class RunningExample:
    """Handles into the Figure-1 network."""

    network: Network
    sender: Automaton
    receiver: Automaton
    q_req: Queue
    q_ack: Queue


def running_example(queue_size: int = 2) -> RunningExample:
    """Figure 1: automata S and T connected by two xMAS queues.

    ``S``: s0 --req!--> s1, s1 --ack?--> s0.
    ``T``: t0 --req?--> t1, t1 --ack!--> t0.
    """
    builder = NetworkBuilder("running-example")
    q_req = builder.queue("q0", size=queue_size)
    q_ack = builder.queue("q1", size=queue_size)
    src_s = builder.source("srcS", colors={TOKEN})
    src_t = builder.source("srcT", colors={TOKEN})

    sender = builder.automaton(
        "S",
        states=["s0", "s1"],
        initial="s0",
        in_ports=["token", "ack_in"],
        out_ports=["req_out"],
        transitions=[
            Transition(
                name="req!",
                origin="s0",
                target="s1",
                in_port="token",
                out_port="req_out",
                produce=lambda _d: REQ,
            ),
            Transition(
                name="ack?",
                origin="s1",
                target="s0",
                in_port="ack_in",
                guard=lambda d: d == ACK,
            ),
        ],
    )
    receiver = builder.automaton(
        "T",
        states=["t0", "t1"],
        initial="t0",
        in_ports=["req_in", "token"],
        out_ports=["ack_out"],
        transitions=[
            Transition(
                name="req?",
                origin="t0",
                target="t1",
                in_port="req_in",
                guard=lambda d: d == REQ,
            ),
            Transition(
                name="ack!",
                origin="t1",
                target="t0",
                in_port="token",
                out_port="ack_out",
                produce=lambda _d: ACK,
            ),
        ],
    )

    builder.connect(src_s.o, sender.port("token"))
    builder.connect(src_t.o, receiver.port("token"))
    builder.connect(sender.port("req_out"), q_req.i, name="s_to_q0")
    builder.connect(q_req.o, receiver.port("req_in"), name="q0_to_t")
    builder.connect(receiver.port("ack_out"), q_ack.i, name="t_to_q1")
    builder.connect(q_ack.o, sender.port("ack_in"), name="q1_to_s")
    network = builder.build()
    return RunningExample(network, sender, receiver, q_req, q_ack)


def producer_consumer(queue_size: int = 2) -> Network:
    """A source feeding a sink through one queue — the smallest live net."""
    builder = NetworkBuilder("producer-consumer")
    src = builder.source("src", colors={"pkt"})
    q = builder.queue("q", size=queue_size)
    snk = builder.sink("snk")
    builder.connect(src.o, q.i)
    builder.connect(q.o, snk.i)
    return builder.build()


def token_ring(n_stations: int = 3, queue_size: int = 1) -> Network:
    """A ring of queues circulating a token via merges — no source/sink.

    Every station forwards the token to the next queue.  The ring is built
    from queues and functions only; with an automaton-free cycle it
    exercises cyclic block/idle equations.  A source injects the initial
    token through a merge at station 0 and a switch lets it leave to a sink
    with probability encoded by color (never, here), keeping the net closed.
    """
    if n_stations < 2:
        raise ValueError("token_ring needs >= 2 stations")
    builder = NetworkBuilder(f"token-ring-{n_stations}")
    queues = [builder.queue(f"q{i}", size=queue_size) for i in range(n_stations)]
    entry = builder.merge("entry", n_inputs=2)
    src = builder.source("src", colors={"tok"})
    builder.connect(src.o, entry.ins[0])
    builder.connect(entry.o, queues[0].i)
    for i in range(n_stations - 1):
        builder.connect(queues[i].o, queues[i + 1].i)
    builder.connect(queues[-1].o, entry.ins[1])
    return builder.build(validate=True)


# Experiment-grid identities (see repro.core.experiments): specs name
# builders as strings so grid points pickle under any start method.
# running_example returns an instance object; ScenarioSpec.build unwraps
# its ``.network``.
from .core.experiments import register_builder  # noqa: E402
from .fabrics import traffic_mesh, traffic_ring, traffic_torus  # noqa: E402

register_builder("running_example", running_example, family="netlib")
register_builder("producer_consumer", producer_consumer, family="netlib")
register_builder("token_ring", token_ring, family="netlib")
register_builder("traffic_mesh", traffic_mesh, family="fabric")
register_builder("traffic_torus", traffic_torus, family="fabric")
register_builder("traffic_ring", traffic_ring, family="fabric")
