"""Cache coherence protocols modelled as xMAS automata.

* :mod:`repro.protocols.abstract_mi` — the paper's artificial get/put/inv/
  ack protocol (Figure 2), parameterized by fabric topology.
* :mod:`repro.protocols.mi_gem5` — the GEM5-``MI_example``-inspired full MI
  protocol with cache-to-cache forwarding, write-back ack/nack and DMA.
* :mod:`repro.protocols.msi` — a directory MSI protocol with a bounded
  exact sharer record and request/response/writeback virtual networks.
"""

from ..core.experiments import register_builder
from .abstract_mi import (
    AbstractMIInstance,
    abstract_mi_ether,
    abstract_mi_mesh,
    abstract_mi_network,
    abstract_mi_ring,
    abstract_mi_torus,
    build_cache_automaton,
    build_directory_automaton,
    request_response_vc,
)
from .messages import TOKEN, Message
from .mi_gem5 import (
    MIInstance,
    build_mi_cache,
    build_mi_directory,
    build_mi_dma,
    mi_ether,
    mi_mesh,
    mi_network,
    mi_ring,
    mi_torus,
    mi_vc_assignment,
)
from .msi import (
    MSIInstance,
    build_msi_cache,
    build_msi_directory,
    msi_mesh,
    msi_network,
    msi_ring,
    msi_torus,
    msi_vc_assignment,
)

__all__ = [
    "Message",
    "TOKEN",
    "AbstractMIInstance",
    "abstract_mi_mesh",
    "abstract_mi_network",
    "abstract_mi_ring",
    "abstract_mi_torus",
    "abstract_mi_ether",
    "build_cache_automaton",
    "build_directory_automaton",
    "request_response_vc",
    "MIInstance",
    "mi_mesh",
    "mi_network",
    "mi_ring",
    "mi_torus",
    "mi_ether",
    "build_mi_cache",
    "build_mi_directory",
    "build_mi_dma",
    "mi_vc_assignment",
    "MSIInstance",
    "msi_mesh",
    "msi_network",
    "msi_ring",
    "msi_torus",
    "build_msi_cache",
    "build_msi_directory",
    "msi_vc_assignment",
]

# Experiment-grid identities: ScenarioSpecs name these builders as plain
# strings (repro.core.experiments), so grid points stay picklable across
# any multiprocessing start method.  All return instance objects whose
# ``.network`` the experiment layer unwraps.  Families group a protocol
# across its topologies for discovery (builder_catalog / service ops).
register_builder("abstract_mi_mesh", abstract_mi_mesh, family="abstract_mi")
register_builder("abstract_mi_torus", abstract_mi_torus, family="abstract_mi")
register_builder("abstract_mi_ring", abstract_mi_ring, family="abstract_mi")
register_builder("mi_mesh", mi_mesh, family="mi")
register_builder("mi_torus", mi_torus, family="mi")
register_builder("mi_ring", mi_ring, family="mi")
register_builder("msi_mesh", msi_mesh, family="msi")
register_builder("msi_torus", msi_torus, family="msi")
register_builder("msi_ring", msi_ring, family="msi")
