"""Cache coherence protocols modelled as xMAS automata.

* :mod:`repro.protocols.abstract_mi` — the paper's artificial get/put/inv/
  ack protocol (Figure 2) on a mesh.
* :mod:`repro.protocols.mi_gem5` — the GEM5-``MI_example``-inspired full MI
  protocol with cache-to-cache forwarding, write-back ack/nack and DMA.
"""

from ..core.experiments import register_builder
from .abstract_mi import (
    AbstractMIInstance,
    abstract_mi_ether,
    abstract_mi_mesh,
    build_cache_automaton,
    build_directory_automaton,
    request_response_vc,
)
from .messages import TOKEN, Message
from .mi_gem5 import (
    MIInstance,
    build_mi_cache,
    build_mi_directory,
    build_mi_dma,
    mi_ether,
    mi_mesh,
    mi_vc_assignment,
)

__all__ = [
    "Message",
    "TOKEN",
    "AbstractMIInstance",
    "abstract_mi_mesh",
    "abstract_mi_ether",
    "build_cache_automaton",
    "build_directory_automaton",
    "request_response_vc",
    "MIInstance",
    "mi_mesh",
    "mi_ether",
    "build_mi_cache",
    "build_mi_directory",
    "build_mi_dma",
    "mi_vc_assignment",
]

# Experiment-grid identities: ScenarioSpecs name these builders as plain
# strings (repro.core.experiments), so grid points stay picklable across
# any multiprocessing start method.  Both return instance objects whose
# ``.network`` the experiment layer unwraps.
register_builder("abstract_mi_mesh", abstract_mi_mesh)
register_builder("mi_mesh", mi_mesh)
