"""The paper's artificial directory-based MI protocol (Figure 2).

One directory serializes ownership of a single cache block among the L2
caches on the mesh:

* **Cache** (Figure 2a) — states ``I``, ``M``, ``MI``:

  - ``I  --(miss)--> M``            sends ``getX`` to the directory, moves to
    ``M`` optimistically (the abstract model does not wait for data);
  - ``M  --(replace)--> MI``        voluntary replacement: sends ``putX``;
  - ``M  --inv?--> MI``             forced flush: sends ``putX``;
  - ``MI --ack?--> I``              directory acknowledged the write-back;
  - stale ``inv`` packets arriving in ``I`` or ``MI`` are consumed and
    dropped (they belong to an ownership epoch the cache already left).

* **Directory** (Figure 2b) — states ``I`` and ``M(c)``, ``MI(c)`` per
  cache ``c``:

  - ``I     --getX(c)?--> M(c)``    records ``c`` as owner;
  - ``M(c)  --(decide)--> MI(c)``   spontaneously sends ``inv`` to the owner;
  - ``M(c)  --putX(c)?--> I``       voluntary write-back, replies ``ack``;
  - ``MI(c) --putX(c)?--> I``       forced write-back, replies ``ack``;
  - packets that cannot be consumed in the current state stall and are
    moved to the end of the (rotating) ejection queue.

Spontaneous transitions (miss, replacement, invalidate decision) are
triggered by local fair token sources, as in the paper's running example.

``repeat_inv=True`` switches the directory to re-send reminder
invalidations from ``MI(c)`` (a protocol variant exercised by the ablation
benchmarks); ``voluntary_replacement=False`` removes the cache's
spontaneous ``putX`` (ditto).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fabrics import FabricConfig, MeshFabric, build_fabric
from ..fabrics.routing import RoutingFunction, xy_routing
from ..fabrics.topology import (
    MeshTopology,
    Node,
    RingTopology,
    Topology,
    TorusTopology,
)
from ..xmas import Automaton, Network, NetworkBuilder, Transition
from .messages import TOKEN, Message

__all__ = [
    "AbstractMIInstance",
    "abstract_mi_mesh",
    "abstract_mi_network",
    "abstract_mi_ring",
    "abstract_mi_torus",
    "build_cache_automaton",
    "build_directory_automaton",
    "request_response_vc",
]

GETX = "getX"
PUTX = "putX"
INV = "inv"
ACK = "ack"


def request_response_vc(message: Message) -> int:
    """The standard VC assignment: requests on VC0, responses on VC1."""
    return 0 if message.mtype in (GETX, PUTX) else 1


def _is(mtype: str, src: Node | None = None):
    def guard(message) -> bool:
        if not isinstance(message, Message) or message.mtype != mtype:
            return False
        return src is None or message.src == src

    return guard


def build_cache_automaton(
    builder: NetworkBuilder,
    node: Node,
    directory_node: Node,
    voluntary_replacement: bool = False,
    drop_stale_invs: bool = True,
) -> Automaton:
    """The L2 cache controller at ``node`` (Figure 2a).

    The default is the minimal three-edge automaton of Figure 2a:
    ``I --get!--> M --inv? put!--> MI --ack?--> I``.  With
    ``voluntary_replacement=True`` the cache may also flush spontaneously
    from ``M`` ("a replacement is triggered from the core itself"), which
    creates *stale* invalidations racing with the voluntary write-back;
    ``drop_stale_invs`` then controls whether those are consumed-and-dropped
    in ``I``/``MI`` or left to rotate until the next ownership epoch.
    """
    name = f"cache_{node[0]}_{node[1]}"
    getx = Message(GETX, src=node, dst=directory_node)
    putx = Message(PUTX, src=node, dst=directory_node)
    transitions = [
        Transition(
            name="get!",
            origin="I",
            target="M",
            in_port="tok",
            out_port="net_out",
            produce=lambda _d, m=getx: m,
        ),
        Transition(
            name="inv?put!",
            origin="M",
            target="MI",
            in_port="net_in",
            guard=_is(INV),
            out_port="net_out",
            produce=lambda _d, m=putx: m,
        ),
        Transition(
            name="ack?",
            origin="MI",
            target="I",
            in_port="net_in",
            guard=_is(ACK),
        ),
    ]
    if voluntary_replacement:
        transitions.append(
            Transition(
                name="replace!",
                origin="M",
                target="MI",
                in_port="tok",
                out_port="net_out",
                produce=lambda _d, m=putx: m,
            )
        )
        if drop_stale_invs:
            transitions.append(
                Transition(
                    name="staleinv@I",
                    origin="I",
                    target="I",
                    in_port="net_in",
                    guard=_is(INV),
                )
            )
            transitions.append(
                Transition(
                    name="staleinv@MI",
                    origin="MI",
                    target="MI",
                    in_port="net_in",
                    guard=_is(INV),
                )
            )
    return builder.automaton(
        name,
        states=["I", "M", "MI"],
        initial="I",
        in_ports=["net_in", "tok"],
        out_ports=["net_out"],
        transitions=transitions,
    )


def build_directory_automaton(
    builder: NetworkBuilder,
    directory_node: Node,
    cache_nodes: list[Node],
    repeat_inv: bool = False,
    accept_put_in_m: bool = False,
) -> Automaton:
    """The directory controller (Figure 2b): states I, M(c), MI(c).

    ``accept_put_in_m`` adds the ``M(c) --putX(c)?--> I`` edge, which is
    only reachable when caches write back voluntarily; including it when it
    cannot fire weakens the derivable invariants (its firing count survives
    Gaussian elimination as an unconstrained unknown), so it is opt-in.
    """

    def m_state(c: Node) -> str:
        return f"M_{c[0]}_{c[1]}"

    def mi_state(c: Node) -> str:
        return f"MI_{c[0]}_{c[1]}"

    states = ["I"]
    transitions: list[Transition] = []
    for c in cache_nodes:
        states += [m_state(c), mi_state(c)]
        inv = Message(INV, src=directory_node, dst=c)
        ack = Message(ACK, src=directory_node, dst=c)
        transitions.append(
            Transition(
                name=f"get?{c[0]}{c[1]}",
                origin="I",
                target=m_state(c),
                in_port="net_in",
                guard=_is(GETX, src=c),
            )
        )
        transitions.append(
            Transition(
                name=f"inv!{c[0]}{c[1]}",
                origin=m_state(c),
                target=mi_state(c),
                in_port="tok",
                out_port="net_out",
                produce=lambda _d, m=inv: m,
            )
        )
        if repeat_inv:
            transitions.append(
                Transition(
                    name=f"reinv!{c[0]}{c[1]}",
                    origin=mi_state(c),
                    target=mi_state(c),
                    in_port="tok",
                    out_port="net_out",
                    produce=lambda _d, m=inv: m,
                )
            )
        put_origins = [mi_state(c)]
        if accept_put_in_m:
            put_origins.append(m_state(c))
        for origin in put_origins:
            transitions.append(
                Transition(
                    name=f"put?{c[0]}{c[1]}@{origin}",
                    origin=origin,
                    target="I",
                    in_port="net_in",
                    guard=_is(PUTX, src=c),
                    out_port="net_out",
                    produce=lambda _d, m=ack: m,
                )
            )
    return builder.automaton(
        f"dir_{directory_node[0]}_{directory_node[1]}",
        states=states,
        initial="I",
        in_ports=["net_in", "tok"],
        out_ports=["net_out"],
        transitions=transitions,
    )


@dataclass
class AbstractMIInstance:
    """A built case-study network with handles to its parts."""

    network: Network
    fabric: MeshFabric
    directory: Automaton
    directory_node: Node
    caches: dict[Node, Automaton] = field(default_factory=dict)

    def cache_nodes(self) -> list[Node]:
        return sorted(self.caches)


def abstract_mi_network(
    topology: Topology,
    queue_size: int,
    directory_node: Node | None = None,
    vcs: int = 1,
    routing: RoutingFunction | None = None,
    escape_vcs: bool = False,
    repeat_inv: bool = False,
    voluntary_replacement: bool = False,
    drop_stale_invs: bool = True,
    validate: bool = True,
    name: str | None = None,
) -> AbstractMIInstance:
    """The abstract MI protocol over any :class:`Topology`.

    Every node except ``directory_node`` (default: the last node in
    canonical order — the bottom-right corner on a mesh) hosts an L2
    cache automaton.  All fabric queues share ``queue_size``.  On
    wraparound topologies pass ``escape_vcs=True`` so the fabric's own
    wrap-link cycle does not drown the protocol's deadlocks.
    """
    if directory_node is None:
        directory_node = list(topology.nodes())[-1]
    if name is None:
        name = f"abstract-mi-{topology}-q{queue_size}".replace(" ", "-")
    builder = NetworkBuilder(name)
    config = FabricConfig(
        topology=topology,
        queue_size=queue_size,
        vcs=vcs,
        routing=routing,
        vc_of=request_response_vc if vcs > 1 else None,
        escape_vcs=escape_vcs,
    )
    fabric = build_fabric(builder, config)
    cache_nodes = [n for n in topology.nodes() if n != directory_node]

    caches: dict[Node, Automaton] = {}
    for node in cache_nodes:
        automaton = build_cache_automaton(
            builder, node, directory_node, voluntary_replacement, drop_stale_invs
        )
        source = builder.source(f"tok_cache_{node[0]}_{node[1]}", colors={TOKEN})
        builder.connect(source.o, automaton.port("tok"))
        builder.connect(automaton.port("net_out"), fabric.inject_ports[node])
        builder.connect(fabric.deliver_ports[node], automaton.port("net_in"))
        caches[node] = automaton

    directory = build_directory_automaton(
        builder,
        directory_node,
        cache_nodes,
        repeat_inv=repeat_inv,
        accept_put_in_m=voluntary_replacement,
    )
    source = builder.source(
        f"tok_dir_{directory_node[0]}_{directory_node[1]}", colors={TOKEN}
    )
    builder.connect(source.o, directory.port("tok"))
    builder.connect(directory.port("net_out"), fabric.inject_ports[directory_node])
    builder.connect(fabric.deliver_ports[directory_node], directory.port("net_in"))

    network = builder.build(validate=validate)
    return AbstractMIInstance(
        network=network,
        fabric=fabric,
        directory=directory,
        directory_node=directory_node,
        caches=caches,
    )


def abstract_mi_mesh(
    width: int,
    height: int,
    queue_size: int,
    directory_node: Node | None = None,
    vcs: int = 1,
    routing: RoutingFunction = xy_routing,
    repeat_inv: bool = False,
    voluntary_replacement: bool = False,
    drop_stale_invs: bool = True,
    validate: bool = True,
) -> AbstractMIInstance:
    """The paper's case study: abstract MI on a ``width×height`` mesh."""
    return abstract_mi_network(
        MeshTopology(width, height),
        queue_size,
        directory_node=directory_node,
        vcs=vcs,
        routing=routing,
        repeat_inv=repeat_inv,
        voluntary_replacement=voluntary_replacement,
        drop_stale_invs=drop_stale_invs,
        validate=validate,
        name=f"abstract-mi-{width}x{height}-q{queue_size}",
    )


def abstract_mi_torus(
    width: int,
    height: int,
    queue_size: int,
    directory_node: Node | None = None,
    vcs: int = 1,
    escape_vcs: bool = True,
    repeat_inv: bool = False,
    voluntary_replacement: bool = False,
    drop_stale_invs: bool = True,
    validate: bool = True,
) -> AbstractMIInstance:
    """Abstract MI on a wraparound torus (dateline escape VCs by default)."""
    return abstract_mi_network(
        TorusTopology(width, height),
        queue_size,
        directory_node=directory_node,
        vcs=vcs,
        escape_vcs=escape_vcs,
        repeat_inv=repeat_inv,
        voluntary_replacement=voluntary_replacement,
        drop_stale_invs=drop_stale_invs,
        validate=validate,
    )


def abstract_mi_ring(
    n_nodes: int,
    queue_size: int,
    directory_node: Node | None = None,
    vcs: int = 1,
    escape_vcs: bool = True,
    repeat_inv: bool = False,
    voluntary_replacement: bool = False,
    drop_stale_invs: bool = True,
    validate: bool = True,
) -> AbstractMIInstance:
    """Abstract MI on a bidirectional ring (dateline escape VCs by default)."""
    return abstract_mi_network(
        RingTopology(n_nodes),
        queue_size,
        directory_node=directory_node,
        vcs=vcs,
        escape_vcs=escape_vcs,
        repeat_inv=repeat_inv,
        voluntary_replacement=voluntary_replacement,
        drop_stale_invs=drop_stale_invs,
        validate=validate,
    )


def abstract_mi_ether(
    width: int,
    height: int,
    directory_node: Node | None = None,
    voluntary_replacement: bool = False,
    drop_stale_invs: bool = True,
    repeat_inv: bool = False,
) -> Network:
    """The protocol alone, composed by synchronous handshaking (E9 baseline).

    Same automata as :func:`abstract_mi_mesh`, but the interconnect is a
    queue-free "ether": every ``net_out`` feeds a merge whose output is
    switched by destination straight into the addressee's ``net_in``.
    Feed the result to
    :func:`repro.mc.check_handshake_composition`.
    """
    if directory_node is None:
        directory_node = (width - 1, height - 1)
    builder = NetworkBuilder(f"abstract-mi-ether-{width}x{height}")
    nodes = [
        (x, y) for y in range(height) for x in range(width)
    ]
    cache_nodes = [n for n in nodes if n != directory_node]

    automata = {}
    for node in cache_nodes:
        automaton = build_cache_automaton(
            builder, node, directory_node, voluntary_replacement, drop_stale_invs
        )
        source = builder.source(f"tok_cache_{node[0]}_{node[1]}", colors={TOKEN})
        builder.connect(source.o, automaton.port("tok"))
        automata[node] = automaton
    directory = build_directory_automaton(
        builder,
        directory_node,
        cache_nodes,
        repeat_inv=repeat_inv,
        accept_put_in_m=voluntary_replacement,
    )
    source = builder.source(
        f"tok_dir_{directory_node[0]}_{directory_node[1]}", colors={TOKEN}
    )
    builder.connect(source.o, directory.port("tok"))
    automata[directory_node] = directory

    ether = builder.merge("ether", n_inputs=len(automata))
    ordered = sorted(automata)
    for position, node in enumerate(ordered):
        builder.connect(automata[node].port("net_out"), ether.ins[position])
    deliver = builder.switch(
        "deliver",
        route=lambda message: ordered.index(message.dst),
        n_outputs=len(ordered),
    )
    builder.connect(ether.o, deliver.i)
    for position, node in enumerate(ordered):
        builder.connect(deliver.outs[position], automata[node].port("net_in"))
    return builder.build()
