"""Coherence protocol messages — the packet colors of the case study.

A :class:`Message` is a frozen, hashable record carrying the message type
plus source and destination node coordinates, exactly as the paper
describes ("8 different types of messages, each parameterized with
destination and source nodes").  The optional ``vc`` field selects a
virtual channel class when the fabric is built with VCs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Message", "Node", "TOKEN"]

Node = tuple[int, int]

#: The color used by local "decide" token sources that trigger spontaneous
#: automaton transitions (get injection, replacement, invalidation).
TOKEN = "token"


@dataclass(frozen=True)
class Message:
    """One protocol packet."""

    mtype: str
    src: Node
    dst: Node
    vc: int = 0

    def label(self) -> str:
        base = (
            f"{self.mtype}[{self.src[0]}{self.src[1]}->{self.dst[0]}{self.dst[1]}]"
        )
        return f"{base}@vc{self.vc}" if self.vc else base

    def with_vc(self, vc: int) -> "Message":
        return replace(self, vc=vc)

    def __repr__(self) -> str:
        return self.label()
