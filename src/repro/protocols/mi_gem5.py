"""The full MI cache-coherence protocol (GEM5 ``MI_example``-inspired).

Per Section 5 ("MI Protocol"): cache-to-cache transfer, write-back
acknowledge/nack, a notification (unblock) on data receipt, and DMA
accesses.  The L2 cache controller has 5 states, the directory ``4 + n``
(with ``n`` the number of caches), and messages are parameterized with
source and destination nodes.

Controllers
-----------

**L2 cache** — states ``I, IM, M, MI, II``:

- ``I  --(miss)-->  IM``             sends ``getx`` to the directory;
- ``IM --data?-->   M``              sends ``unblock`` to the directory;
- ``M  --fwd(r)?--> I``              cache-to-cache: sends ``data`` to the
  requestor ``r`` and invalidates itself;
- ``M  --(replace)--> MI``           sends ``putx``;
- ``MI --wback?-->  I``              write-back acknowledged;
- ``MI --fwd(r)?--> II``             lost the race: still services the
  forward (sends ``data`` to ``r``), then awaits the nack;
- ``MI --wbnack?--> II``             nack first, forward still in flight;
- ``II --wbnack?--> I`` and ``II --fwd(r)?/data!--> I``.

**Directory** — states ``I``, ``M(c)`` per cache, ``MB`` (busy: waiting
for an ``unblock``), ``DR``/``DW`` (DMA read/write in flight):

- ``I    --getx(c)?-->   MB``        responds ``data`` from memory;
- ``MB   --unblock(c)?--> M(c)``     requestor became owner;
- ``M(c) --getx(c')?-->  MB``        forwards the request to the owner;
- ``M(c) --putx(c)?-->   I``         acknowledges with ``wback``;
- ``MB / M(c') --putx(c)?--> same``  stale write-back: ``wbnack``;
- ``I    --getx(dma)?--> DR``        DMA read (data from memory);
- ``I    --putx(dma)?--> DW``        DMA write (ack via ``wback``);
- ``DR/DW --unblock(dma)?--> I``;
- ``MB   --unblock(dma)?--> I``      DMA read served by an owner cache.

**DMA controller** — states ``idle, busy_rd, busy_wr``: issues ``getx`` /
``putx`` tagged with its own node, finishing with ``unblock``.

Message types: ``getx, fwd, data, unblock, putx, wback, wbnack`` — DMA
requests reuse ``getx``/``putx`` distinguished by their source node, which
is how the directory reaches exactly the paper's ``4 + n`` states.

The protocol avoids the abstract protocol's inv-based deadlock pattern
("modified to exclude the deadlock described above"): ownership hand-off
is request-driven (``fwd``) rather than invalidation-driven, and stale
write-backs are nacked instead of stalling the directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fabrics import FabricConfig, MeshFabric, build_fabric
from ..fabrics.routing import RoutingFunction, xy_routing
from ..fabrics.topology import (
    MeshTopology,
    Node,
    RingTopology,
    Topology,
    TorusTopology,
)
from ..xmas import Automaton, Network, NetworkBuilder, Transition
from .messages import TOKEN, Message

__all__ = [
    "MIInstance",
    "mi_mesh",
    "mi_network",
    "mi_ring",
    "mi_torus",
    "mi_ether",
    "build_mi_cache",
    "build_mi_directory",
    "build_mi_dma",
    "mi_vc_assignment",
]

GETX = "getx"
FWD = "fwd"
DATA = "data"
UNBLOCK = "unblock"
PUTX = "putx"
WBACK = "wback"
WBNACK = "wbnack"

REQUEST_TYPES = (GETX, PUTX)
RESPONSE_TYPES = (FWD, DATA, UNBLOCK, WBACK, WBNACK)


def mi_vc_assignment(message: Message) -> int:
    """Requests on VC0, responses/forwards on VC1."""
    return 0 if message.mtype in REQUEST_TYPES else 1


def _is(mtype: str, src: Node | None = None, dst: Node | None = None):
    def guard(message) -> bool:
        if not isinstance(message, Message) or message.mtype != mtype:
            return False
        if src is not None and message.src != src:
            return False
        return dst is None or message.dst == dst

    return guard


def build_mi_cache(
    builder: NetworkBuilder,
    node: Node,
    directory_node: Node,
    peer_nodes: list[Node],
    dma_node: Node | None = None,
) -> Automaton:
    """The five-state L2 cache controller at ``node``.

    ``peer_nodes`` are the possible requestors of a forward (other caches
    and the DMA controller); one transition per peer keeps guards and the
    produced ``data`` packet monomorphic.  A forward on behalf of the DMA
    is a *read*: the owner serves data and keeps the block, whereas a
    forward for another cache transfers ownership (M→I).
    """
    name = f"cache_{node[0]}_{node[1]}"
    getx = Message(GETX, src=node, dst=directory_node)
    putx = Message(PUTX, src=node, dst=directory_node)
    unblock = Message(UNBLOCK, src=node, dst=directory_node)
    transitions = [
        Transition(
            name="getx!",
            origin="I",
            target="IM",
            in_port="tok",
            out_port="net_out",
            produce=lambda _d, m=getx: m,
        ),
        Transition(
            name="data?unblock!",
            origin="IM",
            target="M",
            in_port="net_in",
            guard=_is(DATA, dst=node),
            out_port="net_out",
            produce=lambda _d, m=unblock: m,
        ),
        Transition(
            name="replace!",
            origin="M",
            target="MI",
            in_port="tok",
            out_port="net_out",
            produce=lambda _d, m=putx: m,
        ),
        Transition(
            name="wback?",
            origin="MI",
            target="I",
            in_port="net_in",
            guard=_is(WBACK, dst=node),
        ),
        Transition(
            name="wbnack?",
            origin="MI",
            target="II",
            in_port="net_in",
            guard=_is(WBNACK, dst=node),
        ),
        Transition(
            name="wbnack?@II",
            origin="II",
            target="I",
            in_port="net_in",
            guard=_is(WBNACK, dst=node),
        ),
    ]
    for peer in peer_nodes:
        data = Message(DATA, src=node, dst=peer)
        if peer == dma_node:
            # Read-only serve: ownership is unaffected by a DMA read.
            shapes = (("M", "M", ""), ("MI", "MI", "@MI"), ("II", "II", "@II"))
        else:
            shapes = (("M", "I", ""), ("MI", "II", "@MI"), ("II", "I", "@II"))
        for origin, target, suffix in shapes:
            transitions.append(
                Transition(
                    name=f"fwd{peer[0]}{peer[1]}?data!{suffix}",
                    origin=origin,
                    target=target,
                    in_port="net_in",
                    guard=_is(FWD, src=peer, dst=node),
                    out_port="net_out",
                    produce=lambda _d, m=data: m,
                )
            )
    return builder.automaton(
        name,
        states=["I", "IM", "M", "MI", "II"],
        initial="I",
        in_ports=["net_in", "tok"],
        out_ports=["net_out"],
        transitions=transitions,
    )


def build_mi_directory(
    builder: NetworkBuilder,
    directory_node: Node,
    cache_nodes: list[Node],
    dma_node: Node | None,
) -> Automaton:
    """The directory controller: states I, MB, DR, DW and M(c) per cache."""

    def m_state(c: Node) -> str:
        return f"M_{c[0]}_{c[1]}"

    states = ["I", "MB"] + [m_state(c) for c in cache_nodes]
    transitions: list[Transition] = []

    for c in cache_nodes:
        data = Message(DATA, src=directory_node, dst=c)
        wback = Message(WBACK, src=directory_node, dst=c)
        wbnack = Message(WBNACK, src=directory_node, dst=c)
        transitions.append(
            Transition(
                name=f"getx?{c[0]}{c[1]}@I",
                origin="I",
                target="MB",
                in_port="net_in",
                guard=_is(GETX, src=c),
                out_port="net_out",
                produce=lambda _d, m=data: m,
            )
        )
        transitions.append(
            Transition(
                name=f"unblock?{c[0]}{c[1]}",
                origin="MB",
                target=m_state(c),
                in_port="net_in",
                guard=_is(UNBLOCK, src=c),
            )
        )
        transitions.append(
            Transition(
                name=f"putx?{c[0]}{c[1]}@M",
                origin=m_state(c),
                target="I",
                in_port="net_in",
                guard=_is(PUTX, src=c),
                out_port="net_out",
                produce=lambda _d, m=wback: m,
            )
        )
        # Stale write-backs are nacked wherever the directory is busy or
        # has already moved ownership on.
        transitions.append(
            Transition(
                name=f"putx?{c[0]}{c[1]}@MB",
                origin="MB",
                target="MB",
                in_port="net_in",
                guard=_is(PUTX, src=c),
                out_port="net_out",
                produce=lambda _d, m=wbnack: m,
            )
        )
        for owner in cache_nodes:
            if owner == c:
                continue
            transitions.append(
                Transition(
                    name=f"putx?{c[0]}{c[1]}@M{owner[0]}{owner[1]}",
                    origin=m_state(owner),
                    target=m_state(owner),
                    in_port="net_in",
                    guard=_is(PUTX, src=c),
                    out_port="net_out",
                    produce=lambda _d, m=wbnack: m,
                )
            )
        # Conflicting cache request while owned: forward, await unblock.
        for requestor in cache_nodes:
            if requestor == c:
                continue
            fwd = Message(FWD, src=requestor, dst=c)
            transitions.append(
                Transition(
                    name=f"getx?{requestor[0]}{requestor[1]}@M{c[0]}{c[1]}",
                    origin=m_state(c),
                    target="MB",
                    in_port="net_in",
                    guard=_is(GETX, src=requestor),
                    out_port="net_out",
                    produce=lambda _d, m=fwd: m,
                )
            )
        # DMA read while owned: forward, ownership unchanged, no unblock.
        if dma_node is not None:
            dma_fwd = Message(FWD, src=dma_node, dst=c)
            transitions.append(
                Transition(
                    name=f"getx?dma@M{c[0]}{c[1]}",
                    origin=m_state(c),
                    target=m_state(c),
                    in_port="net_in",
                    guard=_is(GETX, src=dma_node),
                    out_port="net_out",
                    produce=lambda _d, m=dma_fwd: m,
                )
            )

    if dma_node is not None:
        states += ["DR", "DW"]
        dma_data = Message(DATA, src=directory_node, dst=dma_node)
        dma_wback = Message(WBACK, src=directory_node, dst=dma_node)
        transitions.append(
            Transition(
                name="dmard?@I",
                origin="I",
                target="DR",
                in_port="net_in",
                guard=_is(GETX, src=dma_node),
                out_port="net_out",
                produce=lambda _d, m=dma_data: m,
            )
        )
        transitions.append(
            Transition(
                name="dmawr?@I",
                origin="I",
                target="DW",
                in_port="net_in",
                guard=_is(PUTX, src=dma_node),
                out_port="net_out",
                produce=lambda _d, m=dma_wback: m,
            )
        )
        # Read rounds complete with the DMA's unblock, write rounds with
        # the DMA's write-data.  The two completions must be *distinct
        # colors*: a shared completion message decorrelates the DR and DW
        # occupancy flows during invariant elimination and produces
        # unprovable (false-negative) deadlock candidates.
        transitions.append(
            Transition(
                name="dmaunblock?@DR",
                origin="DR",
                target="I",
                in_port="net_in",
                guard=_is(UNBLOCK, src=dma_node),
            )
        )
        transitions.append(
            Transition(
                name="dmawrdata?@DW",
                origin="DW",
                target="I",
                in_port="net_in",
                guard=_is(DATA, src=dma_node),
            )
        )
    return builder.automaton(
        f"dir_{directory_node[0]}_{directory_node[1]}",
        states=states,
        initial="I",
        in_ports=["net_in"],
        out_ports=["net_out"],
        transitions=transitions,
    )


def build_mi_dma(
    builder: NetworkBuilder,
    node: Node,
    directory_node: Node,
    cache_nodes: list[Node],
) -> Automaton:
    """The DMA controller: read and write rounds against the directory.

    Reads served by the directory complete with an ``unblock`` (the
    directory waits in ``DR``); reads served cache-to-cache complete
    silently (the directory never left ``M(c)``).  Writes complete with a
    write-data message, a color distinct from the read completion — see
    :func:`build_mi_directory`.
    """
    name = f"dma_{node[0]}_{node[1]}"
    rd = Message(GETX, src=node, dst=directory_node)
    wr = Message(PUTX, src=node, dst=directory_node)
    unblock = Message(UNBLOCK, src=node, dst=directory_node)
    wrdata = Message(DATA, src=node, dst=directory_node)
    transitions = [
        Transition(
            name="dmard!",
            origin="idle",
            target="busy_rd",
            in_port="tok",
            out_port="net_out",
            produce=lambda _d, m=rd: m,
        ),
        Transition(
            name="dmawr!",
            origin="idle",
            target="busy_wr",
            in_port="tok",
            out_port="net_out",
            produce=lambda _d, m=wr: m,
        ),
        Transition(
            name="dirdata?unblock!",
            origin="busy_rd",
            target="idle",
            in_port="net_in",
            guard=_is(DATA, src=directory_node, dst=node),
            out_port="net_out",
            produce=lambda _d, m=unblock: m,
        ),
        Transition(
            name="wback?wrdata!",
            origin="busy_wr",
            target="idle",
            in_port="net_in",
            guard=_is(WBACK, dst=node),
            out_port="net_out",
            produce=lambda _d, m=wrdata: m,
        ),
    ]
    for c in cache_nodes:
        transitions.append(
            Transition(
                name=f"ownerdata?{c[0]}{c[1]}",
                origin="busy_rd",
                target="idle",
                in_port="net_in",
                guard=_is(DATA, src=c, dst=node),
            )
        )
    return builder.automaton(
        name,
        states=["idle", "busy_rd", "busy_wr"],
        initial="idle",
        in_ports=["net_in", "tok"],
        out_ports=["net_out"],
        transitions=transitions,
    )


@dataclass
class MIInstance:
    """A built full-MI case-study network."""

    network: Network
    fabric: MeshFabric | None
    directory: Automaton
    directory_node: Node
    caches: dict[Node, Automaton] = field(default_factory=dict)
    dma: Automaton | None = None
    dma_node: Node | None = None

    def cache_nodes(self) -> list[Node]:
        return sorted(self.caches)


def _plan_nodes(
    all_nodes: list[Node],
    directory_node: Node | None,
    dma_node: Node | None,
    with_dma: bool,
) -> tuple[Node, Node | None, list[Node]]:
    if directory_node is None:
        directory_node = all_nodes[-1]
    if with_dma and dma_node is None:
        dma_node = next(n for n in all_nodes if n != directory_node)
    cache_nodes = [
        n for n in all_nodes if n != directory_node and n != dma_node
    ]
    if not cache_nodes:
        raise ValueError("no nodes left for caches")
    return directory_node, dma_node, cache_nodes


def mi_network(
    topology: Topology,
    queue_size: int,
    directory_node: Node | None = None,
    dma_node: Node | None = None,
    with_dma: bool = True,
    vcs: int = 1,
    routing: RoutingFunction | None = None,
    escape_vcs: bool = False,
    validate: bool = True,
    name: str | None = None,
) -> MIInstance:
    """The full MI protocol over any :class:`Topology`.

    One node hosts the directory (default: the last node in canonical
    order), one (optionally) the DMA controller, and every remaining node
    an L2 cache.  On wraparound topologies pass ``escape_vcs=True``.
    """
    directory_node, dma_node, cache_nodes = _plan_nodes(
        list(topology.nodes()), directory_node, dma_node, with_dma
    )
    if name is None:
        name = f"mi-{topology}-q{queue_size}".replace(" ", "-")
    builder = NetworkBuilder(name)
    config = FabricConfig(
        topology=topology,
        queue_size=queue_size,
        vcs=vcs,
        routing=routing,
        vc_of=mi_vc_assignment if vcs > 1 else None,
        escape_vcs=escape_vcs,
    )
    fabric = build_fabric(builder, config)

    peers_of = {
        c: [n for n in cache_nodes if n != c] + ([dma_node] if dma_node else [])
        for c in cache_nodes
    }
    caches: dict[Node, Automaton] = {}
    for node in cache_nodes:
        automaton = build_mi_cache(
            builder, node, directory_node, peers_of[node], dma_node=dma_node
        )
        source = builder.source(f"tok_cache_{node[0]}_{node[1]}", colors={TOKEN})
        builder.connect(source.o, automaton.port("tok"))
        builder.connect(automaton.port("net_out"), fabric.inject_ports[node])
        builder.connect(fabric.deliver_ports[node], automaton.port("net_in"))
        caches[node] = automaton

    directory = build_mi_directory(builder, directory_node, cache_nodes, dma_node)
    builder.connect(directory.port("net_out"), fabric.inject_ports[directory_node])
    builder.connect(fabric.deliver_ports[directory_node], directory.port("net_in"))

    dma = None
    if dma_node is not None:
        dma = build_mi_dma(builder, dma_node, directory_node, cache_nodes)
        source = builder.source(f"tok_dma_{dma_node[0]}_{dma_node[1]}", colors={TOKEN})
        builder.connect(source.o, dma.port("tok"))
        builder.connect(dma.port("net_out"), fabric.inject_ports[dma_node])
        builder.connect(fabric.deliver_ports[dma_node], dma.port("net_in"))

    network = builder.build(validate=validate)
    return MIInstance(
        network=network,
        fabric=fabric,
        directory=directory,
        directory_node=directory_node,
        caches=caches,
        dma=dma,
        dma_node=dma_node,
    )


def mi_mesh(
    width: int,
    height: int,
    queue_size: int,
    directory_node: Node | None = None,
    dma_node: Node | None = None,
    with_dma: bool = True,
    vcs: int = 1,
    routing: RoutingFunction = xy_routing,
    validate: bool = True,
) -> MIInstance:
    """The full MI protocol on a ``width × height`` mesh."""
    return mi_network(
        MeshTopology(width, height),
        queue_size,
        directory_node=directory_node,
        dma_node=dma_node,
        with_dma=with_dma,
        vcs=vcs,
        routing=routing,
        validate=validate,
        name=f"mi-{width}x{height}-q{queue_size}",
    )


def mi_torus(
    width: int,
    height: int,
    queue_size: int,
    directory_node: Node | None = None,
    dma_node: Node | None = None,
    with_dma: bool = True,
    vcs: int = 1,
    escape_vcs: bool = True,
    validate: bool = True,
) -> MIInstance:
    """The full MI protocol on a torus (dateline escape VCs by default)."""
    return mi_network(
        TorusTopology(width, height),
        queue_size,
        directory_node=directory_node,
        dma_node=dma_node,
        with_dma=with_dma,
        vcs=vcs,
        escape_vcs=escape_vcs,
        validate=validate,
    )


def mi_ring(
    n_nodes: int,
    queue_size: int,
    directory_node: Node | None = None,
    dma_node: Node | None = None,
    with_dma: bool = True,
    vcs: int = 1,
    escape_vcs: bool = True,
    validate: bool = True,
) -> MIInstance:
    """The full MI protocol on a bidirectional ring."""
    return mi_network(
        RingTopology(n_nodes),
        queue_size,
        directory_node=directory_node,
        dma_node=dma_node,
        with_dma=with_dma,
        vcs=vcs,
        escape_vcs=escape_vcs,
        validate=validate,
    )


def mi_ether(
    width: int,
    height: int,
    directory_node: Node | None = None,
    dma_node: Node | None = None,
    with_dma: bool = True,
) -> Network:
    """The full MI protocol under synchronous handshaking (E9 baseline)."""
    directory_node, dma_node, cache_nodes = _plan_nodes(
        [(x, y) for y in range(height) for x in range(width)],
        directory_node,
        dma_node,
        with_dma,
    )
    builder = NetworkBuilder(f"mi-ether-{width}x{height}")
    automata: dict[Node, Automaton] = {}
    peers_of = {
        c: [n for n in cache_nodes if n != c] + ([dma_node] if dma_node else [])
        for c in cache_nodes
    }
    for node in cache_nodes:
        automaton = build_mi_cache(
            builder, node, directory_node, peers_of[node], dma_node=dma_node
        )
        source = builder.source(f"tok_cache_{node[0]}_{node[1]}", colors={TOKEN})
        builder.connect(source.o, automaton.port("tok"))
        automata[node] = automaton
    automata[directory_node] = build_mi_directory(
        builder, directory_node, cache_nodes, dma_node
    )
    if dma_node is not None:
        dma = build_mi_dma(builder, dma_node, directory_node, cache_nodes)
        source = builder.source(f"tok_dma_{dma_node[0]}_{dma_node[1]}", colors={TOKEN})
        builder.connect(source.o, dma.port("tok"))
        automata[dma_node] = dma

    ordered = sorted(automata)
    ether = builder.merge("ether", n_inputs=len(ordered))
    for position, node in enumerate(ordered):
        builder.connect(automata[node].port("net_out"), ether.ins[position])
    deliver = builder.switch(
        "deliver",
        route=lambda message: ordered.index(message.dst),
        n_outputs=len(ordered),
    )
    builder.connect(ether.o, deliver.i)
    for position, node in enumerate(ordered):
        builder.connect(deliver.outs[position], automata[node].port("net_in"))
    return builder.build()
