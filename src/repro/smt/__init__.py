"""A self-contained SMT solver for QF_LIA.

The ADVOCAT method reduces deadlock detection to satisfiability of formulas
mixing boolean structure (block/idle variables) with linear integer
arithmetic (queue occupancies, automaton state indicators).  This package
provides the decision procedure: a CDCL SAT core, a Tseitin CNF converter,
an exact rational simplex, and branch-and-bound integrality — all pure
Python, no external solver required.
"""

from .sat import BudgetExceeded, Cdcl
from .serialize import SolverSnapshot, restore_solver, snapshot_solver
from .solver import Model, Result, Solver, SolverBudgetError
from .terms import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolConst,
    BoolVar,
    IntVar,
    LinearAtom,
    LinExpr,
    Not,
    Or,
    Term,
    as_linexpr,
    boolvar,
    conj,
    disj,
    eq,
    exactly_one,
    ge,
    gt,
    iff,
    implies,
    intvar,
    ite,
    le,
    lt,
    ne,
    neg,
)

__all__ = [
    "Solver",
    "Result",
    "Model",
    "SolverBudgetError",
    "SolverSnapshot",
    "snapshot_solver",
    "restore_solver",
    "Cdcl",
    "BudgetExceeded",
    "Term",
    "BoolVar",
    "BoolConst",
    "Not",
    "And",
    "Or",
    "Atom",
    "LinearAtom",
    "IntVar",
    "LinExpr",
    "TRUE",
    "FALSE",
    "boolvar",
    "intvar",
    "conj",
    "disj",
    "neg",
    "implies",
    "iff",
    "ite",
    "exactly_one",
    "le",
    "lt",
    "ge",
    "gt",
    "eq",
    "ne",
    "as_linexpr",
]
