"""The *reference* CDCL core — the pre-arena, object-per-clause solver.

This module is a frozen copy of :mod:`repro.smt.sat` as it stood before
the flat-arena data-path rewrite.  It is **not** used by the production
stack; it exists so that

* ``tests/smt/test_satcore.py`` can differentially check the arena core
  against it (verdicts, models, failed-assumption cores and search
  statistics must be byte-identical over random CNFs), and
* ``benchmarks/bench_satcore.py`` can measure the old-vs-new hot-loop
  speedup on the same instances and record it in ``BENCH_satcore.json``.

Do not edit the algorithm here: its whole value is that it preserves the
old trajectory.  The original module docstring follows.

----

Implements the standard modern architecture: two-watched-literal
propagation, first-UIP conflict analysis with clause learning, VSIDS
branching with phase saving, and Luby restarts.  A theory listener can be
attached for DPLL(T) integration; it is kept in sync with the trail and may
report conflicts as lists of literals (the negation of a theory-inconsistent
set of asserted literals).

Solving is *incremental and assumption-based* (the MiniSat ``solve(assumps)``
discipline): :meth:`Cdcl.solve` accepts a sequence of assumption literals
that are decided, in order, below all regular decisions.  Clauses learned
during any call are resolvents of the clause database alone — assumption
literals enter them only negated, like decision literals — so the learned
clauses remain valid for every later call under any assumption set.  When
the instance is unsatisfiable *because of* the assumptions, ``final_core``
holds an inconsistent subset of them (the failed core); a root-level
conflict leaves the core empty and marks the solver permanently UNSAT.

Learnt clauses have a managed *lifecycle* (the Glucose discipline): each
is tagged at derivation time with its LBD ("glue") — the number of
distinct decision levels among its literals — and accumulates activity
whenever it participates in a conflict derivation.  When the live learnt
count crosses a geometrically growing threshold, :meth:`Cdcl.reduce_db`
forgets the cold tail (binary and ``lbd ≤ glue_keep`` clauses are
protected preferentially, up to ``glue_cap`` of them), so long-lived
incremental sessions stay bounded.  :meth:`learned_clauses` exports the surviving resolvents (plus
root-level facts) in LBD order and :meth:`import_learned` re-attaches such
an export into another solver over the same variable numbering — the
warm-start channel used by snapshot rehydration.

The solver is deliberately self-contained (plain lists, no numpy) so its
behaviour is easy to audit — it is part of the trusted base of the
verification results.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, Protocol, Sequence

__all__ = ["Cdcl", "TheoryListener", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_UNDEF = 0


class TheoryListener(Protocol):
    """Callbacks the CDCL core uses to keep a theory solver in sync."""

    def assert_index(self, index: int, lit: int) -> list[int] | None:
        """Notify that trail position ``index`` holds ``lit``.

        Returns ``None`` when consistent, otherwise a conflict explanation:
        a list of asserted literals whose conjunction is theory-inconsistent.
        """

    def pop_to(self, trail_length: int) -> None:
        """Undo all assertions at trail positions ≥ ``trail_length``."""

    def final_check(self) -> list[int] | None:
        """Full-assignment check; same contract as :meth:`assert_index`."""


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Standard formulation: find the smallest complete binary sequence of
    length ``2^seq − 1`` covering position ``i``, then recurse into the
    remainder (iteratively).
    """
    index = i - 1  # zero-based position
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


class Cdcl:
    """Conflict-driven clause-learning SAT solver with theory hooks.

    ``reduction`` enables periodic clause-database reduction: once the
    live learnt count reaches ``reduce_base`` the cold tail of the learnt
    clauses is forgotten (the warmest ``reduce_keep`` fraction survives)
    and the threshold grows by ``reduce_growth`` (a geometric schedule).
    Binary clauses and clauses with ``lbd <= glue_keep`` are protected
    *preferentially*: they are exempt from the tail cut up to
    ``glue_cap`` of them; beyond the cap the coldest protected clauses
    (by activity) are demoted into the ordinary tail.  The cap matters on
    ADVOCAT's structured encodings, where shallow incremental searches
    tag most resolvents as glue — an unconditional exemption would keep
    the database growing linearly with session length.  Reduction is
    purely a performance policy — it never changes verdicts, only which
    redundant resolvents are retained.
    """

    def __init__(
        self,
        theory: TheoryListener | None = None,
        reduction: bool = True,
        reduce_base: int = 400,
        reduce_growth: float = 1.3,
        glue_keep: int = 2,
        glue_cap: int | None = None,
        reduce_keep: float = 0.5,
    ):
        self.theory = theory
        self.n_vars = 0
        self.clauses: list[list[int]] = []
        self._lbd: list[int] = []  # per clause; 0 = problem clause, >=1 learnt
        self._cla_act: list[float] = []  # per clause; bumped on conflict use
        self._cla_inc = 1.0
        self._watches: list[list[int]] = [[], []]  # indexed by literal code
        self._assign: list[int] = [0]  # 1 true, -1 false, 0 undef; index by var
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]  # clause index, -1 for decisions
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._theory_qhead = 0
        self._conflict_index = -1  # clause index of the last propagation conflict
        self._heap: list[tuple[float, int]] = []
        self._var_inc = 1.0
        self._ok = True
        self.reduction = reduction
        self.glue_keep = glue_keep
        self.glue_cap = reduce_base if glue_cap is None else glue_cap
        self.reduce_keep = reduce_keep
        self._reduce_limit = max(1, reduce_base)
        self._reduce_growth = reduce_growth
        self._learnt_live = 0
        self.final_core: list[int] = []
        self.stats = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "reductions": 0,
            "reduced": 0,
            "kept_glue": 0,
            # Cooperative-slicing counters mirrored from the arena core so
            # the lockstep differentials can keep asserting full stats-dict
            # equality.  The reference core never slices, so the first two
            # stay zero; imported_rounds counts import_learned calls.
            "conflict_limit_hits": 0,
            "cancelled": 0,
            "imported_rounds": 0,
        }

    @property
    def learned_count(self) -> int:
        """Live learnt clauses currently attached (root facts excluded)."""
        return self._learnt_live

    def profile(self) -> dict[str, int]:
        """API-compat shim (the one post-freeze addition, not algorithmic).

        The reference core predates the hot-loop instrumentation, so every
        counter reads zero; having the method lets :class:`repro.smt.Solver`
        run unmodified when monkeypatched onto this core for differential
        tests and old-vs-new benchmarks.
        """
        return {
            "propagations": 0,
            "visited_watchers": 0,
            "blocker_hits": 0,
            "analyze_steps": 0,
            "arena_gc_words": 0,
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.n_vars += 1
        self._assign.append(_UNDEF)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        heappush(self._heap, (0.0, self.n_vars))
        return self.n_vars

    def ensure_vars(self, n: int) -> None:
        while self.n_vars < n:
            self.new_var()

    @staticmethod
    def _code(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause, rewinding to the root level first if needed."""
        self._backjump(0)
        if not self._ok:
            return
        seen: set[int] = set()
        filtered: list[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology
            value = self._value(lit)
            if value == 1:
                return  # already satisfied at level 0
            if value == -1:
                continue  # false at level 0: drop the literal
            seen.add(lit)
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return
        if len(filtered) == 1:
            self._enqueue(filtered[0], -1)
            return
        self._attach(filtered)

    def _attach(self, lits: list[int], lbd: int = 0) -> int:
        """Attach a clause; ``lbd >= 1`` marks it learnt (deletable)."""
        index = len(self.clauses)
        self.clauses.append(lits)
        self._lbd.append(lbd)
        self._cla_act.append(self._cla_inc if lbd else 0.0)
        if lbd:
            self._learnt_live += 1
        self._watches[self._code(-lits[0])].append(index)
        self._watches[self._code(-lits[1])].append(index)
        return index

    # ------------------------------------------------------------------
    # Trail manipulation
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = abs(lit)
        value = self._value(lit)
        if value == 1:
            return True
        if value == -1:
            return False
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self.decision_level
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _backjump(self, level: int) -> None:
        if self.decision_level <= level:
            return
        boundary = self._trail_lim[level]
        for lit in self._trail[boundary:]:
            var = abs(lit)
            self._phase[var] = lit > 0
            self._assign[var] = _UNDEF
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        if self.theory is not None:
            self.theory.pop_to(len(self._trail))
            self._theory_qhead = min(self._theory_qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns the conflicting clause's literals."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            code = self._code(lit)
            watch_list = self._watches[code]
            kept: list[int] = []
            conflict: list[int] | None = None
            for position, clause_index in enumerate(watch_list):
                clause = self.clauses[clause_index]
                # Normalise: the false literal (-lit) goes to slot 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause_index)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[self._code(-clause[1])].append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause_index)
                if self._value(first) == -1:
                    kept.extend(watch_list[position + 1 :])
                    conflict = clause
                    self._conflict_index = clause_index
                    break
                self._enqueue(first, clause_index)
            self._watches[code] = kept
            if conflict is not None:
                return conflict
        return None

    def _theory_sync(self) -> list[int] | None:
        """Feed newly assigned literals to the theory listener."""
        if self.theory is None:
            return None
        while self._theory_qhead < len(self._trail):
            index = self._theory_qhead
            lit = self._trail[index]
            self._theory_qhead += 1
            explanation = self.theory.assert_index(index, lit)
            if explanation is not None:
                return [-lit for lit in explanation]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heappush(self._heap, (-self._activity[var], var))

    def _bump_clause(self, index: int) -> None:
        self._cla_act[index] += self._cla_inc
        if self._cla_act[index] > 1e20:
            for i, act in enumerate(self._cla_act):
                if act:
                    self._cla_act[i] = act * 1e-20
            self._cla_inc *= 1e-20

    def _compute_lbd(self, lits: Sequence[int]) -> int:
        """Distinct decision levels among ``lits`` (all currently assigned)."""
        return max(1, len({self._level[abs(lit)] for lit in lits}))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis.  ``conflict`` literals are all false.

        Returns ``(learnt_clause, backjump_level)`` where ``learnt_clause[0]``
        is the asserting literal.
        """
        current = self.decision_level
        learnt: list[int] = []
        seen = [False] * (self.n_vars + 1)
        counter = 0
        reason_lits: Iterable[int] = conflict
        index = len(self._trail) - 1
        asserting_lit = 0
        while True:
            for lit in reason_lits:
                var = abs(lit)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current:
                    counter += 1
                else:
                    learnt.append(lit)
            # Walk the trail backwards to the next marked literal.
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                asserting_lit = -p
                break
            reason_index = self._reason[var]
            if self._lbd[reason_index]:
                self._bump_clause(reason_index)
            reason_lits = [lit for lit in self.clauses[reason_index] if lit != p]
        learnt.insert(0, asserting_lit)
        # Conflict-clause minimisation: drop literals implied by the rest.
        learnt = self._minimise(learnt, seen)
        if len(learnt) == 1:
            return learnt, 0
        # Move the highest-level literal (after the asserting one) to slot 1.
        best = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _minimise(self, learnt: list[int], seen: list[bool]) -> list[int]:
        """Cheap local minimisation: a literal whose reason is a subset of
        the clause (plus level-0 literals) is redundant."""
        marked = set(abs(lit) for lit in learnt)
        result = [learnt[0]]
        for lit in learnt[1:]:
            reason_index = self._reason[abs(lit)]
            if reason_index == -1:
                result.append(lit)
                continue
            reason = self.clauses[reason_index]
            if all(
                abs(other) in marked or self._level[abs(other)] == 0
                for other in reason
                if abs(other) != abs(lit)
            ):
                continue  # redundant
            result.append(lit)
        return result

    def _analyze_final(self, false_assumption: int) -> list[int]:
        """An inconsistent subset of the assumptions (MiniSat analyzeFinal).

        Called when ``false_assumption`` evaluates false while only
        assumption decisions (and their propagations) are on the trail.
        Walks the implication graph of ``¬false_assumption`` back to the
        assumption decisions responsible; together with ``false_assumption``
        they form a conjunction inconsistent with the clause database.
        """
        core = [false_assumption]
        if self._level[abs(false_assumption)] == 0:
            return core  # refuted by the formula alone
        seen = {abs(false_assumption)}
        start = self._trail_lim[0] if self._trail_lim else 0
        for index in range(len(self._trail) - 1, start - 1, -1):
            lit = self._trail[index]
            var = abs(lit)
            if var not in seen:
                continue
            reason_index = self._reason[var]
            if reason_index == -1:
                # A decision below the regular search == an assumption
                # (covers directly contradictory assumption pairs too).
                core.append(lit)
            else:
                for other in self.clauses[reason_index]:
                    if abs(other) != var and self._level[abs(other)] > 0:
                        seen.add(abs(other))
        return core

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> bool:
        while self._heap:
            _, var = heappop(self._heap)
            if self._assign[var] == _UNDEF:
                self.stats["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                lit = var if self._phase[var] else -var
                self._enqueue(lit, -1)
                return True
        # Heap exhausted: scan for any unassigned variable (stale heap).
        for var in range(1, self.n_vars + 1):
            if self._assign[var] == _UNDEF:
                self.stats["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(var if self._phase[var] else -var, -1)
                return True
        return False

    # ------------------------------------------------------------------
    # Learned-clause lifecycle
    # ------------------------------------------------------------------
    def _root_boundary(self) -> int:
        """Trail length of the level-0 prefix (permanent facts)."""
        return self._trail_lim[0] if self._trail_lim else len(self._trail)

    def reduce_db(self) -> int:
        """Forget the cold half of the non-glue learnt clauses.

        Must be called at decision level 0 with propagation at fixpoint
        (the solver calls it right after restart/solve-entry backjumps).
        Keeps every problem clause; learnt binaries and ``lbd <=
        glue_keep`` clauses are protected up to ``glue_cap`` (beyond it
        the coldest are demoted by activity); the remaining tail is
        sorted coldest-first by (activity, then LBD as tiebreak) and only
        the warmest ``reduce_keep`` fraction survives, with
        root-satisfied learnt clauses always dropped.  Returns the number
        of clauses deleted.
        """
        assert self.decision_level == 0, "reduce_db() needs the root level"
        # Root-level assignments are permanent facts; conflict analysis
        # never walks below level 0, so their reasons can be forgotten —
        # which unlocks every clause for deletion and remapping.
        for lit in self._trail:
            self._reason[abs(lit)] = -1
        keep: list[int] = []
        candidates: list[int] = []
        protected: list[int] = []
        for index, lits in enumerate(self.clauses):
            lbd = self._lbd[index]
            if lbd == 0:
                keep.append(index)
            elif any(self._value(lit) == 1 for lit in lits):
                continue  # permanently satisfied at root: dead weight
            elif len(lits) <= 2 or lbd <= self.glue_keep:
                protected.append(index)
            else:
                candidates.append(index)
        if len(protected) > self.glue_cap:
            # Protection is a priority, not a blank cheque: on these
            # structured encodings most resolvents come out glue-tagged,
            # so the coldest protected clauses re-join the ordinary tail.
            protected.sort(key=lambda i: self._cla_act[i], reverse=True)
            candidates.extend(protected[self.glue_cap :])
            del protected[self.glue_cap :]
        kept_glue = len(protected)
        keep.extend(protected)
        # Coldest first: lowest activity, ties broken toward dropping
        # high-LBD clauses.  Keep the warmest ``reduce_keep`` fraction.
        candidates.sort(key=lambda i: (self._cla_act[i], -self._lbd[i]))
        cut = len(candidates) - int(len(candidates) * self.reduce_keep)
        keep.extend(candidates[cut:])
        keep.sort()
        deleted = len(self.clauses) - len(keep)
        if deleted == 0:
            self.stats["reductions"] += 1
            self.stats["kept_glue"] += kept_glue
            self._reduce_limit = int(self._reduce_limit * self._reduce_growth) + 1
            return 0
        new_clauses: list[list[int]] = []
        new_lbd: list[int] = []
        new_act: list[float] = []
        for old in keep:
            lits = self.clauses[old]
            # Watches must sit on non-false literals (false-at-root stays
            # false forever, so a clause watched there would never wake).
            # Propagation is at fixpoint, so every kept unsatisfied clause
            # has >= 2 non-false literals.
            lits.sort(key=lambda lit: self._value(lit) == -1)
            new_clauses.append(lits)
            new_lbd.append(self._lbd[old])
            new_act.append(self._cla_act[old])
        self.clauses = new_clauses
        self._lbd = new_lbd
        self._cla_act = new_act
        self._learnt_live = sum(1 for lbd in new_lbd if lbd)
        self._watches = [[] for _ in range(2 * self.n_vars + 2)]
        for index, lits in enumerate(self.clauses):
            self._watches[self._code(-lits[0])].append(index)
            self._watches[self._code(-lits[1])].append(index)
        self.stats["reductions"] += 1
        self.stats["reduced"] += deleted
        self.stats["kept_glue"] += kept_glue
        self._reduce_limit = int(self._reduce_limit * self._reduce_growth) + 1
        return deleted

    def _maybe_reduce(self) -> None:
        if self.reduction and self._learnt_live >= self._reduce_limit:
            self.reduce_db()

    def compact(self) -> int:
        """Force one reduction now (e.g. before idling or snapshotting).

        Brings the solver to the root level and propagation to fixpoint
        first; works even with periodic ``reduction`` disabled.  Returns
        the number of clauses deleted (0 when a root conflict makes the
        instance permanently UNSAT instead).
        """
        if not self._ok:
            return 0
        self._backjump(0)
        if self._propagate() is not None:
            self._ok = False
            return 0
        if self.theory is not None and self._theory_sync() is not None:
            self._ok = False
            return 0
        return self.reduce_db()

    def learned_clauses(
        self, cap: int | None = None, max_lbd: int | None = None
    ) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """The learnt state as ``(lbd, literals)`` pairs, best-glue first.

        Root-level facts are exported as LBD-1 units ahead of the attached
        learnt clauses (sorted by LBD, then length).  Everything exported
        is a resolvent of the clause database plus theory lemmas — valid
        for any solver over the *same* formula and variable numbering, and
        independent of any assumption set (assumptions are decided above
        the root).  ``cap`` truncates the export, ``max_lbd`` filters it.
        """
        exported: list[tuple[int, tuple[int, ...]]] = [
            (1, (lit,)) for lit in self._trail[: self._root_boundary()]
        ]
        learnt = sorted(
            (
                (self._lbd[i], tuple(self.clauses[i]))
                for i in range(len(self.clauses))
                if self._lbd[i]
            ),
            key=lambda item: (item[0], len(item[1])),
        )
        if max_lbd is not None:
            learnt = [item for item in learnt if item[0] <= max_lbd]
        exported.extend(learnt)
        if cap is not None:
            exported = exported[:cap]
        return tuple(exported)

    def import_learned(
        self,
        clauses: Iterable[tuple[int, Sequence[int]]],
        demote_to: int | None = None,
    ) -> int:
        """Re-attach an export of :meth:`learned_clauses` (sound resolvents).

        The caller vouches that every clause is a consequence of this
        solver's formula (true of a parent solver's export over the same
        CNF image).  Clauses are filtered like :meth:`add_clause` — root-
        satisfied ones are dropped, root-false literals removed — then
        attached as learnt with their shipped LBD, so a later reduction
        treats them exactly like locally derived clauses.

        ``demote_to`` floors the stored LBD of non-binary imports: glue
        status is trajectory-local, so a rehydrated worker imports the
        parent's tail as an evictable cache (``demote_to = glue_keep+1``)
        rather than inheriting its "keep forever" promises — clauses the
        local query mix actually uses earn their keep through activity.
        Returns how many clauses were retained (units included).
        """
        self._backjump(0)
        self.stats["imported_rounds"] += 1
        imported = 0
        for lbd, lits in clauses:
            if not self._ok:
                break
            if any(abs(lit) > self.n_vars for lit in lits):
                # Importing across diverged variable numberings is unsound
                # (split atoms are minted per trajectory) — only exports
                # over this solver's own CNF image are accepted.
                raise ValueError(
                    "imported clause references a variable this solver "
                    "never minted; import only exports taken over the "
                    "same CNF image (fork at rest, snapshot/restore)"
                )
            seen: set[int] = set()
            filtered: list[int] = []
            satisfied = False
            for lit in lits:
                if lit in seen:
                    continue
                if -lit in seen:
                    satisfied = True  # tautology
                    break
                value = self._value(lit)
                if value == 1:
                    satisfied = True
                    break
                if value == -1:
                    continue
                seen.add(lit)
                filtered.append(lit)
            if satisfied:
                continue
            if not filtered:
                self._ok = False
                break
            if len(filtered) == 1:
                if not self._enqueue(filtered[0], -1):
                    self._ok = False
                    break
            else:
                stored = max(1, min(int(lbd), len(filtered)))
                if demote_to is not None and len(filtered) > 2:
                    stored = max(stored, demote_to)
                self._attach(filtered, lbd=stored)
            imported += 1
        self.stats["learned"] += imported
        return imported

    # ------------------------------------------------------------------
    # Saved phases
    # ------------------------------------------------------------------
    def phase_vector(self) -> tuple[bool, ...]:
        """The saved phase of every variable, in variable order."""
        return tuple(self._phase[1 : self.n_vars + 1])

    def seed_phases(self, phases: Sequence[bool]) -> None:
        """Overwrite saved phases from a :meth:`phase_vector` export.

        Phases only steer branching order — seeding is always sound and
        is how warm snapshots make a fresh solver search near the parent's
        (or a previous probe's) last model first.
        """
        limit = min(len(phases), self.n_vars)
        for var in range(1, limit + 1):
            self._phase[var] = bool(phases[var - 1])

    def set_phase(self, var: int, phase: bool) -> None:
        if 1 <= var <= self.n_vars:
            self._phase[var] = bool(phase)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        max_conflicts: int | None = None,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        should_stop=None,
    ) -> str:
        """Run search to a verdict.  Call repeatedly after adding clauses.

        ``assumptions`` are literals temporarily decided (in order) below
        every regular decision.  An UNSAT verdict caused by them leaves an
        inconsistent subset in :attr:`final_core`; a root-level conflict
        leaves the core empty and the solver permanently unsatisfiable.

        ``conflict_limit``/``should_stop`` mirror the arena core's
        cooperative slice bounds (UNKNOWN return, learning kept) so the
        lockstep differentials can exercise sliced searches too.
        """
        self.final_core = []
        if not self._ok:
            return UNSAT
        self._backjump(0)
        conflicts_entry = self.stats["conflicts"]
        if self.reduction and self._learnt_live >= self._reduce_limit:
            # Reduce between queries: bring root propagation to fixpoint
            # first (reduce_db's precondition; clauses added since the
            # last call may still have pending root units).
            if self._propagate() is not None:
                self._ok = False
                return UNSAT
            if self.theory is not None and self._theory_sync() is not None:
                self._ok = False
                return UNSAT
            self.reduce_db()
        restart_unit = 128
        restart_count = 0
        budget = _luby(restart_count + 1) * restart_unit
        conflicts_here = 0
        while True:
            if should_stop is not None and should_stop():
                self._backjump(0)
                self.stats["cancelled"] += 1
                return UNKNOWN
            if (
                conflict_limit is not None
                and self.stats["conflicts"] - conflicts_entry >= conflict_limit
            ):
                self._backjump(0)
                self.stats["conflict_limit_hits"] += 1
                return UNKNOWN
            conflict = self._propagate()
            if conflict is None:
                conflict_lits = self._theory_sync()
            else:
                conflict_lits = conflict
                if self._lbd[self._conflict_index]:
                    self._bump_clause(self._conflict_index)
            if conflict_lits is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                if max_conflicts is not None and self.stats["conflicts"] > max_conflicts:
                    raise BudgetExceeded(self.stats["conflicts"])
                # A theory conflict may live entirely below the current level.
                top = max(
                    (self._level[abs(lit)] for lit in conflict_lits), default=0
                )
                if top == 0:
                    self._ok = False
                    return UNSAT
                if top < self.decision_level:
                    self._backjump(top)
                learnt, back_level = self._analyze(conflict_lits)
                lbd = self._compute_lbd(learnt)
                self._backjump(back_level)
                self.stats["learned"] += 1
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        self._ok = False
                        return UNSAT
                else:
                    index = self._attach(learnt, lbd=lbd)
                    self._enqueue(learnt[0], index)
                self._var_inc /= 0.95
                self._cla_inc /= 0.999
                continue
            if conflicts_here >= budget:
                self.stats["restarts"] += 1
                restart_count += 1
                budget = _luby(restart_count + 1) * restart_unit
                conflicts_here = 0
                self._backjump(0)
                self._maybe_reduce()
                continue
            if self.decision_level < len(assumptions):
                # Re-assert the next pending assumption as a decision.
                lit = assumptions[self.decision_level]
                value = self._value(lit)
                if value == 1:
                    # Already implied: open an empty level so positions in
                    # ``assumptions`` keep lining up with decision levels.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == -1:
                    self.final_core = self._analyze_final(lit)
                    self._backjump(0)
                    return UNSAT
                self.stats["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, -1)
                continue
            if not self._decide():
                if self.theory is not None:
                    explanation = self.theory.final_check()
                    if explanation is not None:
                        conflict_lits = [-lit for lit in explanation]
                        self.stats["conflicts"] += 1
                        top = max(
                            (self._level[abs(lit)] for lit in conflict_lits), default=0
                        )
                        if top == 0:
                            self._ok = False
                            return UNSAT
                        self._backjump(top)
                        learnt, back_level = self._analyze(conflict_lits)
                        lbd = self._compute_lbd(learnt)
                        self._backjump(back_level)
                        self.stats["learned"] += 1
                        if len(learnt) == 1:
                            if not self._enqueue(learnt[0], -1):
                                self._ok = False
                                return UNSAT
                        else:
                            index = self._attach(learnt, lbd=lbd)
                            self._enqueue(learnt[0], index)
                        continue
                return SAT

    def model_value(self, var: int) -> bool:
        return self._assign[var] == 1


class BudgetExceeded(RuntimeError):
    """Raised when the conflict budget passed to :meth:`Cdcl.solve` runs out."""
