"""Tseitin conversion of the term language into CNF.

Every distinct subterm receives one SAT variable (``Not`` is represented by
literal polarity, not a variable).  Arithmetic atoms keep a side table
mapping their SAT variable to the :class:`~repro.smt.terms.LinearAtom`, which
the theory bridge consumes.

The conversion is iterative (explicit stack), so arbitrarily deep formulas
cannot overflow the Python recursion limit.
"""

from __future__ import annotations

from .terms import FALSE, TRUE, And, Atom, BoolConst, BoolVar, LinearAtom, Not, Or, Term

__all__ = ["CnfBuilder"]


class CnfBuilder:
    """Accumulates terms and produces clauses over integer literals.

    Literals follow the DIMACS convention: variable ``v`` is a positive
    integer, its negation is ``-v``.
    """

    def __init__(self) -> None:
        self.n_vars = 0
        self.clauses: list[list[int]] = []
        self.unsatisfiable = False
        self.atom_of_var: dict[int, LinearAtom] = {}
        self.var_of_atom: dict[LinearAtom, int] = {}
        self.var_of_boolname: dict[str, int] = {}
        self._lit_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    def clone(self) -> "CnfBuilder":
        """An independent copy sharing no mutable state with the original.

        Term and :class:`LinearAtom` objects themselves are shared (they
        are immutable and interned), so a clone is only meaningful within
        the process that built the original — cross-process transfer goes
        through :mod:`repro.smt.serialize` instead.
        """
        copy = CnfBuilder()
        copy.n_vars = self.n_vars
        copy.clauses = [list(clause) for clause in self.clauses]
        copy.unsatisfiable = self.unsatisfiable
        copy.atom_of_var = dict(self.atom_of_var)
        copy.var_of_atom = dict(self.var_of_atom)
        copy.var_of_boolname = dict(self.var_of_boolname)
        copy._lit_cache = dict(self._lit_cache)
        return copy

    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def var_for_atom(self, atom: LinearAtom) -> int:
        """SAT variable representing ``atom`` (shared across occurrences)."""
        var = self.var_of_atom.get(atom)
        if var is None:
            var = self.new_var()
            self.var_of_atom[atom] = var
            self.atom_of_var[var] = atom
        return var

    def var_for_boolname(self, name: str) -> int:
        var = self.var_of_boolname.get(name)
        if var is None:
            var = self.new_var()
            self.var_of_boolname[name] = var
        return var

    # ------------------------------------------------------------------
    def assert_term(self, term: Term) -> None:
        """Add ``term`` as a top-level assertion."""
        if term is TRUE:
            return
        if term is FALSE:
            self.unsatisfiable = True
            return
        self.clauses.append([self.literal(term)])

    def literal(self, term: Term) -> int:
        """The literal standing for ``term``, emitting definition clauses."""
        cached = self._lit_cache.get(term.uid)
        if cached is not None:
            return cached

        # Iterative post-order: children first, then define the node.
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if node.uid in self._lit_cache:
                continue
            if isinstance(node, Not):
                if node.arg.uid in self._lit_cache:
                    self._lit_cache[node.uid] = -self._lit_cache[node.arg.uid]
                else:
                    stack.append((node, False))
                    stack.append((node.arg, False))
                continue
            if isinstance(node, BoolConst):
                # TRUE/FALSE inside compound terms are folded away by the
                # smart constructors; reaching one here means a bare assert,
                # handled in assert_term.  Encode defensively anyway.
                var = self.new_var()
                self.clauses.append([var] if node.value else [-var])
                self._lit_cache[node.uid] = var
                continue
            if isinstance(node, BoolVar):
                self._lit_cache[node.uid] = self.var_for_boolname(node.name)
                continue
            if isinstance(node, Atom):
                self._lit_cache[node.uid] = self.var_for_atom(node.constraint)
                continue
            # And / Or
            children = node.args  # type: ignore[attr-defined]
            if not expanded:
                stack.append((node, True))
                stack.extend((child, False) for child in children)
                continue
            child_lits = [self._lit_cache[child.uid] for child in children]
            gate = self.new_var()
            if isinstance(node, And):
                for lit in child_lits:
                    self.clauses.append([-gate, lit])
                self.clauses.append([gate] + [-lit for lit in child_lits])
            elif isinstance(node, Or):
                for lit in child_lits:
                    self.clauses.append([gate, -lit])
                self.clauses.append([-gate] + child_lits)
            else:  # pragma: no cover - exhaustive over term kinds
                raise TypeError(f"unexpected term {node!r}")
            self._lit_cache[node.uid] = gate

        return self._lit_cache[term.uid]
