"""The linear-integer-arithmetic theory bridge.

Connects the CDCL core (:mod:`repro.smt.sat`) to the exact simplex
(:mod:`repro.smt.simplex`):

* every :class:`~repro.smt.terms.LinearAtom` whose SAT variable occurs in
  the CNF is registered here;
* single-variable atoms (``±x ≤ b``, which is what gcd normalisation reduces
  them to) assert bounds directly on the variable's theory column;
* multi-variable atoms get one shared *slack* variable per linear form
  (forms differing only by sign share the slack);
* a positive literal asserts the atom's ``≤`` bound, a negative literal the
  integer-negated ``≥`` bound;
* rational feasibility is enforced incrementally along the SAT trail, and
  integrality of the problem variables is obtained by branch-and-bound
  splitting, driven by :class:`repro.smt.solver.Solver`.
"""

from __future__ import annotations

from fractions import Fraction

from .simplex import Simplex
from .terms import IntVar, LinearAtom

__all__ = ["LiaBridge"]


class LiaBridge:
    """Theory listener for the CDCL solver (see ``TheoryListener``)."""

    def __init__(self) -> None:
        self.simplex = Simplex()
        self._var_of_int: dict[IntVar, int] = {}
        self._slack_of_form: dict[tuple[tuple[int, int], ...], int] = {}
        # satvar -> (theory var, coeff sign, pos bound, neg bound);
        # "pos bound" is asserted as upper bound when the literal is positive.
        self._atom_info: dict[int, tuple[int, int, int]] = {}
        # Per-atom prebuilt assertion plans keyed by the *signed* literal:
        # assert_index is the solver's hottest theory path, so the bound
        # arithmetic happens once at registration, not per assertion.
        # Bounds stay machine ints — the simplex promotes to Fraction only
        # at pivots (see repro.smt.simplex).
        self._assert_plan: dict[int, tuple[bool, int, int]] = {}
        # SAT variables that carry a theory atom.  The CDCL core reads this
        # to skip pure-boolean trail literals without a call per literal.
        self.atom_vars: set[int] = set()
        # Sparse undo alignment with the SAT trail: (trail index, simplex
        # undo length before that assertion), one entry per *atom* literal
        # asserted.  Non-atom trail positions never touch the simplex, so
        # they need no mark.
        self._asserted: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def theory_var(self, var: IntVar) -> int:
        column = self._var_of_int.get(var)
        if column is None:
            column = self.simplex.new_var()
            self._var_of_int[var] = column
        return column

    def register_atom(self, satvar: int, atom: LinearAtom) -> None:
        """Make ``satvar``'s polarity control the constraint ``atom``."""
        if satvar in self._atom_info:
            return
        if len(atom.coeffs) == 1:
            var, coeff = atom.coeffs[0]
            # gcd normalisation leaves single-variable coefficients at ±1.
            assert coeff in (1, -1), atom
            column = self.theory_var(var)
            self._atom_info[satvar] = (column, coeff, atom.bound)
            self._plan_bounds(satvar, column, coeff, atom.bound)
            return
        form = tuple((v.uid, c) for v, c in atom.coeffs)
        sign = 1
        negated = tuple((uid, -c) for uid, c in form)
        if negated in self._slack_of_form:
            form, sign = negated, -1
        slack = self._slack_of_form.get(form)
        if slack is None:
            combo = {self.theory_var(v): c for v, c in atom.coeffs}
            slack = self.simplex.define(combo)
            self._slack_of_form[form] = slack
        self._atom_info[satvar] = (slack, sign, atom.bound)
        self._plan_bounds(satvar, slack, sign, atom.bound)

    def _plan_bounds(self, satvar: int, column: int, sign: int, bound: int) -> None:
        self.atom_vars.add(satvar)
        # sign=-1 means the shared slack carries the *negated* form, so the
        # atom "form <= bound" reads "slack >= -bound" on that column.
        if sign > 0:
            self._assert_plan[satvar] = (True, column, bound)
            self._assert_plan[-satvar] = (False, column, bound + 1)
        else:
            self._assert_plan[satvar] = (False, column, -bound)
            self._assert_plan[-satvar] = (True, column, -bound - 1)

    def has_atom(self, satvar: int) -> bool:
        return satvar in self._atom_info

    # ------------------------------------------------------------------
    # TheoryListener interface
    # ------------------------------------------------------------------
    def assert_index(self, index: int, lit: int) -> list[int] | None:
        plan = self._assert_plan.get(lit)
        if plan is None:
            return None
        simplex = self.simplex
        self._asserted.append((index, len(simplex._undo)))
        upper, column, bound = plan
        if upper:
            conflict = simplex.assert_upper(column, bound, lit)
        else:
            conflict = simplex.assert_lower(column, bound, lit)
        if conflict is not None:
            return conflict
        # check() with an empty dirty set is a no-op (a clean check always
        # drains it), so only pay the pivoting loop when this assertion
        # actually left a basic variable out of bounds.
        if simplex._dirty:
            return simplex.check()
        return None

    def pop_to(self, trail_length: int) -> None:
        asserted = self._asserted
        target = -1
        while asserted and asserted[-1][0] >= trail_length:
            target = asserted.pop()[1]
        if target >= 0:
            self.simplex.undo_to(target)

    def final_check(self) -> list[int] | None:
        return self.simplex.check(full=True)

    # ------------------------------------------------------------------
    # Model access / branching support
    # ------------------------------------------------------------------
    def known_int_vars(self) -> list[IntVar]:
        return list(self._var_of_int)

    def rational_value(self, var: IntVar) -> Fraction | int:
        column = self._var_of_int.get(var)
        if column is None:
            return Fraction(0)
        return self.simplex.value(column)

    def fractional_var(self) -> tuple[IntVar, Fraction] | None:
        """An integer problem variable with a non-integral simplex value.

        int values have ``.denominator == 1``, so the integral states the
        simplex keeps as machine ints are filtered here for free.
        """
        for var, column in self._var_of_int.items():
            value = self.simplex.value(column)
            if value.denominator != 1:
                return var, value
        return None
