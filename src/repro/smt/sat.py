"""A CDCL SAT solver on a flat, array-packed data path.

Implements the standard modern architecture: two-watched-literal
propagation with blocker literals, first-UIP conflict analysis with clause
learning, VSIDS branching on an indexed binary heap with in-place
decrease-key, phase saving, and Luby restarts.  A theory listener can be
attached for DPLL(T) integration; it is kept in sync with the trail and may
report conflicts as lists of literals (the negation of a theory-inconsistent
set of asserted literals).

Solving is *incremental and assumption-based* (the MiniSat ``solve(assumps)``
discipline): :meth:`Cdcl.solve` accepts a sequence of assumption literals
that are decided, in order, below all regular decisions.  Clauses learned
during any call are resolvents of the clause database alone — assumption
literals enter them only negated, like decision literals — so the learned
clauses remain valid for every later call under any assumption set.  When
the instance is unsatisfiable *because of* the assumptions, ``final_core``
holds an inconsistent subset of them (the failed core); a root-level
conflict leaves the core empty and marks the solver permanently UNSAT.

Learnt clauses have a managed *lifecycle* (the Glucose discipline): each
is tagged at derivation time with its LBD ("glue") — the number of
distinct decision levels among its literals — and accumulates activity
whenever it participates in a conflict derivation.  When the live learnt
count crosses a geometrically growing threshold, :meth:`Cdcl.reduce_db`
forgets the cold tail (binary and ``lbd ≤ glue_keep`` clauses are
protected preferentially, up to ``glue_cap`` of them), so long-lived
incremental sessions stay bounded.  :meth:`learned_clauses` exports the
surviving resolvents (plus root-level facts) in LBD order and
:meth:`import_learned` re-attaches such an export into another solver over
the same variable numbering — the warm-start channel used by snapshot
rehydration.

Data layout (the hot-loop rewrite)
----------------------------------

Everything the propagate/analyze/decide loop touches lives in flat,
preallocated buffers instead of per-clause Python objects:

* **Literal codes.**  Internally a literal ``±v`` is the integer code
  ``2v`` (positive) or ``2v + 1`` (negative); negation is ``code ^ 1``.
  The public API (``add_clause``, ``solve(assumptions=)``, the theory
  listener, ``learned_clauses``) still speaks signed literals — codes
  never escape this module.

* **Clause arena.**  All clauses share one flat list of ints.  A clause
  reference (*cref*) is the arena offset of its 3-word header::

      [size<<2 | learnt | protected<<1]  [lbd]  [activity slot]  lit₀ lit₁ … litₙ₋₁

  ``lbd == 0`` marks a problem clause; the activity slot indexes a
  parallel activity list.  :meth:`reduce_db` / :meth:`compact` are arena
  garbage collections: survivors are copied into a fresh arena (coldest
  tail dropped) and the watcher lists are rebuilt against the new crefs.

  The buffers are plain Python lists on purpose: CPython's ``array('i')``
  boxes every element on read/write, which measures 2–3x *slower* than
  list indexing in the hot loop — flatness (one structure, int-only
  content, no per-clause objects) is where the speedup comes from, not
  the storage type.

* **Watcher lists with blockers.**  ``_watches[code]`` is a flat
  interleaved list ``[cref, blocker, cref, blocker, …]`` of the clauses
  watching ``¬code``.  The blocker is another literal of the clause
  (usually the other watched literal); when it is already true *and
  still one of the clause's two watched slots* the clause is skipped
  with at most two arena reads — the majority case on these structured
  encodings.  The freshness check is what keeps the skip
  trajectory-faithful: a stale-but-true blocker falls through to the
  full inspection so the keep-vs-move decision matches the reference
  core exactly.

* **Trail and assignment.**  The assignment is indexed *by literal
  code* (``_val[code] ∈ {1, 0, -1}``; ``_val[code ^ 1]`` mirrors the
  negation), which removes the ``abs()``/sign branch from every literal
  evaluation.  The trail, levels, reasons, saved phases and the
  conflict-analysis ``seen`` scratch are preallocated buffers grown with
  the variable count — no per-conflict allocation.

* **Lazy VSIDS heap without the fallback scan.**  ``_heap`` is a stdlib
  ``heapq`` max-heap over ``(activity desc, var asc)`` tuples.  The
  invariant — every *unassigned* variable always has an entry at its
  current activity (pushed at creation, on every bump, and on every
  backjump-unassign) — makes heap exhaustion the full-assignment test,
  so :meth:`_decide` never falls back to a linear scan over all
  variables (the old stale-heap pathology); stale and assigned entries
  are discarded lazily at pop.  The ``_incur`` flag skips the
  backjump-push when the variable's current-key entry never left the
  heap, which removes most of the duplicate-entry churn.  (An indexed
  binary heap with in-place decrease-key was tried first and *lost*:
  tens of thousands of interpreted sift steps cost more than C-level
  ``heappush``/``heappop`` on duplicates.)

The rewrite is *trajectory-faithful*: decisions, propagations, learnt
clauses and models are identical to the retained reference implementation
(:mod:`repro.smt._sat_reference`), which the differential suite in
``tests/smt/test_satcore.py`` enforces.  :meth:`Cdcl.profile` exposes
hot-loop counters (watcher visits, blocker hits, analyze steps, arena GC
volume) for benchmarks and regression tests.

The solver remains deliberately self-contained (stdlib only, no numpy) so
its behaviour is easy to audit — it is part of the trusted base of the
verification results.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Iterable, Protocol, Sequence

__all__ = ["Cdcl", "TheoryListener", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_UNDEF = 0

# Arena header layout: [size<<2 | flags, lbd, activity-slot], then lits.
_HDR = 3
_LEARNT = 1
_PROTECTED = 2


class TheoryListener(Protocol):
    """Callbacks the CDCL core uses to keep a theory solver in sync.

    Listeners may additionally expose an ``atom_vars`` attribute — the set
    of SAT variables that carry theory atoms.  When present, the core only
    calls :meth:`assert_index` for literals over those variables; the
    listener must then tolerate gaps in the ``index`` sequence (undo
    bookkeeping keyed by index rather than dense per-position marks).
    """

    def assert_index(self, index: int, lit: int) -> list[int] | None:
        """Notify that trail position ``index`` holds ``lit``.

        Returns ``None`` when consistent, otherwise a conflict explanation:
        a list of asserted literals whose conjunction is theory-inconsistent.
        """

    def pop_to(self, trail_length: int) -> None:
        """Undo all assertions at trail positions ≥ ``trail_length``."""

    def final_check(self) -> list[int] | None:
        """Full-assignment check; same contract as :meth:`assert_index`."""


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Standard formulation: find the smallest complete binary sequence of
    length ``2^seq − 1`` covering position ``i``, then recurse into the
    remainder (iteratively).
    """
    index = i - 1  # zero-based position
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


def _signed(code: int) -> int:
    """Internal literal code → signed external literal."""
    return -(code >> 1) if code & 1 else code >> 1


class Cdcl:
    """Conflict-driven clause-learning SAT solver with theory hooks.

    ``reduction`` enables periodic clause-database reduction: once the
    live learnt count reaches ``reduce_base`` the cold tail of the learnt
    clauses is forgotten (the warmest ``reduce_keep`` fraction survives)
    and the threshold grows by ``reduce_growth`` (a geometric schedule).
    Binary clauses and clauses with ``lbd <= glue_keep`` are protected
    *preferentially*: they are exempt from the tail cut up to
    ``glue_cap`` of them; beyond the cap the coldest protected clauses
    (by activity) are demoted into the ordinary tail.  The cap matters on
    ADVOCAT's structured encodings, where shallow incremental searches
    tag most resolvents as glue — an unconditional exemption would keep
    the database growing linearly with session length.  Reduction is
    purely a performance policy — it never changes verdicts, only which
    redundant resolvents are retained.
    """

    def __init__(
        self,
        theory: TheoryListener | None = None,
        reduction: bool = True,
        reduce_base: int = 400,
        reduce_growth: float = 1.3,
        glue_keep: int = 2,
        glue_cap: int | None = None,
        reduce_keep: float = 0.5,
    ):
        self.theory = theory
        self.n_vars = 0
        # --- clause arena ------------------------------------------------
        self._arena: list[int] = []
        self._cla_act: list[float] = []  # indexed by header activity slot
        self._cla_inc = 1.0
        self._n_clauses = 0
        # --- watchers: interleaved [cref, blocker, ...] per literal code
        self._watches: list[list[int]] = [[], []]
        # --- assignment/trail buffers (grown with the variable count) ----
        self._val: list[int] = [0, 0]  # indexed by literal code
        self._level: list[int] = [0]  # indexed by var
        self._reason: list[int] = [-1]  # cref, -1 for decisions; by var
        self._activity: list[float] = [0.0]  # by var
        self._phase = bytearray(1)  # by var
        self._seen = bytearray(1)  # analyze scratch, by var
        self._trail: list[int] = []  # literal codes; capacity == n_vars
        self._trail_len = 0
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._theory_qhead = 0
        # --- VSIDS order: a C-heapq lazy max-heap of (-act, var) entries.
        # Invariant: every *unassigned* variable always has an entry at
        # its current activity (pushed at creation, on every bump, and on
        # every backjump-unassign), so :meth:`_decide` never needs a
        # fallback scan; entries for assigned variables and stale
        # lower-activity duplicates are discarded lazily at pop time.
        # ``_incur[var]`` flags "an entry at the current activity is in
        # the heap right now": backjump skips the push when set, which
        # cuts the dominant heappush/heappop churn (most trail entries
        # are propagations whose entry never left the heap).  Bumps set
        # it (the new key *is* the current one), pops of a current-key
        # entry clear it.  Undercounting is harmless (one duplicate
        # push); overcounting cannot happen because a bump always moves
        # the key, so at most one entry per variable carries the current
        # activity.
        self._heap: list[tuple[float, int]] = []
        self._incur = bytearray([0])
        self._var_inc = 1.0
        self._ok = True
        self.reduction = reduction
        self.glue_keep = glue_keep
        self.glue_cap = reduce_base if glue_cap is None else glue_cap
        self.reduce_keep = reduce_keep
        self._reduce_limit = max(1, reduce_base)
        self._reduce_growth = reduce_growth
        self._learnt_live = 0
        self.final_core: list[int] = []
        self.stats = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "reductions": 0,
            "reduced": 0,
            "kept_glue": 0,
            # Cooperative-slicing counters (the portfolio layer): budget
            # expiries, cancellation polls that fired, and import rounds
            # accepted through import_learned.  Part of the stable stat
            # key set, so the early-UNSAT zeroing contract covers them.
            "conflict_limit_hits": 0,
            "cancelled": 0,
            "imported_rounds": 0,
        }
        self._profile = {
            "propagations": 0,
            "visited_watchers": 0,
            "blocker_hits": 0,
            "analyze_steps": 0,
            "arena_gc_words": 0,
        }
        # Hot-path counters accumulate in plain ints — five dict updates
        # per _propagate call are measurable at this call rate.  They are
        # folded into ``stats``/``_profile`` at solve()/compact() exits
        # and whenever profile() is read.
        self._acc_props = 0
        self._acc_visits = 0
        self._acc_bhits = 0
        self._acc_steps = 0

    @property
    def learned_count(self) -> int:
        """Live learnt clauses currently attached (root facts excluded)."""
        return self._learnt_live

    def clause_count(self) -> int:
        """Attached clauses (problem + learnt), O(1)."""
        return self._n_clauses

    def profile(self) -> dict[str, int]:
        """Hot-loop instrumentation counters (cumulative, like ``stats``).

        ``propagations`` — trail literals dequeued by unit propagation
        (equals ``stats["propagations"]``); ``visited_watchers`` — watcher
        entries examined; ``blocker_hits`` — watcher entries skipped
        because the blocker literal was already true (no arena access);
        ``analyze_steps`` — literals inspected during first-UIP conflict
        analysis; ``arena_gc_words`` — arena words reclaimed by
        :meth:`reduce_db` compactions.
        """
        self._flush_counters()
        return dict(self._profile)

    def _flush_counters(self) -> None:
        """Fold the accumulated hot-path counters into stats/_profile."""
        props = self._acc_props
        if props or self._acc_visits or self._acc_bhits or self._acc_steps:
            self.stats["propagations"] += props
            profile = self._profile
            profile["propagations"] += props
            profile["visited_watchers"] += self._acc_visits
            profile["blocker_hits"] += self._acc_bhits
            profile["analyze_steps"] += self._acc_steps
            self._acc_props = 0
            self._acc_visits = 0
            self._acc_bhits = 0
            self._acc_steps = 0

    # ------------------------------------------------------------------
    # Compatibility views (tests and introspection; not on the hot path)
    # ------------------------------------------------------------------
    def _iter_crefs(self) -> Iterable[int]:
        arena = self._arena
        cref, end = 0, len(arena)
        while cref < end:
            yield cref
            cref += _HDR + (arena[cref] >> 2)

    def _clause_codes(self, cref: int) -> array:
        base = cref + _HDR
        return self._arena[base : base + (self._arena[cref] >> 2)]

    @property
    def clauses(self) -> list[list[int]]:
        """Signed-literal view of the clause database, in attach order.

        Materialised on demand for tests and debugging; production code
        uses :meth:`clause_count` and the arena directly.
        """
        return [
            [_signed(code) for code in self._clause_codes(cref)]
            for cref in self._iter_crefs()
        ]

    @property
    def _lbd(self) -> list[int]:
        """Per-clause LBD view (0 = problem clause), in attach order."""
        arena = self._arena
        return [arena[cref + 1] for cref in self._iter_crefs()]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.n_vars += 1
        var = self.n_vars
        self._val.append(0)
        self._val.append(0)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(0)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        self._trail.append(0)  # capacity: one slot per variable
        heappush(self._heap, (0.0, var))
        self._incur.append(1)
        return var

    def ensure_vars(self, n: int) -> None:
        while self.n_vars < n:
            self.new_var()

    @staticmethod
    def _code(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    def _value(self, lit: int) -> int:
        return self._val[2 * lit if lit > 0 else -2 * lit + 1]

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause, rewinding to the root level first if needed."""
        self._backjump(0)
        if not self._ok:
            return
        seen: set[int] = set()
        filtered: list[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology
            value = self._value(lit)
            if value == 1:
                return  # already satisfied at level 0
            if value == -1:
                continue  # false at level 0: drop the literal
            seen.add(lit)
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return
        if len(filtered) == 1:
            self._enqueue_code(self._code(filtered[0]), -1)
            return
        self._attach([self._code(lit) for lit in filtered])

    def _attach(self, codes: list[int], lbd: int = 0) -> int:
        """Attach a clause of literal codes; ``lbd >= 1`` marks it learnt."""
        arena = self._arena
        cref = len(arena)
        arena.append((len(codes) << 2) | (_LEARNT if lbd else 0))
        arena.append(lbd)
        arena.append(len(self._cla_act))
        self._cla_act.append(self._cla_inc if lbd else 0.0)
        arena.extend(codes)
        self._n_clauses += 1
        if lbd:
            self._learnt_live += 1
        # Watch the first two literals; the blocker is the other watch.
        wl = self._watches[codes[0] ^ 1]
        wl.append(cref)
        wl.append(codes[1])
        wl = self._watches[codes[1] ^ 1]
        wl.append(cref)
        wl.append(codes[0])
        return cref

    # ------------------------------------------------------------------
    # Trail manipulation
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue_code(self, code: int, reason: int) -> bool:
        val = self._val
        value = val[code]
        if value == 1:
            return True
        if value == -1:
            return False
        val[code] = 1
        val[code ^ 1] = -1
        var = code >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail[self._trail_len] = code
        self._trail_len += 1
        return True

    def _backjump(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        trail, val, phase = self._trail, self._val, self._phase
        activity, heap, incur = self._activity, self._heap, self._incur
        for index in range(boundary, self._trail_len):
            code = trail[index]
            var = code >> 1
            phase[var] = 1 - (code & 1)  # even code == positive literal
            val[code] = 0
            val[code ^ 1] = 0
            if not incur[var]:
                heappush(heap, (-activity[var], var))
                incur[var] = 1
        self._trail_len = boundary
        del self._trail_lim[level:]
        if self._qhead > boundary:
            self._qhead = boundary
        if self.theory is not None:
            self.theory.pop_to(boundary)
            if self._theory_qhead > boundary:
                self._theory_qhead = boundary

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting cref, or -1.

        The hot loop: every structure it touches is a flat buffer cached
        in a local.  Watcher entries are interleaved ``[cref, blocker]``
        pairs; a true blocker skips the clause without an arena access.
        """
        val = self._val
        arena = self._arena
        watches = self._watches
        trail = self._trail
        level = self._level
        reason = self._reason
        qhead = self._qhead
        trail_len = self._trail_len
        n_levels = len(self._trail_lim)
        start = qhead
        visits = bhits = 0
        conflict = -1
        while qhead < trail_len:
            pc = trail[qhead]
            qhead += 1
            fc = pc ^ 1  # the literal that just became false
            wl = watches[pc]
            n = len(wl)
            j = 0
            i = -2
            for i in range(0, n, 2):
                cref = wl[i]
                blocker = wl[i + 1]
                base = cref + 3  # _HDR
                first = arena[base]
                if val[blocker] == 1 and (
                    first == blocker or arena[base + 1] == blocker
                ):
                    # Satisfied by a still-watched blocker: skip without
                    # normalising.  (A *stale* blocker — one the clause no
                    # longer watches — falls through to the full inspection
                    # so the keep/move decision, and hence the search
                    # trajectory, stays byte-identical to the reference
                    # core.)
                    bhits += 1
                    if j != i:
                        wl[j] = cref
                        wl[j + 1] = blocker
                    j += 2
                    continue
                # Normalise: the false literal goes to slot 1.
                if first == fc:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = fc
                if val[first] == 1:
                    if j != i:
                        wl[j] = cref
                    wl[j + 1] = first  # refresh the blocker
                    j += 2
                    continue
                end = base + (arena[cref] >> 2)
                k = base + 2
                while k < end:
                    lk = arena[k]
                    if val[lk] != -1:
                        break
                    k += 1
                if k < end:
                    # Found a non-false literal: move the watch there.
                    arena[base + 1] = lk
                    arena[k] = fc
                    target = watches[lk ^ 1]
                    target.append(cref)
                    target.append(first)
                    continue
                if j != i:
                    wl[j] = cref
                wl[j + 1] = first
                j += 2
                if val[first] == -1:
                    conflict = cref
                    break
                # Unit: enqueue ``first`` (inlined _enqueue_code).
                val[first] = 1
                val[first ^ 1] = -1
                var = first >> 1
                level[var] = n_levels
                reason[var] = cref
                trail[trail_len] = first
                trail_len += 1
            if conflict >= 0:
                visits += (i >> 1) + 1
                if j < i + 2:
                    # Keep the unexamined tail of the list (C-level copy).
                    wl[j:] = wl[i + 2 :]
                break
            visits += (i >> 1) + 1
            if j != n:
                del wl[j:]
        self._qhead = qhead
        self._trail_len = trail_len
        self._acc_props += qhead - start
        self._acc_visits += visits
        self._acc_bhits += bhits
        return conflict

    def _theory_sync(self) -> list[int] | None:
        """Feed newly assigned literals to the theory listener.

        When the listener exposes ``atom_vars`` (the set of SAT variables
        carrying theory atoms), pure-boolean trail literals are skipped
        with a set probe instead of a call per literal — on engine
        workloads ~80% of trail entries are guards and auxiliaries the
        theory would ignore anyway.
        """
        theory = self.theory
        if theory is None:
            return None
        trail = self._trail
        trail_len = self._trail_len
        index = self._theory_qhead
        if index >= trail_len:
            return None
        assert_index = theory.assert_index
        atom_vars = getattr(theory, "atom_vars", None)
        if atom_vars is not None:
            while index < trail_len:
                code = trail[index]
                index += 1
                if code >> 1 in atom_vars:
                    lit = -(code >> 1) if code & 1 else code >> 1
                    self._theory_qhead = index
                    explanation = assert_index(index - 1, lit)
                    if explanation is not None:
                        return [-lit for lit in explanation]
            self._theory_qhead = trail_len
            return None
        while index < trail_len:
            code = trail[index]
            lit = -(code >> 1) if code & 1 else code >> 1
            index += 1
            self._theory_qhead = index
            explanation = assert_index(index - 1, lit)
            if explanation is not None:
                return [-lit for lit in explanation]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _rescale_activity(self) -> None:
        # Uniform rescale preserves the heap order — no re-sift.  Heap
        # entry keys are *not* rescaled, so none of them carries the
        # current activity any more: clear every _incur flag (undercount
        # is safe — the next backjump simply pushes a fresh entry).
        activity = self._activity
        incur = self._incur
        for v in range(1, self.n_vars + 1):
            activity[v] *= 1e-100
            incur[v] = 0
        self._var_inc *= 1e-100

    def _bump(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            self._rescale_activity()
        heappush(self._heap, (-activity[var], var))
        self._incur[var] = 1

    def _bump_clause(self, cref: int) -> None:
        slot = self._arena[cref + 2]
        cla_act = self._cla_act
        cla_act[slot] += self._cla_inc
        if cla_act[slot] > 1e20:
            for i, act in enumerate(cla_act):
                if act:
                    cla_act[i] = act * 1e-20
            self._cla_inc *= 1e-20

    def _compute_lbd(self, codes: Sequence[int]) -> int:
        """Distinct decision levels among ``codes`` (all assigned)."""
        level = self._level
        return max(1, len({level[code >> 1] for code in codes}))

    def _analyze(self, conflict: Sequence[int]) -> tuple[list[int], int]:
        """First-UIP analysis.  ``conflict`` codes are all false.

        Returns ``(learnt_codes, backjump_level)`` where ``learnt[0]``
        is the asserting literal's code.
        """
        current = len(self._trail_lim)
        level = self._level
        reason = self._reason
        trail = self._trail
        seen = self._seen
        arena = self._arena
        activity = self._activity
        heap = self._heap
        incur = self._incur
        var_inc = self._var_inc
        learnt: list[int] = []
        marked: list[int] = []  # vars to unmark afterwards
        counter = 0
        steps = 0
        reason_lits: Iterable[int] = conflict
        index = self._trail_len - 1
        asserting = 0
        while True:
            for code in reason_lits:
                steps += 1
                var = code >> 1
                lvl = level[var]
                if seen[var] or lvl == 0:
                    continue
                seen[var] = 1
                marked.append(var)
                # Inlined _bump (the rescale path stays out of line).
                act = activity[var] + var_inc
                activity[var] = act
                if act > 1e100:
                    self._rescale_activity()
                    var_inc = self._var_inc
                    # ``-act`` is a pre-rescale key now; leave _incur
                    # clear so backjump re-pushes a current entry.
                    heappush(heap, (-act, var))
                else:
                    heappush(heap, (-act, var))
                    incur[var] = 1
                if lvl == current:
                    counter += 1
                else:
                    learnt.append(code)
            # Walk the trail backwards to the next marked literal.
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            var = p >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                asserting = p ^ 1
                break
            rref = reason[var]
            if arena[rref] & _LEARNT:
                self._bump_clause(rref)
            base = rref + _HDR
            reason_lits = [
                code for code in arena[base : base + (arena[rref] >> 2)]
                if code != p
            ]
        self._acc_steps += steps
        learnt.insert(0, asserting)
        # Conflict-clause minimisation: drop literals implied by the rest.
        learnt = self._minimise(learnt)
        for var in marked:
            seen[var] = 0
        if len(learnt) == 1:
            return learnt, 0
        # Move the highest-level literal (after the asserting one) to slot 1.
        best = max(range(1, len(learnt)), key=lambda i: level[learnt[i] >> 1])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def _minimise(self, learnt: list[int]) -> list[int]:
        """Cheap local minimisation: a literal whose reason is a subset of
        the clause (plus level-0 literals) is redundant."""
        marked = {code >> 1 for code in learnt}
        level = self._level
        reason = self._reason
        arena = self._arena
        result = [learnt[0]]
        for code in learnt[1:]:
            var = code >> 1
            rref = reason[var]
            if rref == -1:
                result.append(code)
                continue
            base = rref + _HDR
            if all(
                other >> 1 in marked or level[other >> 1] == 0
                for other in arena[base : base + (arena[rref] >> 2)]
                if other >> 1 != var
            ):
                continue  # redundant
            result.append(code)
        return result

    def _analyze_final(self, false_assumption: int) -> list[int]:
        """An inconsistent subset of the assumptions (MiniSat analyzeFinal).

        Called when ``false_assumption`` evaluates false while only
        assumption decisions (and their propagations) are on the trail.
        Walks the implication graph of ``¬false_assumption`` back to the
        assumption decisions responsible; together with ``false_assumption``
        they form a conjunction inconsistent with the clause database.
        """
        core = [false_assumption]
        if self._level[abs(false_assumption)] == 0:
            return core  # refuted by the formula alone
        level = self._level
        reason = self._reason
        arena = self._arena
        trail = self._trail
        seen = {abs(false_assumption)}
        start = self._trail_lim[0] if self._trail_lim else 0
        for index in range(self._trail_len - 1, start - 1, -1):
            code = trail[index]
            var = code >> 1
            if var not in seen:
                continue
            rref = reason[var]
            if rref == -1:
                # A decision below the regular search == an assumption
                # (covers directly contradictory assumption pairs too).
                core.append(-(code >> 1) if code & 1 else code >> 1)
            else:
                base = rref + _HDR
                for other in arena[base : base + (arena[rref] >> 2)]:
                    overt = other >> 1
                    if overt != var and level[overt] > 0:
                        seen.add(overt)
        return core

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> bool:
        """Branch on the hottest unassigned variable.

        Every unassigned variable is in the heap by construction
        (inserted at creation and on every backjump), so heap exhaustion
        *is* the full-assignment test — there is no fallback scan over
        the variable array.
        """
        val = self._val
        heap = self._heap
        activity = self._activity
        incur = self._incur
        while heap:
            negact, var = heappop(heap)
            if -negact == activity[var]:
                incur[var] = 0  # the current-key entry just left the heap
            code = var << 1
            if val[code] == 0:
                self.stats["decisions"] += 1
                self._trail_lim.append(self._trail_len)
                self._enqueue_code(code if self._phase[var] else code | 1, -1)
                return True
        return False

    # ------------------------------------------------------------------
    # Learned-clause lifecycle
    # ------------------------------------------------------------------
    def _root_boundary(self) -> int:
        """Trail length of the level-0 prefix (permanent facts)."""
        return self._trail_lim[0] if self._trail_lim else self._trail_len

    def reduce_db(self) -> int:
        """Forget the cold half of the non-glue learnt clauses.

        Must be called at decision level 0 with propagation at fixpoint
        (the solver calls it right after restart/solve-entry backjumps).
        Keeps every problem clause; learnt binaries and ``lbd <=
        glue_keep`` clauses are protected up to ``glue_cap`` (beyond it
        the coldest are demoted by activity); the remaining tail is
        sorted coldest-first by (activity, then LBD as tiebreak) and only
        the warmest ``reduce_keep`` fraction survives, with
        root-satisfied learnt clauses always dropped.  Implemented as an
        arena compaction: survivors are copied into a fresh arena and the
        watcher lists are rebuilt against the remapped crefs.  Returns
        the number of clauses deleted.
        """
        assert not self._trail_lim, "reduce_db() needs the root level"
        arena = self._arena
        cla_act = self._cla_act
        val = self._val
        # Root-level assignments are permanent facts; conflict analysis
        # never walks below level 0, so their reasons can be forgotten —
        # which unlocks every clause for deletion and remapping.
        for index in range(self._trail_len):
            self._reason[self._trail[index] >> 1] = -1
        keep: list[int] = []
        candidates: list[int] = []
        protected: list[int] = []
        for cref in self._iter_crefs():
            lbd = arena[cref + 1]
            base = cref + _HDR
            end = base + (arena[cref] >> 2)
            if lbd == 0:
                keep.append(cref)
            elif any(val[arena[k]] == 1 for k in range(base, end)):
                continue  # permanently satisfied at root: dead weight
            elif end - base <= 2 or lbd <= self.glue_keep:
                arena[cref] |= _PROTECTED
                protected.append(cref)
            else:
                candidates.append(cref)
        if len(protected) > self.glue_cap:
            # Protection is a priority, not a blank cheque: on these
            # structured encodings most resolvents come out glue-tagged,
            # so the coldest protected clauses re-join the ordinary tail.
            protected.sort(key=lambda c: cla_act[arena[c + 2]], reverse=True)
            for cref in protected[self.glue_cap :]:
                arena[cref] &= ~_PROTECTED
            candidates.extend(protected[self.glue_cap :])
            del protected[self.glue_cap :]
        kept_glue = len(protected)
        keep.extend(protected)
        # Coldest first: lowest activity, ties broken toward dropping
        # high-LBD clauses.  Keep the warmest ``reduce_keep`` fraction.
        candidates.sort(key=lambda c: (cla_act[arena[c + 2]], -arena[c + 1]))
        cut = len(candidates) - int(len(candidates) * self.reduce_keep)
        keep.extend(candidates[cut:])
        keep.sort()
        deleted = self._n_clauses - len(keep)
        if deleted == 0:
            for cref in keep:
                arena[cref] &= ~_PROTECTED
            self.stats["reductions"] += 1
            self.stats["kept_glue"] += kept_glue
            self._reduce_limit = int(self._reduce_limit * self._reduce_growth) + 1
            return 0
        # --- arena compaction ---------------------------------------------
        new_arena: list[int] = []
        new_act: list[float] = []
        learnt_live = 0
        for old in keep:
            base = old + _HDR
            size = arena[old] >> 2
            lbd = arena[old + 1]
            # Watches must sit on non-false literals (false-at-root stays
            # false forever, so a clause watched there would never wake).
            # Propagation is at fixpoint, so every kept unsatisfied clause
            # has >= 2 non-false literals.  Stable partition: non-false
            # literals first, false ones after, original order preserved.
            codes = arena[base : base + size]
            live = [c for c in codes if val[c] != -1]
            dead = [c for c in codes if val[c] == -1]
            new_arena.append((size << 2) | (_LEARNT if lbd else 0))
            new_arena.append(lbd)
            new_arena.append(len(new_act))
            new_act.append(cla_act[arena[old + 2]])
            new_arena.extend(live)
            new_arena.extend(dead)
            if lbd:
                learnt_live += 1
        self._profile["arena_gc_words"] += len(arena) - len(new_arena)
        self._arena = new_arena
        self._cla_act = new_act
        self._n_clauses = len(keep)
        self._learnt_live = learnt_live
        self._watches = [[] for _ in range(2 * self.n_vars + 2)]
        watches = self._watches
        for cref in self._iter_crefs():
            base = cref + _HDR
            first, second = new_arena[base], new_arena[base + 1]
            wl = watches[first ^ 1]
            wl.append(cref)
            wl.append(second)
            wl = watches[second ^ 1]
            wl.append(cref)
            wl.append(first)
        self.stats["reductions"] += 1
        self.stats["reduced"] += deleted
        self.stats["kept_glue"] += kept_glue
        self._reduce_limit = int(self._reduce_limit * self._reduce_growth) + 1
        return deleted

    def _maybe_reduce(self) -> None:
        if self.reduction and self._learnt_live >= self._reduce_limit:
            self.reduce_db()

    def compact(self) -> int:
        """Force one reduction now (e.g. before idling or snapshotting).

        Brings the solver to the root level and propagation to fixpoint
        first; works even with periodic ``reduction`` disabled.  Returns
        the number of clauses deleted (0 when a root conflict makes the
        instance permanently UNSAT instead).
        """
        if not self._ok:
            return 0
        try:
            self._backjump(0)
            if self._propagate() >= 0:
                self._ok = False
                return 0
            if self.theory is not None and self._theory_sync() is not None:
                self._ok = False
                return 0
            return self.reduce_db()
        finally:
            self._flush_counters()

    def learned_clauses(
        self, cap: int | None = None, max_lbd: int | None = None
    ) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """The learnt state as ``(lbd, literals)`` pairs, best-glue first.

        Root-level facts are exported as LBD-1 units ahead of the attached
        learnt clauses (sorted by LBD, then length).  Everything exported
        is a resolvent of the clause database plus theory lemmas — valid
        for any solver over the *same* formula and variable numbering, and
        independent of any assumption set (assumptions are decided above
        the root).  ``cap`` truncates the export, ``max_lbd`` filters it.
        """
        trail = self._trail
        exported: list[tuple[int, tuple[int, ...]]] = [
            (1, (_signed(trail[i]),)) for i in range(self._root_boundary())
        ]
        arena = self._arena
        learnt = sorted(
            (
                (
                    arena[cref + 1],
                    tuple(_signed(code) for code in self._clause_codes(cref)),
                )
                for cref in self._iter_crefs()
                if arena[cref + 1]
            ),
            key=lambda item: (item[0], len(item[1])),
        )
        if max_lbd is not None:
            learnt = [item for item in learnt if item[0] <= max_lbd]
        exported.extend(learnt)
        if cap is not None:
            exported = exported[:cap]
        return tuple(exported)

    def import_learned(
        self,
        clauses: Iterable[tuple[int, Sequence[int]]],
        demote_to: int | None = None,
    ) -> int:
        """Re-attach an export of :meth:`learned_clauses` (sound resolvents).

        The caller vouches that every clause is a consequence of this
        solver's formula (true of a parent solver's export over the same
        CNF image).  Clauses are filtered like :meth:`add_clause` — root-
        satisfied ones are dropped, root-false literals removed — then
        attached as learnt with their shipped LBD, so a later reduction
        treats them exactly like locally derived clauses.

        ``demote_to`` floors the stored LBD of non-binary imports: glue
        status is trajectory-local, so a rehydrated worker imports the
        parent's tail as an evictable cache (``demote_to = glue_keep+1``)
        rather than inheriting its "keep forever" promises — clauses the
        local query mix actually uses earn their keep through activity.
        Returns how many clauses were retained (units included).
        """
        self._backjump(0)
        self.stats["imported_rounds"] += 1
        imported = 0
        for lbd, lits in clauses:
            if not self._ok:
                break
            if any(abs(lit) > self.n_vars for lit in lits):
                # Importing across diverged variable numberings is unsound
                # (split atoms are minted per trajectory) — only exports
                # over this solver's own CNF image are accepted.
                raise ValueError(
                    "imported clause references a variable this solver "
                    "never minted; import only exports taken over the "
                    "same CNF image (fork at rest, snapshot/restore)"
                )
            seen: set[int] = set()
            filtered: list[int] = []
            satisfied = False
            for lit in lits:
                if lit in seen:
                    continue
                if -lit in seen:
                    satisfied = True  # tautology
                    break
                value = self._value(lit)
                if value == 1:
                    satisfied = True
                    break
                if value == -1:
                    continue
                seen.add(lit)
                filtered.append(lit)
            if satisfied:
                continue
            if not filtered:
                self._ok = False
                break
            if len(filtered) == 1:
                if not self._enqueue_code(self._code(filtered[0]), -1):
                    self._ok = False
                    break
            else:
                stored = max(1, min(int(lbd), len(filtered)))
                if demote_to is not None and len(filtered) > 2:
                    stored = max(stored, demote_to)
                self._attach(
                    [self._code(lit) for lit in filtered], lbd=stored
                )
            imported += 1
        self.stats["learned"] += imported
        return imported

    # ------------------------------------------------------------------
    # Saved phases
    # ------------------------------------------------------------------
    def phase_vector(self) -> tuple[bool, ...]:
        """The saved phase of every variable, in variable order."""
        return tuple(bool(p) for p in self._phase[1 : self.n_vars + 1])

    def seed_phases(self, phases: Sequence[bool]) -> None:
        """Overwrite saved phases from a :meth:`phase_vector` export.

        Phases only steer branching order — seeding is always sound and
        is how warm snapshots make a fresh solver search near the parent's
        (or a previous probe's) last model first.
        """
        limit = min(len(phases), self.n_vars)
        for var in range(1, limit + 1):
            self._phase[var] = 1 if phases[var - 1] else 0

    def set_phase(self, var: int, phase: bool) -> None:
        if 1 <= var <= self.n_vars:
            self._phase[var] = 1 if phase else 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        max_conflicts: int | None = None,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> str:
        """Run search to a verdict.  Call repeatedly after adding clauses.

        ``assumptions`` are literals temporarily decided (in order) below
        every regular decision.  An UNSAT verdict caused by them leaves an
        inconsistent subset in :attr:`final_core`; a root-level conflict
        leaves the core empty and the solver permanently unsatisfiable.

        Two cooperative bounds turn a call into a *slice* (the portfolio
        racing primitive): ``conflict_limit`` caps the conflicts spent in
        *this call* and ``should_stop`` is a zero-argument callable polled
        once per propagate cycle.  When either fires the call backjumps to
        the root and returns :data:`UNKNOWN` — no verdict, no core, and
        the solver stays fully reusable: everything learned during the
        slice is kept, so a later call (possibly after importing peer
        clauses) resumes where this one stopped.  ``conflict_limit``
        expiry bumps ``stats["conflict_limit_hits"]``; a ``should_stop``
        hit bumps ``stats["cancelled"]``.  (``max_conflicts`` is the older
        *cumulative* budget that raises :class:`BudgetExceeded` instead —
        a hard failure, not a slice boundary.)
        """
        try:
            return self._solve(
                max_conflicts, assumptions, conflict_limit, should_stop
            )
        finally:
            # Fold the int-accumulated hot-path counters into the public
            # stats/profile dicts on every exit (verdict or budget raise).
            self._flush_counters()

    def _solve(
        self,
        max_conflicts: int | None,
        assumptions: Sequence[int],
        conflict_limit: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> str:
        self.final_core = []
        if not self._ok:
            return UNSAT
        self._backjump(0)
        conflicts_entry = self.stats["conflicts"]
        if self.reduction and self._learnt_live >= self._reduce_limit:
            # Reduce between queries: bring root propagation to fixpoint
            # first (reduce_db's precondition; clauses added since the
            # last call may still have pending root units).
            if self._propagate() >= 0:
                self._ok = False
                return UNSAT
            if self.theory is not None and self._theory_sync() is not None:
                self._ok = False
                return UNSAT
            self.reduce_db()
        arena = self._arena
        level = self._level
        restart_unit = 128
        restart_count = 0
        budget = _luby(restart_count + 1) * restart_unit
        conflicts_here = 0
        while True:
            # Cooperative slice bounds, polled once per propagate cycle so
            # a losing racer stops within one cycle of being beaten.  Both
            # exits leave the solver at the root with all learning kept.
            if should_stop is not None and should_stop():
                self._backjump(0)
                self.stats["cancelled"] += 1
                return UNKNOWN
            if (
                conflict_limit is not None
                and self.stats["conflicts"] - conflicts_entry >= conflict_limit
            ):
                self._backjump(0)
                self.stats["conflict_limit_hits"] += 1
                return UNKNOWN
            conflict_ref = self._propagate()
            arena = self._arena  # _propagate may follow a reduce_db swap
            if conflict_ref < 0:
                theory_conflict = self._theory_sync()
                if theory_conflict is None:
                    conflict_codes = None
                else:
                    conflict_codes = [
                        2 * lit if lit > 0 else -2 * lit + 1
                        for lit in theory_conflict
                    ]
            else:
                base = conflict_ref + _HDR
                conflict_codes = arena[
                    base : base + (arena[conflict_ref] >> 2)
                ]
                if arena[conflict_ref] & _LEARNT:
                    self._bump_clause(conflict_ref)
            if conflict_codes is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                if max_conflicts is not None and self.stats["conflicts"] > max_conflicts:
                    raise BudgetExceeded(self.stats["conflicts"])
                # A theory conflict may live entirely below the current level.
                top = 0
                for code in conflict_codes:
                    lvl = level[code >> 1]
                    if lvl > top:
                        top = lvl
                if top == 0:
                    self._ok = False
                    return UNSAT
                if top < len(self._trail_lim):
                    self._backjump(top)
                learnt, back_level = self._analyze(conflict_codes)
                lbd = self._compute_lbd(learnt)
                self._backjump(back_level)
                self.stats["learned"] += 1
                if len(learnt) == 1:
                    if not self._enqueue_code(learnt[0], -1):
                        self._ok = False
                        return UNSAT
                else:
                    cref = self._attach(learnt, lbd=lbd)
                    self._enqueue_code(learnt[0], cref)
                self._var_inc /= 0.95
                self._cla_inc /= 0.999
                continue
            if conflicts_here >= budget:
                self.stats["restarts"] += 1
                restart_count += 1
                budget = _luby(restart_count + 1) * restart_unit
                conflicts_here = 0
                self._backjump(0)
                self._maybe_reduce()
                arena = self._arena
                continue
            if len(self._trail_lim) < len(assumptions):
                # Re-assert the next pending assumption as a decision.
                lit = assumptions[len(self._trail_lim)]
                code = 2 * lit if lit > 0 else -2 * lit + 1
                value = self._val[code]
                if value == 1:
                    # Already implied: open an empty level so positions in
                    # ``assumptions`` keep lining up with decision levels.
                    self._trail_lim.append(self._trail_len)
                    continue
                if value == -1:
                    self.final_core = self._analyze_final(lit)
                    self._backjump(0)
                    return UNSAT
                self.stats["decisions"] += 1
                self._trail_lim.append(self._trail_len)
                self._enqueue_code(code, -1)
                continue
            if not self._decide():
                if self.theory is not None:
                    explanation = self.theory.final_check()
                    if explanation is not None:
                        conflict_codes = [
                            2 * lit + 1 if lit > 0 else -2 * lit
                            for lit in explanation
                        ]
                        self.stats["conflicts"] += 1
                        top = 0
                        for code in conflict_codes:
                            lvl = level[code >> 1]
                            if lvl > top:
                                top = lvl
                        if top == 0:
                            self._ok = False
                            return UNSAT
                        self._backjump(top)
                        learnt, back_level = self._analyze(conflict_codes)
                        lbd = self._compute_lbd(learnt)
                        self._backjump(back_level)
                        self.stats["learned"] += 1
                        if len(learnt) == 1:
                            if not self._enqueue_code(learnt[0], -1):
                                self._ok = False
                                return UNSAT
                        else:
                            cref = self._attach(learnt, lbd=lbd)
                            self._enqueue_code(learnt[0], cref)
                        continue
                return SAT

    def model_value(self, var: int) -> bool:
        return self._val[var << 1] == 1


class BudgetExceeded(RuntimeError):
    """Raised when the conflict budget passed to :meth:`Cdcl.solve` runs out."""
