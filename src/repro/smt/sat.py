"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal
propagation, first-UIP conflict analysis with clause learning, VSIDS
branching with phase saving, and Luby restarts.  A theory listener can be
attached for DPLL(T) integration; it is kept in sync with the trail and may
report conflicts as lists of literals (the negation of a theory-inconsistent
set of asserted literals).

Solving is *incremental and assumption-based* (the MiniSat ``solve(assumps)``
discipline): :meth:`Cdcl.solve` accepts a sequence of assumption literals
that are decided, in order, below all regular decisions.  Clauses learned
during any call are resolvents of the clause database alone — assumption
literals enter them only negated, like decision literals — so the learned
clauses remain valid for every later call under any assumption set.  When
the instance is unsatisfiable *because of* the assumptions, ``final_core``
holds an inconsistent subset of them (the failed core); a root-level
conflict leaves the core empty and marks the solver permanently UNSAT.

The solver is deliberately self-contained (plain lists, no numpy) so its
behaviour is easy to audit — it is part of the trusted base of the
verification results.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, Protocol, Sequence

__all__ = ["Cdcl", "TheoryListener", "SAT", "UNSAT"]

SAT = "sat"
UNSAT = "unsat"

_UNDEF = 0


class TheoryListener(Protocol):
    """Callbacks the CDCL core uses to keep a theory solver in sync."""

    def assert_index(self, index: int, lit: int) -> list[int] | None:
        """Notify that trail position ``index`` holds ``lit``.

        Returns ``None`` when consistent, otherwise a conflict explanation:
        a list of asserted literals whose conjunction is theory-inconsistent.
        """

    def pop_to(self, trail_length: int) -> None:
        """Undo all assertions at trail positions ≥ ``trail_length``."""

    def final_check(self) -> list[int] | None:
        """Full-assignment check; same contract as :meth:`assert_index`."""


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Standard formulation: find the smallest complete binary sequence of
    length ``2^seq − 1`` covering position ``i``, then recurse into the
    remainder (iteratively).
    """
    index = i - 1  # zero-based position
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


class Cdcl:
    """Conflict-driven clause-learning SAT solver with theory hooks."""

    def __init__(self, theory: TheoryListener | None = None):
        self.theory = theory
        self.n_vars = 0
        self.clauses: list[list[int]] = []
        self._watches: list[list[int]] = [[], []]  # indexed by literal code
        self._assign: list[int] = [0]  # 1 true, -1 false, 0 undef; index by var
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]  # clause index, -1 for decisions
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._theory_qhead = 0
        self._heap: list[tuple[float, int]] = []
        self._var_inc = 1.0
        self._ok = True
        self.final_core: list[int] = []
        self.stats = {"conflicts": 0, "decisions": 0, "propagations": 0, "restarts": 0}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.n_vars += 1
        self._assign.append(_UNDEF)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        heappush(self._heap, (0.0, self.n_vars))
        return self.n_vars

    def ensure_vars(self, n: int) -> None:
        while self.n_vars < n:
            self.new_var()

    @staticmethod
    def _code(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause, rewinding to the root level first if needed."""
        self._backjump(0)
        if not self._ok:
            return
        seen: set[int] = set()
        filtered: list[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology
            value = self._value(lit)
            if value == 1:
                return  # already satisfied at level 0
            if value == -1:
                continue  # false at level 0: drop the literal
            seen.add(lit)
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return
        if len(filtered) == 1:
            self._enqueue(filtered[0], -1)
            return
        self._attach(filtered)

    def _attach(self, lits: list[int]) -> int:
        index = len(self.clauses)
        self.clauses.append(lits)
        self._watches[self._code(-lits[0])].append(index)
        self._watches[self._code(-lits[1])].append(index)
        return index

    # ------------------------------------------------------------------
    # Trail manipulation
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = abs(lit)
        value = self._value(lit)
        if value == 1:
            return True
        if value == -1:
            return False
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self.decision_level
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _backjump(self, level: int) -> None:
        if self.decision_level <= level:
            return
        boundary = self._trail_lim[level]
        for lit in self._trail[boundary:]:
            var = abs(lit)
            self._phase[var] = lit > 0
            self._assign[var] = _UNDEF
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        if self.theory is not None:
            self.theory.pop_to(len(self._trail))
            self._theory_qhead = min(self._theory_qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns the conflicting clause's literals."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            code = self._code(lit)
            watch_list = self._watches[code]
            kept: list[int] = []
            conflict: list[int] | None = None
            for position, clause_index in enumerate(watch_list):
                clause = self.clauses[clause_index]
                # Normalise: the false literal (-lit) goes to slot 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause_index)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[self._code(-clause[1])].append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause_index)
                if self._value(first) == -1:
                    kept.extend(watch_list[position + 1 :])
                    conflict = clause
                    break
                self._enqueue(first, clause_index)
            self._watches[code] = kept
            if conflict is not None:
                return conflict
        return None

    def _theory_sync(self) -> list[int] | None:
        """Feed newly assigned literals to the theory listener."""
        if self.theory is None:
            return None
        while self._theory_qhead < len(self._trail):
            index = self._theory_qhead
            lit = self._trail[index]
            self._theory_qhead += 1
            explanation = self.theory.assert_index(index, lit)
            if explanation is not None:
                return [-l for l in explanation]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heappush(self._heap, (-self._activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis.  ``conflict`` literals are all false.

        Returns ``(learnt_clause, backjump_level)`` where ``learnt_clause[0]``
        is the asserting literal.
        """
        current = self.decision_level
        learnt: list[int] = []
        seen = [False] * (self.n_vars + 1)
        counter = 0
        reason_lits: Iterable[int] = conflict
        index = len(self._trail) - 1
        asserting_lit = 0
        while True:
            for lit in reason_lits:
                var = abs(lit)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current:
                    counter += 1
                else:
                    learnt.append(lit)
            # Walk the trail backwards to the next marked literal.
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                asserting_lit = -p
                break
            reason_index = self._reason[var]
            reason_lits = [l for l in self.clauses[reason_index] if l != p]
        learnt.insert(0, asserting_lit)
        # Conflict-clause minimisation: drop literals implied by the rest.
        learnt = self._minimise(learnt, seen)
        if len(learnt) == 1:
            return learnt, 0
        # Move the highest-level literal (after the asserting one) to slot 1.
        best = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _minimise(self, learnt: list[int], seen: list[bool]) -> list[int]:
        """Cheap local minimisation: a literal whose reason is a subset of
        the clause (plus level-0 literals) is redundant."""
        marked = set(abs(l) for l in learnt)
        result = [learnt[0]]
        for lit in learnt[1:]:
            reason_index = self._reason[abs(lit)]
            if reason_index == -1:
                result.append(lit)
                continue
            reason = self.clauses[reason_index]
            if all(
                abs(other) in marked or self._level[abs(other)] == 0
                for other in reason
                if abs(other) != abs(lit)
            ):
                continue  # redundant
            result.append(lit)
        return result

    def _analyze_final(self, false_assumption: int) -> list[int]:
        """An inconsistent subset of the assumptions (MiniSat analyzeFinal).

        Called when ``false_assumption`` evaluates false while only
        assumption decisions (and their propagations) are on the trail.
        Walks the implication graph of ``¬false_assumption`` back to the
        assumption decisions responsible; together with ``false_assumption``
        they form a conjunction inconsistent with the clause database.
        """
        core = [false_assumption]
        if self._level[abs(false_assumption)] == 0:
            return core  # refuted by the formula alone
        seen = {abs(false_assumption)}
        start = self._trail_lim[0] if self._trail_lim else 0
        for index in range(len(self._trail) - 1, start - 1, -1):
            lit = self._trail[index]
            var = abs(lit)
            if var not in seen:
                continue
            reason_index = self._reason[var]
            if reason_index == -1:
                # A decision below the regular search == an assumption
                # (covers directly contradictory assumption pairs too).
                core.append(lit)
            else:
                for other in self.clauses[reason_index]:
                    if abs(other) != var and self._level[abs(other)] > 0:
                        seen.add(abs(other))
        return core

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> bool:
        while self._heap:
            _, var = heappop(self._heap)
            if self._assign[var] == _UNDEF:
                self.stats["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                lit = var if self._phase[var] else -var
                self._enqueue(lit, -1)
                return True
        # Heap exhausted: scan for any unassigned variable (stale heap).
        for var in range(1, self.n_vars + 1):
            if self._assign[var] == _UNDEF:
                self.stats["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(var if self._phase[var] else -var, -1)
                return True
        return False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        max_conflicts: int | None = None,
        assumptions: Sequence[int] = (),
    ) -> str:
        """Run search to a verdict.  Call repeatedly after adding clauses.

        ``assumptions`` are literals temporarily decided (in order) below
        every regular decision.  An UNSAT verdict caused by them leaves an
        inconsistent subset in :attr:`final_core`; a root-level conflict
        leaves the core empty and the solver permanently unsatisfiable.
        """
        self.final_core = []
        if not self._ok:
            return UNSAT
        self._backjump(0)
        restart_unit = 128
        restart_count = 0
        budget = _luby(restart_count + 1) * restart_unit
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is None:
                conflict_lits = self._theory_sync()
            else:
                conflict_lits = conflict
            if conflict_lits is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                if max_conflicts is not None and self.stats["conflicts"] > max_conflicts:
                    raise BudgetExceeded(self.stats["conflicts"])
                # A theory conflict may live entirely below the current level.
                top = max(
                    (self._level[abs(l)] for l in conflict_lits), default=0
                )
                if top == 0:
                    self._ok = False
                    return UNSAT
                if top < self.decision_level:
                    self._backjump(top)
                learnt, back_level = self._analyze(conflict_lits)
                self._backjump(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        self._ok = False
                        return UNSAT
                else:
                    index = self._attach(learnt)
                    self._enqueue(learnt[0], index)
                self._var_inc /= 0.95
                continue
            if conflicts_here >= budget:
                self.stats["restarts"] += 1
                restart_count += 1
                budget = _luby(restart_count + 1) * restart_unit
                conflicts_here = 0
                self._backjump(0)
                continue
            if self.decision_level < len(assumptions):
                # Re-assert the next pending assumption as a decision.
                lit = assumptions[self.decision_level]
                value = self._value(lit)
                if value == 1:
                    # Already implied: open an empty level so positions in
                    # ``assumptions`` keep lining up with decision levels.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == -1:
                    self.final_core = self._analyze_final(lit)
                    self._backjump(0)
                    return UNSAT
                self.stats["decisions"] += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, -1)
                continue
            if not self._decide():
                if self.theory is not None:
                    explanation = self.theory.final_check()
                    if explanation is not None:
                        conflict_lits = [-l for l in explanation]
                        self.stats["conflicts"] += 1
                        top = max(
                            (self._level[abs(l)] for l in conflict_lits), default=0
                        )
                        if top == 0:
                            self._ok = False
                            return UNSAT
                        self._backjump(top)
                        learnt, back_level = self._analyze(conflict_lits)
                        self._backjump(back_level)
                        if len(learnt) == 1:
                            if not self._enqueue(learnt[0], -1):
                                self._ok = False
                                return UNSAT
                        else:
                            index = self._attach(learnt)
                            self._enqueue(learnt[0], index)
                        continue
                return SAT

    def model_value(self, var: int) -> bool:
        return self._assign[var] == 1


class BudgetExceeded(RuntimeError):
    """Raised when the conflict budget passed to :meth:`Cdcl.solve` runs out."""
