"""Pickle-safe snapshots of a built solver state.

The term language is hash-consed with identity-based equality (``IntVar``
equality is ``is``, interning keys use process-local ``uid`` counters), so
:class:`~repro.smt.terms.Term` objects cannot cross a process boundary.
What *can* cross is the CNF level: by the time an encoding has been loaded
into a :class:`~repro.smt.Solver`, every assertion is integer clauses, a
``name → SAT var`` table for boolean variables, and a ``SAT var → linear
atom`` side table whose atoms are integer coefficient rows over named
integer variables.  :class:`SolverSnapshot` captures exactly that — plain
tuples of ints and strings, safely picklable under any multiprocessing
start method.

:func:`restore_solver` rebuilds a fully independent :class:`Solver` from a
snapshot: fresh ``IntVar`` objects are minted (one per original variable,
keyed by the original's ``uid``) and the CNF tables are repopulated so the
first ``check()`` hands everything to a fresh CDCL core and theory bridge.
The restored solver connects to snapshot state **by name**: asserting or
assuming a ``boolvar("g")`` resolves to the snapshot's SAT variable for
``g``, which is how worker processes re-use guard literals minted by the
parent (deadlock-case guards, ``cap[q==k]`` capacity pins) without ever
shipping a term.  New arithmetic over the *restored* ``IntVar`` objects
(returned in the uid map) composes with snapshot constraints exactly like
new arithmetic in the original solver would.

Learned clauses are deliberately not captured: they are redundant, and the
snapshot is taken once per session build while workers re-learn what their
own query mix needs (see ROADMAP: per-worker clause-database reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

from .terms import IntVar, LinearAtom

__all__ = ["SolverSnapshot", "snapshot_solver", "restore_solver"]

SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SolverSnapshot:
    """Plain-data image of a :class:`~repro.smt.Solver`'s asserted state.

    Every field is built from ints, strings and tuples only, so instances
    pickle under the ``spawn`` start method and can be stored or hashed
    for cache keys.  ``int_vars`` keys integer variables by the *original*
    process's ``uid`` — a stable token for callers to name variables
    across the boundary, never interpreted as a uid on the restoring side.
    """

    version: int
    max_splits: int
    n_vars: int
    clauses: tuple[tuple[int, ...], ...]
    unsatisfiable: bool
    bool_vars: tuple[tuple[str, int], ...]  # (name, SAT var)
    int_vars: tuple[tuple[int, str], ...]  # (original uid, name)
    atoms: tuple[tuple[int, tuple[tuple[int, int], ...], int], ...]
    # each atom: (SAT var, ((int var uid, coeff), ...), bound)


def snapshot_solver(solver) -> SolverSnapshot:
    """Capture ``solver``'s base-level assertions as plain data.

    Requires all :meth:`~repro.smt.Solver.push` scopes to be closed — a
    snapshot has no way to mark a scope "still open" on the other side.
    Clauses of *popped* scopes are captured as-is (they carry a retired
    selector literal and stay permanently satisfied, same as locally).
    """
    if solver.scope_depth:
        raise ValueError(
            f"cannot snapshot a solver with {solver.scope_depth} open "
            "push() scope(s); pop them first"
        )
    cnf = solver._cnf
    int_vars: dict[int, str] = {}
    atoms = []
    for satvar, atom in cnf.atom_of_var.items():
        for var in atom.variables():
            int_vars.setdefault(var.uid, var.name)
        atoms.append(
            (satvar, tuple((v.uid, c) for v, c in atom.coeffs), atom.bound)
        )
    return SolverSnapshot(
        version=SNAPSHOT_VERSION,
        max_splits=solver._max_splits,
        n_vars=cnf.n_vars,
        clauses=tuple(tuple(clause) for clause in cnf.clauses),
        unsatisfiable=cnf.unsatisfiable,
        bool_vars=tuple(cnf.var_of_boolname.items()),
        # Sorted by original uid: restoration mints fresh IntVars in this
        # order, so their (monotone) new uids preserve the originals'
        # relative order and re-normalised atoms hash onto restored ones.
        int_vars=tuple(sorted(int_vars.items())),
        atoms=tuple(atoms),
    )


def restore_solver(snapshot: SolverSnapshot):
    """Rehydrate ``(solver, ints)`` from a :class:`SolverSnapshot`.

    ``ints`` maps each *original* integer-variable uid to the freshly
    minted :class:`IntVar` standing for it in the restored solver; use it
    to build new arithmetic (capacity pins, blocking shapes) that composes
    with the snapshot's constraints.  Boolean variables need no map — a
    restored solver resolves them by name.
    """
    from .solver import Solver

    if snapshot.version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {snapshot.version} is not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    solver = Solver(max_splits=snapshot.max_splits)
    cnf = solver._cnf
    cnf.n_vars = snapshot.n_vars
    cnf.clauses = [list(clause) for clause in snapshot.clauses]
    cnf.unsatisfiable = snapshot.unsatisfiable
    cnf.var_of_boolname = dict(snapshot.bool_vars)
    ints = {uid: IntVar(name) for uid, name in snapshot.int_vars}
    for satvar, coeffs, bound in snapshot.atoms:
        atom = LinearAtom(tuple((ints[uid], c) for uid, c in coeffs), bound)
        cnf.atom_of_var[satvar] = atom
        cnf.var_of_atom[atom] = satvar
    return solver, ints
