"""Pickle-safe snapshots of a built solver state.

The term language is hash-consed with identity-based equality (``IntVar``
equality is ``is``, interning keys use process-local ``uid`` counters), so
:class:`~repro.smt.terms.Term` objects cannot cross a process boundary.
What *can* cross is the CNF level: by the time an encoding has been loaded
into a :class:`~repro.smt.Solver`, every assertion is integer clauses, a
``name → SAT var`` table for boolean variables, and a ``SAT var → linear
atom`` side table whose atoms are integer coefficient rows over named
integer variables.  :class:`SolverSnapshot` captures exactly that — plain
tuples of ints and strings, safely picklable under any multiprocessing
start method.

:func:`restore_solver` rebuilds a fully independent :class:`Solver` from a
snapshot: fresh ``IntVar`` objects are minted (one per original variable,
keyed by the original's ``uid``) and the CNF tables are repopulated so the
first ``check()`` hands everything to a fresh CDCL core and theory bridge.
The restored solver connects to snapshot state **by name**: asserting or
assuming a ``boolvar("g")`` resolves to the snapshot's SAT variable for
``g``, which is how worker processes re-use guard literals minted by the
parent (deadlock-case guards, ``cap[q==k]`` capacity pins) without ever
shipping a term.  New arithmetic over the *restored* ``IntVar`` objects
(returned in the uid map) composes with snapshot constraints exactly like
new arithmetic in the original solver would.

Learned clauses *can* travel too (``include_learned``): the CDCL core's
export is LBD-sorted ``(lbd, literals)`` tuples over the same variable
numbering the CNF image preserves, so re-attaching them on the restored
side is sound — every exported clause is a resolvent of the snapshotted
formula plus LIA-valid lemmas (branch-and-bound splits, theory
conflicts).  Together with the saved phase vector this is the *warm
snapshot*: a restored worker starts with the parent's deductions and
branching preferences instead of re-deriving them on its first query.
Cold snapshots (the default for :meth:`SessionSpec.snapshot`) simply ship
empty ``learned``/``phases`` fields.

``SNAPSHOT_VERSION`` stays at 2 across the flat-arena CDCL rewrite: the
arena is an internal representation, and the learned export remains the
same LBD-sorted ``(lbd, literals)`` tuples, so snapshots from either core
generation restore interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .terms import IntVar, LinearAtom

__all__ = ["SolverSnapshot", "snapshot_solver", "restore_solver"]

SNAPSHOT_VERSION = 2


@dataclass(frozen=True)
class SolverSnapshot:
    """Plain-data image of a :class:`~repro.smt.Solver`'s asserted state.

    Every field is built from ints, strings and tuples only, so instances
    pickle under the ``spawn`` start method and can be stored or hashed
    for cache keys.  ``int_vars`` keys integer variables by the *original*
    process's ``uid`` — a stable token for callers to name variables
    across the boundary, never interpreted as a uid on the restoring side.
    """

    version: int
    max_splits: int
    n_vars: int
    clauses: tuple[tuple[int, ...], ...]
    unsatisfiable: bool
    bool_vars: tuple[tuple[str, int], ...]  # (name, SAT var)
    int_vars: tuple[tuple[int, str], ...]  # (original uid, name)
    atoms: tuple[tuple[int, tuple[tuple[int, int], ...], int], ...]
    # each atom: (SAT var, ((int var uid, coeff), ...), bound)
    # Warm-start payload (empty on cold snapshots): the CDCL core's
    # learned-clause export as (lbd, literals) pairs, its saved phase
    # vector (0/1 per SAT var), and the reduction policy to restore with
    # — the enable flag plus the tuning knobs (reduce_base etc.), so a
    # worker runs the same lifecycle policy the parent was tuned to.
    learned: tuple[tuple[int, tuple[int, ...]], ...] = ()
    phases: tuple[int, ...] = ()
    reduction: bool = field(default=True)
    reduction_knobs: tuple[tuple[str, float], ...] = ()


def snapshot_solver(
    solver,
    include_learned: bool = False,
    learned_cap: int = 4000,
    max_lbd: int | None = None,
) -> SolverSnapshot:
    """Capture ``solver``'s base-level assertions as plain data.

    Requires all :meth:`~repro.smt.Solver.push` scopes to be closed — a
    snapshot has no way to mark a scope "still open" on the other side.
    Clauses of *popped* scopes are captured as-is (they carry a retired
    selector literal and stay permanently satisfied, same as locally).

    ``include_learned`` additionally captures the learned-clause tail
    (LBD-sorted, at most ``learned_cap`` clauses, optionally filtered to
    ``max_lbd``) and the saved phase vector, producing a *warm* snapshot:
    a solver restored from it starts with every deduction and branching
    preference the captured solver had accumulated.
    """
    if solver.scope_depth:
        raise ValueError(
            f"cannot snapshot a solver with {solver.scope_depth} open "
            "push() scope(s); pop them first"
        )
    cnf = solver._cnf
    int_vars: dict[int, str] = {}
    atoms = []
    for satvar, atom in cnf.atom_of_var.items():
        for var in atom.variables():
            int_vars.setdefault(var.uid, var.name)
        atoms.append(
            (satvar, tuple((v.uid, c) for v, c in atom.coeffs), atom.bound)
        )
    learned: tuple[tuple[int, tuple[int, ...]], ...] = ()
    phases: tuple[int, ...] = ()
    if include_learned:
        learned = solver.learned_clauses(cap=learned_cap, max_lbd=max_lbd)
        phases = tuple(int(p) for p in solver.saved_phases())
    return SolverSnapshot(
        version=SNAPSHOT_VERSION,
        max_splits=solver._max_splits,
        n_vars=cnf.n_vars,
        clauses=tuple(tuple(clause) for clause in cnf.clauses),
        unsatisfiable=cnf.unsatisfiable,
        bool_vars=tuple(cnf.var_of_boolname.items()),
        # Sorted by original uid: restoration mints fresh IntVars in this
        # order, so their (monotone) new uids preserve the originals'
        # relative order and re-normalised atoms hash onto restored ones.
        int_vars=tuple(sorted(int_vars.items())),
        atoms=tuple(atoms),
        learned=learned,
        phases=phases,
        reduction=solver._reduction_knobs["reduction"],
        reduction_knobs=tuple(
            (name, value)
            for name, value in solver._reduction_knobs.items()
            if name != "reduction" and value is not None
        ),
    )


def restore_solver(
    snapshot: SolverSnapshot,
    reduction_overrides: dict[str, object] | None = None,
):
    """Rehydrate ``(solver, ints)`` from a :class:`SolverSnapshot`.

    ``ints`` maps each *original* integer-variable uid to the freshly
    minted :class:`IntVar` standing for it in the restored solver; use it
    to build new arithmetic (capacity pins, blocking shapes) that composes
    with the snapshot's constraints.  Boolean variables need no map — a
    restored solver resolves them by name.

    ``reduction_overrides`` replaces individual reduction-policy knobs
    (``clause_reduction``, ``reduce_base``, ``glue_keep``, …) for the
    restored solver only — the portfolio layer uses this to race
    differently tuned lifecycles over one shared snapshot.  Overrides
    never change verdicts, only search scheduling.
    """
    from .solver import Solver

    if snapshot.version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {snapshot.version} is not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    knobs: dict[str, object] = {
        "clause_reduction": snapshot.reduction,
        **{name: value for name, value in snapshot.reduction_knobs},
    }
    if reduction_overrides:
        unknown = set(reduction_overrides) - {
            "clause_reduction",
            "reduce_base",
            "reduce_growth",
            "glue_keep",
            "glue_cap",
            "reduce_keep",
        }
        if unknown:
            raise ValueError(
                f"unknown reduction override(s): {sorted(unknown)}"
            )
        knobs.update(reduction_overrides)
    solver = Solver(max_splits=snapshot.max_splits, **knobs)
    cnf = solver._cnf
    cnf.n_vars = snapshot.n_vars
    cnf.clauses = [list(clause) for clause in snapshot.clauses]
    cnf.unsatisfiable = snapshot.unsatisfiable
    cnf.var_of_boolname = dict(snapshot.bool_vars)
    ints = {uid: IntVar(name) for uid, name in snapshot.int_vars}
    for satvar, coeffs, bound in snapshot.atoms:
        atom = LinearAtom(tuple((ints[uid], c) for uid, c in coeffs), bound)
        cnf.atom_of_var[satvar] = atom
        cnf.var_of_atom[atom] = satvar
    if snapshot.phases or snapshot.learned:
        # Warm start: the export references the snapshot's variable
        # numbering, which the CNF image preserves verbatim, so phases
        # seed and resolvents re-attach before the first query flushes
        # the formula into the core.
        solver._sat.ensure_vars(snapshot.n_vars)
        if snapshot.phases:
            solver._sat.seed_phases(snapshot.phases)
        if snapshot.learned:
            # Demote non-binary imports below glue protection: the
            # parent's "hot" is not this worker's "hot" (shard locality);
            # what the local query mix uses re-earns activity, the rest
            # is evictable by the first reduction.
            solver._sat.import_learned(
                snapshot.learned, demote_to=solver._sat.glue_keep + 1
            )
    return solver, ints
