"""Incremental exact simplex for linear rational arithmetic.

This is the *general simplex* of Dutertre and de Moura ("A Fast
Linear-Arithmetic Solver for DPLL(T)", CAV 2006): variables carry dynamic
lower/upper bounds asserted and retracted by the SAT search, a tableau of
linear definitions relates *basic* to *non-basic* variables, and
:meth:`Simplex.check` restores feasibility by Bland-rule pivoting or reports
a minimal-ish conflict (the bounds of one infeasible row).

All arithmetic is exact.  Values are plain machine ints for as long as the
state is integral — Python ints and :class:`fractions.Fraction` interoperate
exactly, and only division can leave the integers, so the two pivot helpers
are the sole promotion points.  On the integral workloads the engine
generates this keeps the hot bound-assertion path on C-int comparisons
instead of ``Fraction.__richcmp__``.  Bound retraction is O(1) per change
via an undo trail; pivots are never undone (the tableau is a basis change,
not a logical state).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

__all__ = ["Simplex", "Conflict"]

_NO_BOUND = None


class Conflict(Exception):
    """Raised internally to surface an infeasible bound set.

    ``reasons`` holds the SAT literals whose asserted bounds are jointly
    infeasible.
    """

    def __init__(self, reasons: list[int]):
        super().__init__(f"theory conflict from {reasons}")
        self.reasons = reasons


class Simplex:
    """Exact rational simplex with incremental bound assertion."""

    def __init__(self) -> None:
        self._n = 0
        # Per-variable state (indexed by theory-variable id).
        self._lower: list[Fraction | int | None] = []
        self._upper: list[Fraction | int | None] = []
        self._lower_reason: list[int | None] = []
        self._upper_reason: list[int | None] = []
        self._beta: list[Fraction | int] = []
        # Tableau: row per basic variable, mapping non-basic var -> coeff.
        self._rows: dict[int, dict[int, Fraction | int]] = {}
        # Column index: non-basic var -> set of basic vars whose row uses it.
        self._cols: dict[int, set[int]] = {}
        # Undo trail of (var, 'L'/'U', old_bound, old_reason).
        self._undo: list[tuple[int, str, Fraction | int | None, int | None]] = []
        # Basic variables whose β may violate a bound (lazily validated).
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    # Variable and row registration
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        var = self._n
        self._n += 1
        self._lower.append(_NO_BOUND)
        self._upper.append(_NO_BOUND)
        self._lower_reason.append(None)
        self._upper_reason.append(None)
        self._beta.append(0)
        return var

    def define(self, combo: Mapping[int, Fraction | int]) -> int:
        """Create a slack variable ``s`` with the invariant ``s = combo``.

        ``combo`` may mention both basic and non-basic variables; basic ones
        are substituted by their rows so the new row only mentions non-basic
        variables.  The new variable starts basic.
        """
        slack = self.new_var()
        row: dict[int, Fraction | int] = {}
        for var, coeff in combo.items():
            definition = self._rows.get(var)
            if definition is None:
                self._row_add(row, var, coeff)
            else:
                for inner, inner_coeff in definition.items():
                    self._row_add(row, inner, coeff * inner_coeff)
        self._rows[slack] = row
        for var in row:
            self._cols.setdefault(var, set()).add(slack)
        self._beta[slack] = sum(
            (coeff * self._beta[var] for var, coeff in row.items()), 0
        )
        return slack

    @staticmethod
    def _row_add(row: dict[int, Fraction | int], var: int, coeff: Fraction | int) -> None:
        updated = row.get(var, 0) + coeff
        if updated:
            row[var] = updated
        else:
            row.pop(var, None)

    # ------------------------------------------------------------------
    # Bound assertion (the theory-literal interface)
    # ------------------------------------------------------------------
    def undo_length(self) -> int:
        return len(self._undo)

    def undo_to(self, length: int) -> None:
        while len(self._undo) > length:
            var, which, bound, reason = self._undo.pop()
            if which == "L":
                self._lower[var] = bound
                self._lower_reason[var] = reason
            else:
                self._upper[var] = bound
                self._upper_reason[var] = reason

    def assert_upper(self, var: int, bound: Fraction | int, reason: int) -> list[int] | None:
        """Assert ``var ≤ bound``; returns conflict reasons or None."""
        current = self._upper[var]
        if current is not None and current <= bound:
            return None
        lower = self._lower[var]
        if lower is not None and bound < lower:
            return [self._lower_reason[var], reason]  # type: ignore[list-item]
        self._undo.append((var, "U", current, self._upper_reason[var]))
        self._upper[var] = bound
        self._upper_reason[var] = reason
        if var in self._rows:
            if self._beta[var] > bound:
                self._dirty.add(var)
        elif self._beta[var] > bound:
            self._update_nonbasic(var, bound)
        return None

    def assert_lower(self, var: int, bound: Fraction | int, reason: int) -> list[int] | None:
        """Assert ``var ≥ bound``; returns conflict reasons or None."""
        current = self._lower[var]
        if current is not None and current >= bound:
            return None
        upper = self._upper[var]
        if upper is not None and bound > upper:
            return [self._upper_reason[var], reason]  # type: ignore[list-item]
        self._undo.append((var, "L", current, self._lower_reason[var]))
        self._lower[var] = bound
        self._lower_reason[var] = reason
        if var in self._rows:
            if self._beta[var] < bound:
                self._dirty.add(var)
        elif self._beta[var] < bound:
            self._update_nonbasic(var, bound)
        return None

    def _update_nonbasic(self, var: int, value: Fraction | int) -> None:
        delta = value - self._beta[var]
        self._beta[var] = value
        for basic in self._cols.get(var, ()):
            self._beta[basic] += self._rows[basic][var] * delta
            self._dirty.add(basic)

    # ------------------------------------------------------------------
    # Feasibility restoration
    # ------------------------------------------------------------------
    def check(self, full: bool = False) -> list[int] | None:
        """Restore bound-feasibility; returns conflict reasons or None.

        With ``full=True`` every row is re-validated instead of trusting the
        dirty-set bookkeeping; the theory bridge uses this as a safety net at
        full assignments.
        """
        if full:
            self._dirty.update(self._rows)
        while True:
            violated = self._find_violated_basic()
            if violated is None:
                return None
            basic, needs_increase = violated
            try:
                self._repair(basic, needs_increase)
            except Conflict as conflict:
                # Keep the violation visible: the conflicting bound will be
                # retracted on backjump, after which this row may still need
                # repair under the looser bounds.
                self._dirty.add(basic)
                return conflict.reasons

    def _violation(self, basic: int) -> bool | None:
        """None if within bounds, else True (below lower) / False (above upper)."""
        lower = self._lower[basic]
        if lower is not None and self._beta[basic] < lower:
            return True
        upper = self._upper[basic]
        if upper is not None and self._beta[basic] > upper:
            return False
        return None

    def _find_violated_basic(self) -> tuple[int, bool] | None:
        """Smallest violated basic variable (Bland's anti-cycling rule)."""
        stale: list[int] = []
        best: tuple[int, bool] | None = None
        for basic in self._dirty:
            if basic not in self._rows:
                stale.append(basic)
                continue
            direction = self._violation(basic)
            if direction is None:
                stale.append(basic)
            elif best is None or basic < best[0]:
                best = (basic, direction)
        for basic in stale:
            self._dirty.discard(basic)
        if best is not None:
            self._dirty.discard(best[0])
        return best

    def _repair(self, basic: int, needs_increase: bool) -> None:
        row = self._rows[basic]
        target = self._lower[basic] if needs_increase else self._upper[basic]
        assert target is not None
        candidate: int | None = None
        for var in sorted(row):
            coeff = row[var]
            grows = coeff > 0 if needs_increase else coeff < 0
            if grows:
                upper = self._upper[var]
                if upper is None or self._beta[var] < upper:
                    candidate = var
                    break
            else:
                lower = self._lower[var]
                if lower is None or self._beta[var] > lower:
                    candidate = var
                    break
        if candidate is None:
            reasons: list[int] = []
            own_reason = (
                self._lower_reason[basic] if needs_increase else self._upper_reason[basic]
            )
            reasons.append(own_reason)  # type: ignore[arg-type]
            for var, coeff in row.items():
                grows = coeff > 0 if needs_increase else coeff < 0
                reason = self._upper_reason[var] if grows else self._lower_reason[var]
                reasons.append(reason)  # type: ignore[arg-type]
            raise Conflict([r for r in reasons if r is not None])
        self._pivot_and_update(basic, candidate, target)

    def _pivot_and_update(self, basic: int, entering: int, value: Fraction | int) -> None:
        coeff = self._rows[basic][entering]
        # Promotion point: division must stay exact, so wrap both sides
        # (int / int would fall to float).
        theta = Fraction(value - self._beta[basic]) / Fraction(coeff)
        self._beta[basic] = value
        self._beta[entering] += theta
        for other in self._cols.get(entering, ()):
            if other != basic:
                self._beta[other] += self._rows[other][entering] * theta
                self._dirty.add(other)
        self._pivot(basic, entering)
        # The entering variable is basic now and may overshoot its own
        # opposite bound; later iterations repair it.
        self._dirty.add(entering)

    def _pivot(self, leaving: int, entering: int) -> None:
        row = self._rows.pop(leaving)
        for var in row:
            self._cols[var].discard(leaving)
        coeff = row.pop(entering)
        # Promotion point: the only other division (see _pivot_and_update).
        inv = Fraction(1) / Fraction(coeff)
        new_row = {leaving: inv}
        for var, c in row.items():
            new_row[var] = -c * inv
        self._rows[entering] = new_row
        for var in new_row:
            self._cols.setdefault(var, set()).add(entering)
        # Substitute the entering variable out of every other row.
        users = self._cols.pop(entering, set())
        users.discard(entering)
        for user in users:
            user_row = self._rows[user]
            factor = user_row.pop(entering)
            for var, c in new_row.items():
                before = var in user_row
                self._row_add(user_row, var, factor * c)
                after = var in user_row
                if after and not before:
                    self._cols.setdefault(var, set()).add(user)
                elif before and not after:
                    self._cols[var].discard(user)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def value(self, var: int) -> Fraction | int:
        return self._beta[var]

    def is_basic(self, var: int) -> bool:
        return var in self._rows

    def bounds(self, var: int) -> tuple[Fraction | int | None, Fraction | int | None]:
        return self._lower[var], self._upper[var]
