"""Public SMT solver facade.

Usage::

    from repro.smt import Solver, Result, intvar, le

    x = intvar("x")
    solver = Solver()
    solver.add(le(0, x))
    solver.add(le(x, 5))
    solver.add(le(3, x + 1))
    if solver.check() == Result.SAT:
        print(solver.model()[x])

The solver decides quantifier-free linear integer arithmetic with arbitrary
boolean structure.  Rational relaxations are solved by the exact simplex;
integrality is enforced by branch-and-bound: whenever the SAT+LRA search
finds a model with a fractional integer variable ``x = v``, the globally
valid split clause ``(x ≤ ⌊v⌋) ∨ (x ≥ ⌊v⌋+1)`` is added and the search
resumes with all learned clauses intact.

The facade is *incremental*: the CNF conversion, the CDCL core, the theory
bridge and every learned clause and branch-and-bound split persist across
:meth:`Solver.check` calls.  Three mechanisms build on that retention:

* ``check(assumptions=[...])`` decides the query under temporary
  assumptions (arbitrary terms); after an UNSAT answer,
  :meth:`Solver.unsat_core` names the responsible assumptions.
* :meth:`Solver.push` / :meth:`Solver.pop` scope later assertions with
  selector literals, so popped assertions are retracted without discarding
  any learned clause.
* repeated ``check`` calls on a monotonically growing assertion set reuse
  all prior work (the classic ``add``/``check`` loop).

Branch-and-bound terminates whenever every integer variable is bounded by
the constraints (true for every formula ADVOCAT generates: occupancies lie
in ``[0, queue.size]`` and state variables in ``[0, 1]``).  A ``max_splits``
safety valve raises :class:`SolverBudgetError` otherwise.
"""

from __future__ import annotations

import enum
from itertools import islice
from math import floor
from typing import Callable, Sequence

from .cnf import CnfBuilder
from .lia import LiaBridge
from .sat import SAT, UNKNOWN, Cdcl
from .terms import TRUE, IntVar, Term, ge, le

__all__ = ["Solver", "Result", "Model", "SolverBudgetError"]


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    # A cooperatively bounded check() ran out of its conflict slice or was
    # told to stop (portfolio racing); no verdict, every learned clause and
    # branch-and-bound split is retained for the next call.
    UNKNOWN = "unknown"


class SolverBudgetError(RuntimeError):
    """The branch-and-bound split budget was exhausted."""


class Model:
    """A satisfying assignment; index with :class:`IntVar`, BoolVar or name.

    Indexing a variable the model knows nothing about raises ``KeyError``
    (it would previously default to ``0``/``False``, silently masking
    encoding bugs).
    """

    def __init__(self, ints: dict[IntVar, int], bools: dict[str, bool]):
        self._ints = ints
        self._bools = bools

    def __getitem__(self, key: IntVar | Term | str) -> int | bool:
        if isinstance(key, IntVar):
            try:
                return self._ints[key]
            except KeyError:
                raise KeyError(
                    f"integer variable {key.name!r} is not constrained by the "
                    "checked formula, so the model assigns it no value"
                ) from None
        if isinstance(key, str):
            name = key
        else:
            name = getattr(key, "name", None)
            if name is None:
                raise KeyError(key)
        try:
            return self._bools[name]
        except KeyError:
            raise KeyError(
                f"boolean variable {name!r} does not occur in the checked "
                "formula, so the model assigns it no value"
            ) from None

    def __contains__(self, key: IntVar | Term | str) -> bool:
        if isinstance(key, IntVar):
            return key in self._ints
        name = key if isinstance(key, str) else getattr(key, "name", None)
        return name in self._bools

    def int_items(self) -> dict[IntVar, int]:
        return dict(self._ints)

    def bool_items(self) -> dict[str, bool]:
        return dict(self._bools)


class Solver:
    """Incremental QF_LIA solver over the repro term language.

    ``clause_reduction`` (with the ``reduce_base`` / ``reduce_growth`` /
    ``glue_keep`` knobs) controls the learned-clause lifecycle of the CDCL
    core — see :class:`~repro.smt.sat.Cdcl`.  Reduction never changes
    verdicts; disabling it reproduces the unbounded clause database of
    earlier revisions (measured by ``benchmarks/bench_warmstart.py``).
    """

    def __init__(
        self,
        max_splits: int = 100_000,
        clause_reduction: bool = True,
        reduce_base: int = 400,
        reduce_growth: float = 1.3,
        glue_keep: int = 2,
        glue_cap: int | None = None,
        reduce_keep: float = 0.5,
    ):
        self._max_splits = max_splits
        self._reduction_knobs = dict(
            reduction=clause_reduction,
            reduce_base=reduce_base,
            reduce_growth=reduce_growth,
            glue_keep=glue_keep,
            glue_cap=glue_cap,
            reduce_keep=reduce_keep,
        )
        self._cnf = CnfBuilder()
        self._bridge = LiaBridge()
        self._sat = Cdcl(theory=self._bridge, **self._reduction_knobs)
        self._flushed_clauses = 0
        self._registered_atoms = 0
        self._scopes: list[int] = []  # selector SAT variables, innermost last
        self._model: Model | None = None
        self._core: list[Term] | None = None
        self._formula_unsat: bool | None = None
        self.stats: dict[str, int] = {}
        # Per-query deltas of the CDCL core's hot-loop profile counters
        # (see Cdcl.profile); same delta discipline as ``stats``.
        self.profile: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Cloning and serialization
    # ------------------------------------------------------------------
    def fork(self) -> "Solver":
        """An independent solver over the same asserted formula.

        The CNF state (clauses, variable tables, scope stack) is copied;
        the clone gets a fresh CDCL core and theory bridge, populated
        lazily on its first :meth:`check`.  The learned-clause export and
        saved phases carry over (demoted below glue protection, like a
        snapshot restore), so a fork starts warm but evicts what its own
        query mix doesn't re-use.  Forks share immutable term objects
        with the original, so they are thread-cloning tools; use
        :meth:`snapshot` to cross processes.
        """
        clone = Solver(max_splits=self._max_splits, **self._fork_kwargs())
        clone._cnf = self._cnf.clone()
        clone._scopes = list(self._scopes)
        clone._sat.ensure_vars(clone._cnf.n_vars)
        clone._sat.seed_phases(self._sat.phase_vector())
        clone._sat.import_learned(
            self._sat.learned_clauses(),
            demote_to=clone._sat.glue_keep + 1,
        )
        return clone

    def _fork_kwargs(self) -> dict:
        knobs = dict(self._reduction_knobs)
        knobs["clause_reduction"] = knobs.pop("reduction")
        return knobs

    def snapshot(
        self,
        include_learned: bool = False,
        learned_cap: int = 4000,
        max_lbd: int | None = None,
    ):
        """A pickle-safe :class:`~repro.smt.serialize.SolverSnapshot`.

        With ``include_learned`` the snapshot additionally carries the
        CDCL core's learned-clause export (LBD-sorted, capped at
        ``learned_cap``) and its saved phase vector, so a solver restored
        from it starts *warm*: the first query replays none of the work
        this solver already did.  Sound because every exported clause is a
        resolvent of the snapshotted formula (plus LIA-valid lemmas).
        """
        from .serialize import snapshot_solver

        return snapshot_solver(
            self,
            include_learned=include_learned,
            learned_cap=learned_cap,
            max_lbd=max_lbd,
        )

    @classmethod
    def from_snapshot(cls, snapshot) -> "Solver":
        """Rehydrate a solver from :meth:`snapshot` (possibly cross-process).

        Returns only the solver; use
        :func:`repro.smt.serialize.restore_solver` when the restored
        integer variables are needed for new arithmetic.
        """
        from .serialize import restore_solver

        solver, _ = restore_solver(snapshot)
        return solver

    # ------------------------------------------------------------------
    # Assertions and scopes
    # ------------------------------------------------------------------
    def add(self, term: Term, scope: int | None = None) -> None:
        """Assert ``term``; invalidates any previously extracted model.

        Inside a :meth:`push` scope the assertion is guarded by the scope's
        selector literal and is retracted by the matching :meth:`pop`.
        ``scope`` (a token returned by :meth:`push`) targets a specific open
        scope instead of the innermost one — required for correctness when
        scopes are interleaved, e.g. two concurrently open witness
        enumerations.
        """
        self._model = None
        if scope is not None:
            if scope not in self._scopes:
                raise RuntimeError(f"scope {scope} is not open")
            selector = scope
        elif self._scopes:
            selector = self._scopes[-1]
        else:
            self._cnf.assert_term(term)
            return
        if term is TRUE:
            return
        self._cnf.clauses.append([-selector, self._cnf.literal(term)])

    def add_global(self, term: Term) -> None:
        """Assert ``term`` at the base level, bypassing any open scope.

        For facts that must survive every :meth:`pop` — e.g. sound
        strengthenings (invariants) or guard definitions created lazily
        while a scope happens to be open.
        """
        self._model = None
        self._cnf.assert_term(term)

    def push(self) -> int:
        """Open a retraction scope for subsequent :meth:`add` calls.

        Returns a scope token for targeted :meth:`add`/:meth:`pop` — scopes
        are independent selector literals, so a specific scope can be
        retired even when it is no longer the innermost one.
        """
        selector = self._cnf.new_var()
        self._scopes.append(selector)
        return selector

    def pop(self, scope: int | None = None) -> None:
        """Retract every assertion added under a scope.

        Without ``scope``, pops the innermost open scope; with a token from
        :meth:`push`, retires exactly that scope wherever it sits in the
        stack.  Implemented by retiring the scope's selector literal, so
        clauses learned while the scope was active stay in the solver (they
        carry the negated selector and are satisfied from now on).
        """
        if not self._scopes:
            raise RuntimeError("pop() without a matching push()")
        if scope is None:
            selector = self._scopes.pop()
        else:
            if scope not in self._scopes:
                raise RuntimeError(f"scope {scope} is not open")
            self._scopes.remove(scope)
            selector = scope
        self._cnf.clauses.append([-selector])
        self._model = None

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Hand new vars, atoms and clauses to the SAT core and bridge."""
        cnf = self._cnf
        self._sat.ensure_vars(cnf.n_vars)
        if len(cnf.atom_of_var) > self._registered_atoms:
            # Dicts preserve insertion order: only the unseen tail is new.
            for satvar, atom in islice(
                cnf.atom_of_var.items(), self._registered_atoms, None
            ):
                self._bridge.register_atom(satvar, atom)
            self._registered_atoms = len(cnf.atom_of_var)
        for clause in cnf.clauses[self._flushed_clauses:]:
            self._sat.add_clause(clause)
        self._flushed_clauses = len(cnf.clauses)

    def check(
        self,
        assumptions: Sequence[Term] = (),
        conflict_limit: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> Result:
        """Decide the asserted formula, optionally under ``assumptions``.

        Assumptions are arbitrary terms that hold for this call only; all
        clauses learned while answering remain valid afterwards.  On UNSAT
        with assumptions, :meth:`unsat_core` returns a responsible subset.

        ``conflict_limit`` bounds the SAT conflicts spent in this call
        (shared across branch-and-bound iterations) and ``should_stop`` is
        polled inside the search; when either fires the call returns
        :attr:`Result.UNKNOWN` with no model/core, keeping every learned
        clause and split so a later ``check`` resumes the work.  This is
        the slice primitive the portfolio layer races on.
        """
        self._model = None
        self._core = None
        self._formula_unsat = None
        if self._cnf.unsatisfiable:
            # A bare FALSE was asserted: UNSAT without consulting the SAT
            # core.  The core is empty *because the formula alone is
            # contradictory* (see formula_unsat), and the stat dict keeps
            # the full canonical key set so per-query deltas stay uniform.
            self.stats = {key: 0 for key in self._sat.stats}
            self.stats["splits"] = 0
            self.profile = {key: 0 for key in self._sat.profile()}
            self._core = []
            self._formula_unsat = True
            return Result.UNSAT
        assumption_lits = [self._cnf.literal(term) for term in assumptions]
        before = dict(self._sat.stats)
        before_profile = self._sat.profile()
        self._sync()
        solve_assumptions = [*self._scopes, *assumption_lits]
        splits = 0
        while True:
            remaining = None
            if conflict_limit is not None:
                spent = self._sat.stats["conflicts"] - before["conflicts"]
                remaining = conflict_limit - spent
            verdict = self._sat.solve(
                assumptions=solve_assumptions,
                conflict_limit=remaining,
                should_stop=should_stop,
            )
            if verdict == UNKNOWN:
                self._finish_stats(before, before_profile, splits)
                return Result.UNKNOWN
            if verdict != SAT:
                self._finish_stats(before, before_profile, splits)
                core_lits = set(self._sat.final_core)
                seen: set[int] = set()
                self._core = []
                for term, lit in zip(assumptions, assumption_lits):
                    if lit in core_lits and term.uid not in seen:
                        seen.add(term.uid)
                        self._core.append(term)
                self._formula_unsat = not self._core
                return Result.UNSAT
            fractional = self._bridge.fractional_var()
            if fractional is None:
                self._model = self._extract_model()
                self._finish_stats(before, before_profile, splits)
                return Result.SAT
            splits += 1
            if splits > self._max_splits:
                raise SolverBudgetError(
                    f"exceeded {self._max_splits} branch-and-bound splits; "
                    "are all integer variables bounded?"
                )
            var, value = fractional
            cut = floor(value)
            split_lits = [
                self._cnf.literal(le(var, cut)),
                self._cnf.literal(ge(var, cut + 1)),
            ]
            self._sync()
            self._sat.add_clause(split_lits)

    def _finish_stats(
        self,
        before: dict[str, int],
        before_profile: dict[str, int],
        splits: int,
    ) -> None:
        self.stats = {
            key: value - before.get(key, 0) for key, value in self._sat.stats.items()
        }
        self.stats["splits"] = splits
        self.profile = {
            key: value - before_profile.get(key, 0)
            for key, value in self._sat.profile().items()
        }

    def _extract_model(self) -> Model:
        ints: dict[IntVar, int] = {}
        for var in self._bridge.known_int_vars():
            value = self._bridge.rational_value(var)
            assert value.denominator == 1, "model extraction on fractional value"
            ints[var] = int(value)
        bools = {
            name: self._sat.model_value(satvar)
            for name, satvar in self._cnf.var_of_boolname.items()
        }
        return Model(ints, bools)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def model(self) -> Model:
        """The model of the last SAT :meth:`check`."""
        if self._model is None:
            raise RuntimeError("model() requires a prior SAT check()")
        return self._model

    def unsat_core(self) -> list[Term]:
        """The assumptions responsible for the last UNSAT :meth:`check`.

        A subset of the assumptions passed to that call, in passing order.
        Empty when the assumptions are not needed for the contradiction —
        i.e. the asserted formula (including any assertions in still-open
        :meth:`push` scopes, whose selectors are filtered from the core)
        is unsatisfiable by itself.
        """
        if self._core is None:
            raise RuntimeError("unsat_core() requires a prior UNSAT check()")
        return list(self._core)

    @property
    def formula_unsat(self) -> bool:
        """Whether the last UNSAT verdict holds with *no* assumptions.

        Distinguishes the two readings of an empty :meth:`unsat_core`:
        ``True`` means the asserted formula is contradictory by itself
        (including the early short-circuit on a bare FALSE assertion);
        a ``False`` with a non-empty core means the assumptions were
        responsible.  Requires a prior UNSAT :meth:`check`.
        """
        if self._formula_unsat is None:
            raise RuntimeError("formula_unsat requires a prior UNSAT check()")
        return self._formula_unsat

    # ------------------------------------------------------------------
    # Learned-clause lifecycle and saved phases
    # ------------------------------------------------------------------
    def learned_clauses(
        self, cap: int | None = None, max_lbd: int | None = None
    ) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """LBD-sorted ``(lbd, literals)`` export of the learnt state."""
        return self._sat.learned_clauses(cap=cap, max_lbd=max_lbd)

    def import_learned(
        self,
        clauses: Sequence[tuple[int, Sequence[int]]],
        demote_to: int | None = None,
    ) -> int:
        """Attach another solver's :meth:`learned_clauses` export.

        Only sound when the clauses are consequences of *this* solver's
        asserted formula — true for an export taken from a solver over the
        same CNF image (fork, snapshot/restore).  ``demote_to`` floors the
        stored LBD of non-binary imports so they stay evictable (see
        :meth:`~repro.smt.sat.Cdcl.import_learned`).  Returns the number
        of clauses retained.
        """
        self._sync()  # imported literals must reference existing SAT vars
        return self._sat.import_learned(clauses, demote_to=demote_to)

    def compact(self) -> int:
        """Run one clause-database reduction now (session housekeeping).

        Long-lived sessions call this between workload phases or before
        :meth:`snapshot` to shed the cold learnt tail immediately instead
        of waiting for the geometric schedule.  Returns clauses deleted.
        """
        self._sync()
        return self._sat.compact()

    def saved_phases(self) -> tuple[bool, ...]:
        """The CDCL core's saved phase per SAT variable."""
        return self._sat.phase_vector()

    def seed_phases(self, phases: Sequence[bool]) -> None:
        """Seed branching phases from a :meth:`saved_phases` export."""
        self._sync()
        self._sat.seed_phases(phases)

    def phase_hints(self, hints: dict[str, bool]) -> int:
        """Seed phases of *named* boolean variables (e.g. a previous
        witness's block booleans), steering the next search toward that
        model first.  Unknown names are ignored; returns how many were
        applied."""
        self._sync()
        applied = 0
        for name, value in hints.items():
            var = self._cnf.var_of_boolname.get(name)
            if var is not None and var <= self._sat.n_vars:
                self._sat.set_phase(var, bool(value))
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Introspection (used by benchmarks and tests)
    # ------------------------------------------------------------------
    def clause_count(self) -> int:
        """Clauses in the CDCL core, including learned ones (O(1))."""
        return self._sat.clause_count()

    def learned_count(self) -> int:
        """Live learnt clauses currently attached in the CDCL core."""
        return self._sat.learned_count
