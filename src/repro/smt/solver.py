"""Public SMT solver facade.

Usage::

    from repro.smt import Solver, Result, intvar, le

    x = intvar("x")
    solver = Solver()
    solver.add(le(0, x))
    solver.add(le(x, 5))
    solver.add(le(3, x + 1))
    if solver.check() == Result.SAT:
        print(solver.model()[x])

The solver decides quantifier-free linear integer arithmetic with arbitrary
boolean structure.  Rational relaxations are solved by the exact simplex;
integrality is enforced by branch-and-bound: whenever the SAT+LRA search
finds a model with a fractional integer variable ``x = v``, the globally
valid split clause ``(x ≤ ⌊v⌋) ∨ (x ≥ ⌊v⌋+1)`` is added and the search
resumes with all learned clauses intact.

Branch-and-bound terminates whenever every integer variable is bounded by
the constraints (true for every formula ADVOCAT generates: occupancies lie
in ``[0, queue.size]`` and state variables in ``[0, 1]``).  A ``max_splits``
safety valve raises :class:`SolverBudgetError` otherwise.
"""

from __future__ import annotations

import enum
from math import floor

from .cnf import CnfBuilder
from .lia import LiaBridge
from .sat import SAT, Cdcl
from .terms import IntVar, Term, ge, le

__all__ = ["Solver", "Result", "Model", "SolverBudgetError"]


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"


class SolverBudgetError(RuntimeError):
    """The branch-and-bound split budget was exhausted."""


class Model:
    """A satisfying assignment; index with :class:`IntVar`, BoolVar or name."""

    def __init__(self, ints: dict[IntVar, int], bools: dict[str, bool]):
        self._ints = ints
        self._bools = bools

    def __getitem__(self, key: IntVar | Term | str) -> int | bool:
        if isinstance(key, IntVar):
            return self._ints.get(key, 0)
        if isinstance(key, str):
            return self._bools.get(key, False)
        name = getattr(key, "name", None)
        if name is not None:
            return self._bools.get(name, False)
        raise KeyError(key)

    def int_items(self) -> dict[IntVar, int]:
        return dict(self._ints)

    def bool_items(self) -> dict[str, bool]:
        return dict(self._bools)


class Solver:
    """Incremental QF_LIA solver over the repro term language."""

    def __init__(self, max_splits: int = 100_000):
        self._assertions: list[Term] = []
        self._max_splits = max_splits
        self._model: Model | None = None
        self.stats: dict[str, int] = {}

    def add(self, term: Term) -> None:
        """Assert ``term``; invalidates any previously extracted model."""
        self._assertions.append(term)
        self._model = None

    def check(self) -> Result:
        """Decide the conjunction of all added assertions."""
        cnf = CnfBuilder()
        for term in self._assertions:
            cnf.assert_term(term)
        if cnf.unsatisfiable:
            self.stats = {"conflicts": 0, "decisions": 0, "splits": 0}
            return Result.UNSAT

        bridge = LiaBridge()
        sat = Cdcl(theory=bridge)

        def sync_new_encodings(flushed: int) -> int:
            """Hand new vars, atoms and clauses to the SAT core and bridge."""
            sat.ensure_vars(cnf.n_vars)
            for satvar, atom in cnf.atom_of_var.items():
                bridge.register_atom(satvar, atom)
            for clause in cnf.clauses[flushed:]:
                sat.add_clause(clause)
            return len(cnf.clauses)

        flushed = sync_new_encodings(0)
        splits = 0
        while True:
            verdict = sat.solve()
            if verdict != SAT:
                self.stats = dict(sat.stats, splits=splits)
                return Result.UNSAT
            fractional = bridge.fractional_var()
            if fractional is None:
                self._model = self._extract_model(cnf, bridge, sat)
                self.stats = dict(sat.stats, splits=splits)
                return Result.SAT
            splits += 1
            if splits > self._max_splits:
                raise SolverBudgetError(
                    f"exceeded {self._max_splits} branch-and-bound splits; "
                    "are all integer variables bounded?"
                )
            var, value = fractional
            cut = floor(value)
            split_lits = [cnf.literal(le(var, cut)), cnf.literal(ge(var, cut + 1))]
            flushed = sync_new_encodings(flushed)
            sat.add_clause(split_lits)

    def _extract_model(self, cnf: CnfBuilder, bridge: LiaBridge, sat: Cdcl) -> Model:
        ints: dict[IntVar, int] = {}
        for var in bridge.known_int_vars():
            value = bridge.rational_value(var)
            assert value.denominator == 1, "model extraction on fractional value"
            ints[var] = int(value)
        bools = {
            name: sat.model_value(satvar)
            for name, satvar in cnf.var_of_boolname.items()
        }
        return Model(ints, bools)

    def model(self) -> Model:
        """The model of the last SAT :meth:`check`."""
        if self._model is None:
            raise RuntimeError("model() requires a prior SAT check()")
        return self._model
