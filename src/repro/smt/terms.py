"""Term language for the QF_LIA solver.

The solver works on a small, normalised term language:

* Boolean structure: variables, constants, ``Not``, n-ary ``And`` / ``Or``
  (``Implies`` / ``Iff`` are expanded by the smart constructors).
* Arithmetic atoms: every comparison over linear integer expressions is
  normalised at construction time into a :class:`LinearAtom` of the shape
  ``a·x ≤ b`` with coprime integer coefficients.  Equalities become
  conjunctions of two inequalities; disequalities become negations of
  equalities; strict inequalities use integer tightening
  (``e < b  ⇔  e ≤ b − 1``).

Smart constructors perform constant folding and flattening so that the
formulas handed to the CNF converter are already compact.  Terms are
immutable and hash-consed per :class:`TermFactory`-free global table, which
makes structural sharing cheap and equality checks O(1).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from math import floor, gcd
from typing import Iterable, Mapping, Union

__all__ = [
    "Term",
    "BoolVar",
    "BoolConst",
    "Not",
    "And",
    "Or",
    "Atom",
    "LinearAtom",
    "IntVar",
    "LinExpr",
    "TRUE",
    "FALSE",
    "boolvar",
    "intvar",
    "conj",
    "disj",
    "neg",
    "implies",
    "iff",
    "ite",
    "exactly_one",
    "le",
    "lt",
    "ge",
    "gt",
    "eq",
    "ne",
    "as_linexpr",
]

_ids = itertools.count(1)


# ---------------------------------------------------------------------------
# Integer expressions
# ---------------------------------------------------------------------------


class IntVar:
    """An integer-sorted variable."""

    __slots__ = ("name", "uid")

    def __init__(self, name: str):
        self.name = name
        self.uid = next(_ids)

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    # Arithmetic sugar: IntVar behaves like the trivial LinExpr.
    def _lift(self) -> "LinExpr":
        return LinExpr({self: 1}, 0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._lift() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._lift() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._lift() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return as_linexpr(other) - self._lift()

    def __mul__(self, factor: int | Fraction) -> "LinExpr":
        return self._lift() * factor

    def __rmul__(self, factor: int | Fraction) -> "LinExpr":
        return self._lift() * factor

    def __neg__(self) -> "LinExpr":
        return self._lift() * -1


class LinExpr:
    """An affine expression ``Σ coeff·var + const`` over integer variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[IntVar, Fraction | int], const: Fraction | int):
        # Coefficients stay machine ints when given as ints: LinExpr has
        # no division, and _normalise_le handles mixed int/Fraction, so
        # exactness never needs an eager Fraction promotion here.
        self.coeffs: dict[IntVar, Fraction | int] = {
            v: c for v, c in coeffs.items() if c
        }
        self.const = const

    def __add__(self, other: "ExprLike") -> "LinExpr":
        other = as_linexpr(other)
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            updated = coeffs.get(var, 0) + coeff
            if updated:
                coeffs[var] = updated
            else:
                coeffs.pop(var, None)
        return LinExpr(coeffs, self.const + other.const)

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self + (as_linexpr(other) * -1)

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return as_linexpr(other) - self

    def __mul__(self, factor: int | Fraction) -> "LinExpr":
        return LinExpr(
            {v: c * factor for v, c in self.coeffs.items()}, self.const * factor
        )

    def __rmul__(self, factor: int | Fraction) -> "LinExpr":
        return self * factor

    def __neg__(self) -> "LinExpr":
        return self * -1

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" for v, c in sorted(self.coeffs.items(), key=lambda i: i[0].uid)]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


ExprLike = Union[IntVar, LinExpr, int, Fraction]


def as_linexpr(value: ExprLike) -> LinExpr:
    """Lift ints, Fractions and IntVars into :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, IntVar):
        return value._lift()
    if isinstance(value, (int, Fraction)):
        return LinExpr({}, value)
    raise TypeError(f"cannot interpret {value!r} as a linear expression")


# ---------------------------------------------------------------------------
# Linear atoms (normalised a.x <= b)
# ---------------------------------------------------------------------------


class LinearAtom:
    """The canonical arithmetic atom ``Σ aᵢ·xᵢ ≤ b``.

    Coefficients are coprime integers and the constant is integer-tightened,
    so equal constraints are representationally equal.
    """

    __slots__ = ("coeffs", "bound", "_key")

    def __init__(self, coeffs: tuple[tuple[IntVar, int], ...], bound: int):
        self.coeffs = coeffs
        self.bound = bound
        self._key = (tuple((v.uid, c) for v, c in coeffs), bound)

    def __hash__(self) -> int:
        return hash(self._key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinearAtom) and self._key == other._key

    def variables(self) -> Iterable[IntVar]:
        return (v for v, _ in self.coeffs)

    def negated_bounds(self) -> tuple[tuple[tuple[IntVar, int], ...], int]:
        """The atom's negation ``Σ −aᵢ·xᵢ ≤ −b − 1`` as raw data."""
        return tuple((v, -c) for v, c in self.coeffs), -self.bound - 1

    def evaluate(self, assignment: Mapping[IntVar, int]) -> bool:
        total = sum(c * assignment[v] for v, c in self.coeffs)
        return total <= self.bound

    def __repr__(self) -> str:
        lhs = " + ".join(f"{c}*{v}" for v, c in self.coeffs) or "0"
        return f"({lhs} <= {self.bound})"


def _normalise_le(expr: LinExpr) -> "Term":
    """Normalise ``expr ≤ 0`` into an :class:`Atom` or boolean constant."""
    if not expr.coeffs:
        return TRUE if expr.const <= 0 else FALSE
    denom_lcm = expr.const.denominator
    for coeff in expr.coeffs.values():
        denom_lcm = denom_lcm * coeff.denominator // gcd(denom_lcm, coeff.denominator)
    int_coeffs = {v: int(c * denom_lcm) for v, c in expr.coeffs.items()}
    const = int(expr.const * denom_lcm)
    divisor = 0
    for coeff in int_coeffs.values():
        divisor = gcd(divisor, abs(coeff))
    # Integer tightening: a.x <= -const with a = g*a' gives a'.x <= floor(-const/g).
    bound = floor(Fraction(-const, divisor))
    coeffs = tuple(
        sorted(
            ((v, c // divisor) for v, c in int_coeffs.items()),
            key=lambda item: item[0].uid,
        )
    )
    return _intern(Atom, (LinearAtom(coeffs, bound),))


# ---------------------------------------------------------------------------
# Boolean terms (hash-consed)
# ---------------------------------------------------------------------------

_intern_table: dict[tuple, "Term"] = {}


def _intern(cls: type, args: tuple) -> "Term":
    key = (cls, args)
    cached = _intern_table.get(key)
    if cached is None:
        cached = object.__new__(cls)
        cached._init(*args)  # type: ignore[attr-defined]
        _intern_table[key] = cached
    return cached


class Term:
    """Base class of boolean terms.  Instances are immutable and interned."""

    __slots__ = ("uid",)

    def _init(self) -> None:
        self.uid = next(_ids)

    # Sugar: `a & b`, `a | b`, `~a` build terms.
    def __and__(self, other: "Term") -> "Term":
        return conj(self, other)

    def __or__(self, other: "Term") -> "Term":
        return disj(self, other)

    def __invert__(self) -> "Term":
        return neg(self)

    def __rshift__(self, other: "Term") -> "Term":
        """``a >> b`` is implication."""
        return implies(self, other)


class BoolConst(Term):
    __slots__ = ("value",)

    def _init(self, value: bool) -> None:
        super()._init()
        self.value = value

    def __repr__(self) -> str:
        return "true" if self.value else "false"


class BoolVar(Term):
    __slots__ = ("name",)

    def _init(self, name: str) -> None:
        super()._init()
        self.name = name

    def __repr__(self) -> str:
        return self.name


class Not(Term):
    __slots__ = ("arg",)

    def _init(self, arg: Term) -> None:
        super()._init()
        self.arg = arg

    def __repr__(self) -> str:
        return f"!{self.arg!r}"


class And(Term):
    __slots__ = ("args",)

    def _init(self, args: tuple[Term, ...]) -> None:
        super()._init()
        self.args = args

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.args)) + ")"


class Or(Term):
    __slots__ = ("args",)

    def _init(self, args: tuple[Term, ...]) -> None:
        super()._init()
        self.args = args

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.args)) + ")"


class Atom(Term):
    __slots__ = ("constraint",)

    def _init(self, constraint: LinearAtom) -> None:
        super()._init()
        self.constraint = constraint

    def __repr__(self) -> str:
        return repr(self.constraint)


TRUE: Term = _intern(BoolConst, (True,))
FALSE: Term = _intern(BoolConst, (False,))

_fresh_names = itertools.count()


def boolvar(name: str | None = None) -> Term:
    """A boolean variable.  Distinct calls with the same name are the same var."""
    if name is None:
        name = f"_b{next(_fresh_names)}"
    return _intern(BoolVar, (name,))


def intvar(name: str | None = None) -> IntVar:
    """A fresh integer variable (ints are nominal, never interned by name)."""
    if name is None:
        name = f"_i{next(_fresh_names)}"
    return IntVar(name)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def neg(term: Term) -> Term:
    if term is TRUE:
        return FALSE
    if term is FALSE:
        return TRUE
    if isinstance(term, Not):
        return term.arg
    return _intern(Not, (term,))


def _flatten(cls: type, terms: Iterable[Term], absorbing: Term, neutral: Term) -> Term:
    # Fully flatten same-operator nesting (explicit stack, no recursion):
    # conj(conj(conj(a, b), c), d) and conj(a, b, c, d) are the *same*
    # interned node.  Without this, incrementally combined encodings of
    # large meshes degenerate into deeply nested binary trees that cost one
    # Tseitin gate (and three clauses) per internal node.
    seen: set[int] = set()
    flat: list[Term] = []
    stack: list[Term] = list(terms)
    stack.reverse()
    while stack:
        term = stack.pop()
        if term is absorbing:
            return absorbing
        if term is neutral:
            continue
        if isinstance(term, cls):
            children = term.args  # type: ignore[attr-defined]
            stack.extend(reversed(children))
            continue
        if term.uid in seen:
            continue
        # x & !x == false ; x | !x == true
        complement = neg(term)
        if complement.uid in seen:
            return absorbing
        seen.add(term.uid)
        flat.append(term)
    if not flat:
        return neutral
    if len(flat) == 1:
        return flat[0]
    return _intern(cls, (tuple(flat),))


def conj(*terms: Term) -> Term:
    """N-ary conjunction with flattening and constant folding."""
    return _flatten(And, terms, absorbing=FALSE, neutral=TRUE)


def disj(*terms: Term) -> Term:
    """N-ary disjunction with flattening and constant folding."""
    return _flatten(Or, terms, absorbing=TRUE, neutral=FALSE)


def implies(premise: Term, conclusion: Term) -> Term:
    return disj(neg(premise), conclusion)


def iff(left: Term, right: Term) -> Term:
    if left is right:
        return TRUE
    return conj(implies(left, right), implies(right, left))


def ite(cond: Term, then: Term, other: Term) -> Term:
    return conj(implies(cond, then), implies(neg(cond), other))


def exactly_one(*terms: Term) -> Term:
    """Exactly one of ``terms`` holds (pairwise encoding)."""
    at_least = disj(*terms)
    at_most = conj(
        *(
            disj(neg(a), neg(b))
            for i, a in enumerate(terms)
            for b in terms[i + 1 :]
        )
    )
    return conj(at_least, at_most)


# ---------------------------------------------------------------------------
# Comparison constructors
# ---------------------------------------------------------------------------


def le(left: ExprLike, right: ExprLike) -> Term:
    return _normalise_le(as_linexpr(left) - as_linexpr(right))


def ge(left: ExprLike, right: ExprLike) -> Term:
    return le(right, left)


def lt(left: ExprLike, right: ExprLike) -> Term:
    return le(as_linexpr(left) + 1, right)


def gt(left: ExprLike, right: ExprLike) -> Term:
    return lt(right, left)


def eq(left: ExprLike, right: ExprLike) -> Term:
    return conj(le(left, right), le(right, left))


def ne(left: ExprLike, right: ExprLike) -> Term:
    return neg(eq(left, right))
