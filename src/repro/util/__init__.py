"""Small shared helpers (timers, deterministic id counters)."""

from .timing import Stopwatch

__all__ = ["Stopwatch"]
