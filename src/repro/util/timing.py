"""Timing helpers used by the verification pipeline and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates named phase durations.

    >>> watch = Stopwatch()
    >>> with watch.phase("colors"):
    ...     pass
    >>> "colors" in watch.durations
    True
    """

    durations: dict[str, float] = field(default_factory=dict)

    def phase(self, name: str) -> "_Phase":
        return _Phase(self, name)

    def total(self) -> float:
        return sum(self.durations.values())

    def report(self) -> str:
        lines = [f"  {name:<24s} {seconds:8.3f} s" for name, seconds in self.durations.items()]
        lines.append(f"  {'total':<24s} {self.total():8.3f} s")
        return "\n".join(lines)


class _Phase:
    def __init__(self, watch: Stopwatch, name: str):
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._watch.durations[self._name] = (
            self._watch.durations.get(self._name, 0.0) + elapsed
        )
