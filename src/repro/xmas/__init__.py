"""xMAS modelling language plus the paper's xMAS automata.

* :class:`Network` / :class:`NetworkBuilder` — containers and wiring.
* :class:`Queue`, :class:`Function`, :class:`Source`, :class:`Sink`,
  :class:`Fork`, :class:`Join`, :class:`Switch`, :class:`Merge` — the eight
  xMAS primitives (switch/merge generalised to k ways).
* :class:`Automaton` / :class:`Transition` — I/O state machines with an
  xMAS channel interface (Definitions 1–2 of the paper).
"""

from .automaton import Automaton, Transition
from .builder import NetworkBuilder
from .channel import Channel, Direction, Port
from .dot import to_dot
from .network import Network
from .primitives import (
    Fork,
    Function,
    Join,
    Merge,
    Primitive,
    Queue,
    Sink,
    Source,
    Switch,
)

__all__ = [
    "Network",
    "NetworkBuilder",
    "Channel",
    "Port",
    "Direction",
    "Primitive",
    "Queue",
    "Function",
    "Source",
    "Sink",
    "Fork",
    "Join",
    "Switch",
    "Merge",
    "Automaton",
    "Transition",
    "to_dot",
]
