"""xMAS automata (Definitions 1 and 2 of the paper).

An :class:`Automaton` is an I/O state machine with an xMAS channel
interface: it reads packets from in-channels and writes packets to
out-channels.  A :class:`Transition` fires when

* the automaton is in the transition's ``origin`` state,
* the triggering in-port offers a packet satisfying ``guard`` (the paper's
  event ε), and
* if the transition produces a packet (the paper's transformation φ), the
  designated out-port is ready to accept it.

This declarative shape — one in-port and optional guard/producer per
transition — is equivalent to the paper's ε :: C_I × D → bool and
φ :: C_I × D → (C_O × D) + ⊥ (split a multi-port event into one transition
per port), and it is what makes the automaton *analysable*: color
derivation and invariant generation enumerate guards over the derived color
sets rather than inverting opaque functions.

Spontaneous behaviour ("the directory may decide at any time to send an
invalidate") is modelled the same way the paper's running example models
request injection: a local fair :class:`~repro.xmas.primitives.Source`
feeds a token to a dedicated in-port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from .channel import Direction, Port
from .primitives import Primitive

__all__ = ["Automaton", "Transition"]

Color = Hashable


@dataclass(frozen=True)
class Transition:
    """One edge of an xMAS automaton.

    Attributes
    ----------
    name:
        Identifier used in diagnostics and invariant output (the paper's
        ``#req!`` / ``#ack?`` counters are per-transition).
    origin, target:
        State names.
    in_port:
        The in-port whose packet triggers the transition.
    guard:
        The event ε restricted to ``in_port``; ``None`` accepts every color.
    out_port:
        Where φ emits, or ``None`` when the transition produces nothing.
    produce:
        Maps the consumed packet to the emitted packet; required when
        ``out_port`` is set.  (φ returning ⊥ is ``out_port=None``.)
    """

    name: str
    origin: str
    target: str
    in_port: str
    guard: Callable[[Color], bool] | None = None
    out_port: str | None = None
    produce: Callable[[Color], Color] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.out_port is None) != (self.produce is None):
            raise ValueError(
                f"transition {self.name}: out_port and produce must be set together"
            )

    def accepts(self, color: Color) -> bool:
        """Does the event ε hold for ``color`` on this transition's in-port?"""
        return self.guard is None or bool(self.guard(color))

    def output(self, color: Color) -> tuple[str, Color] | None:
        """φ(in_port, color): the (out_port, packet) emitted, if any."""
        if self.out_port is None:
            return None
        assert self.produce is not None
        return self.out_port, self.produce(color)


class Automaton(Primitive):
    """An xMAS automaton: (S, T, s₀, C_I, C_O) per Definition 1."""

    def __init__(
        self,
        name: str,
        states: Iterable[str],
        initial: str,
        in_ports: Iterable[str],
        out_ports: Iterable[str],
        transitions: Iterable[Transition],
    ):
        super().__init__(name)
        self.states = list(states)
        if len(set(self.states)) != len(self.states):
            raise ValueError(f"automaton {name}: duplicate states")
        if initial not in self.states:
            raise ValueError(f"automaton {name}: initial state {initial!r} unknown")
        self.initial = initial
        for port_name in in_ports:
            self._add_port(port_name, Direction.IN)
        for port_name in out_ports:
            self._add_port(port_name, Direction.OUT)
        self.transitions = list(transitions)
        self._check_transitions()

    def _check_transitions(self) -> None:
        seen_names: set[str] = set()
        for t in self.transitions:
            if t.name in seen_names:
                raise ValueError(f"automaton {self.name}: duplicate transition {t.name}")
            seen_names.add(t.name)
            if t.origin not in self.states or t.target not in self.states:
                raise ValueError(
                    f"automaton {self.name}: transition {t.name} uses unknown state"
                )
            in_port = self.ports.get(t.in_port)
            if in_port is None or in_port.direction is not Direction.IN:
                raise ValueError(
                    f"automaton {self.name}: transition {t.name} triggers on "
                    f"unknown in-port {t.in_port!r}"
                )
            if t.out_port is not None:
                out_port = self.ports.get(t.out_port)
                if out_port is None or out_port.direction is not Direction.OUT:
                    raise ValueError(
                        f"automaton {self.name}: transition {t.name} emits on "
                        f"unknown out-port {t.out_port!r}"
                    )

    # ------------------------------------------------------------------
    # Queries used by the analyses
    # ------------------------------------------------------------------
    def transitions_from(self, state: str) -> list[Transition]:
        return [t for t in self.transitions if t.origin == state]

    def transitions_into(self, state: str) -> list[Transition]:
        return [t for t in self.transitions if t.target == state]

    def transitions_on_port(self, in_port: str) -> list[Transition]:
        return [t for t in self.transitions if t.in_port == in_port]

    def port(self, name: str) -> Port:
        return self.ports[name]

    def state_var_name(self, state: str) -> str:
        """The canonical name of the 0/1 state variable ``A.s``."""
        return f"{self.name}.{state}"
