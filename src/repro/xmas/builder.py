"""Fluent construction of xMAS networks.

Example — the paper's running example fabric (two queues between two
automata) is assembled as::

    builder = NetworkBuilder("running-example")
    q_req = builder.queue("q0", size=2)
    q_ack = builder.queue("q1", size=2)
    ...
    builder.connect(sender.port("req"), q_req.i)
    network = builder.build()
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from .automaton import Automaton, Transition
from .channel import Channel, Port
from .network import Network
from .primitives import (
    Fork,
    Function,
    Join,
    Merge,
    Queue,
    Sink,
    Source,
    Switch,
)

__all__ = ["NetworkBuilder"]

Color = Hashable


class NetworkBuilder:
    """Creates primitives, registers them, and wires channels."""

    def __init__(self, name: str = "network"):
        self.network = Network(name)

    # ------------------------------------------------------------------
    # Primitive factories
    # ------------------------------------------------------------------
    def queue(self, name: str, size: int, rotating: bool = False) -> Queue:
        return self.network.add(Queue(name, size, rotating=rotating))  # type: ignore[return-value]

    def source(self, name: str, colors: Iterable[Color]) -> Source:
        return self.network.add(Source(name, colors))  # type: ignore[return-value]

    def sink(self, name: str, fair: bool = True) -> Sink:
        return self.network.add(Sink(name, fair=fair))  # type: ignore[return-value]

    def function(self, name: str, fn: Callable[[Color], Color]) -> Function:
        return self.network.add(Function(name, fn))  # type: ignore[return-value]

    def fork(
        self,
        name: str,
        fn_a: Callable[[Color], Color] | None = None,
        fn_b: Callable[[Color], Color] | None = None,
    ) -> Fork:
        return self.network.add(Fork(name, fn_a, fn_b))  # type: ignore[return-value]

    def join(
        self, name: str, combine: Callable[[Color, Color], Color] | None = None
    ) -> Join:
        return self.network.add(Join(name, combine))  # type: ignore[return-value]

    def switch(
        self, name: str, route: Callable[[Color], int], n_outputs: int = 2
    ) -> Switch:
        return self.network.add(Switch(name, route, n_outputs))  # type: ignore[return-value]

    def merge(self, name: str, n_inputs: int = 2) -> Merge:
        return self.network.add(Merge(name, n_inputs))  # type: ignore[return-value]

    def automaton(
        self,
        name: str,
        states: Iterable[str],
        initial: str,
        in_ports: Iterable[str],
        out_ports: Iterable[str],
        transitions: Iterable[Transition],
    ) -> Automaton:
        return self.network.add(  # type: ignore[return-value]
            Automaton(name, states, initial, in_ports, out_ports, transitions)
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, initiator: Port, target: Port, name: str | None = None) -> Channel:
        return self.network.connect(initiator, target, name)

    def pipeline(self, *ports: Port) -> list[Channel]:
        """Connect ``ports`` pairwise: (p0→p1), (p2→p3), …"""
        if len(ports) % 2:
            raise ValueError("pipeline() needs an even number of ports")
        return [
            self.connect(ports[i], ports[i + 1]) for i in range(0, len(ports), 2)
        ]

    def build(self, validate: bool = True) -> Network:
        if validate:
            self.network.validate()
        return self.network
