"""Channels and ports.

An xMAS channel carries three signals — ``irdy`` (initiator ready), ``trdy``
(target ready) and ``data`` — between an initiator output port and a target
input port.  At this structural level a channel is just the wiring record;
signal semantics live in the analyses (:mod:`repro.core`) and the executable
model (:mod:`repro.mc`).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .primitives import Primitive

__all__ = ["Direction", "Port", "Channel"]


class Direction(enum.Enum):
    IN = "in"
    OUT = "out"


class Port:
    """One directed connection point of a primitive."""

    __slots__ = ("owner", "name", "direction", "channel")

    def __init__(self, owner: "Primitive", name: str, direction: Direction):
        self.owner = owner
        self.name = name
        self.direction = direction
        self.channel: Channel | None = None

    @property
    def qualified_name(self) -> str:
        return f"{self.owner.name}.{self.name}"

    def is_connected(self) -> bool:
        return self.channel is not None

    def __repr__(self) -> str:
        return f"Port({self.qualified_name}, {self.direction.value})"


class Channel:
    """A point-to-point link from an output port to an input port."""

    __slots__ = ("name", "initiator", "target")

    def __init__(self, name: str, initiator: Port, target: Port):
        if initiator.direction is not Direction.OUT:
            raise ValueError(
                f"channel {name}: initiator {initiator.qualified_name} is not an output"
            )
        if target.direction is not Direction.IN:
            raise ValueError(
                f"channel {name}: target {target.qualified_name} is not an input"
            )
        for port in (initiator, target):
            if port.channel is not None:
                raise ValueError(
                    f"port {port.qualified_name} is already connected "
                    f"to channel {port.channel.name}"
                )
        self.name = name
        self.initiator = initiator
        self.target = target
        initiator.channel = self
        target.channel = self

    def __repr__(self) -> str:
        return (
            f"Channel({self.name}: {self.initiator.qualified_name} -> "
            f"{self.target.qualified_name})"
        )
