"""Graphviz (dot) export of xMAS networks for debugging and documentation."""

from __future__ import annotations

from .automaton import Automaton
from .network import Network
from .primitives import Fork, Function, Join, Merge, Queue, Sink, Source, Switch

__all__ = ["to_dot"]

_SHAPES = {
    Queue: ("box", "lightyellow"),
    Function: ("ellipse", "white"),
    Source: ("invtriangle", "lightgreen"),
    Sink: ("triangle", "lightpink"),
    Fork: ("diamond", "lightblue"),
    Join: ("diamond", "lightcyan"),
    Switch: ("trapezium", "lavender"),
    Merge: ("invtrapezium", "lavender"),
    Automaton: ("doubleoctagon", "orange"),
}


def _node_style(primitive: object) -> tuple[str, str]:
    for cls, style in _SHAPES.items():
        if isinstance(primitive, cls):
            return style
    return "box", "white"


def to_dot(network: Network) -> str:
    """Render the network structure as a Graphviz digraph source string."""
    lines = [f'digraph "{network.name}" {{', "  rankdir=LR;"]
    for primitive in network.primitives.values():
        shape, fill = _node_style(primitive)
        label = primitive.name
        if isinstance(primitive, Queue):
            label = f"{primitive.name}\\n[{primitive.size}]"
        elif isinstance(primitive, Automaton):
            label = f"{primitive.name}\\n{len(primitive.states)} states"
        lines.append(
            f'  "{primitive.name}" [shape={shape}, style=filled, '
            f'fillcolor={fill}, label="{label}"];'
        )
    for channel in network.channels:
        lines.append(
            f'  "{channel.initiator.owner.name}" -> "{channel.target.owner.name}"'
            f' [label="{channel.name}", fontsize=8];'
        )
    lines.append("}")
    return "\n".join(lines)
