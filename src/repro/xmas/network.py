"""The network container: primitives wired by channels."""

from __future__ import annotations

import itertools
from typing import Iterator

from .automaton import Automaton
from .channel import Channel, Port
from .primitives import Primitive, Queue, Sink, Source

__all__ = ["Network"]


class Network:
    """A closed xMAS network.

    Primitives are registered by (unique) name; channels connect an output
    port to an input port.  :meth:`validate` checks the structural rules
    that every analysis relies on.
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self.primitives: dict[str, Primitive] = {}
        self.channels: list[Channel] = []
        self._channel_names = itertools.count()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, primitive: Primitive) -> Primitive:
        if primitive.name in self.primitives:
            raise ValueError(f"duplicate primitive name {primitive.name!r}")
        self.primitives[primitive.name] = primitive
        return primitive

    def connect(self, initiator: Port, target: Port, name: str | None = None) -> Channel:
        for port in (initiator, target):
            if port.owner.name not in self.primitives:
                raise ValueError(
                    f"port {port.qualified_name} belongs to a primitive "
                    "not registered in this network"
                )
            if self.primitives[port.owner.name] is not port.owner:
                raise ValueError(
                    f"port {port.qualified_name} belongs to a foreign primitive "
                    "with a clashing name"
                )
        if name is None:
            name = f"ch{next(self._channel_names)}"
        channel = Channel(name, initiator, target)
        self.channels.append(channel)
        return channel

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Primitive:
        return self.primitives[name]

    def __contains__(self, name: str) -> bool:
        return name in self.primitives

    def queues(self) -> list[Queue]:
        return [p for p in self.primitives.values() if isinstance(p, Queue)]

    def sources(self) -> list[Source]:
        return [p for p in self.primitives.values() if isinstance(p, Source)]

    def sinks(self) -> list[Sink]:
        return [p for p in self.primitives.values() if isinstance(p, Sink)]

    def automata(self) -> list[Automaton]:
        return [p for p in self.primitives.values() if isinstance(p, Automaton)]

    def iter_ports(self) -> Iterator[Port]:
        for primitive in self.primitives.values():
            yield from primitive.ports.values()

    def channel_of(self, port: Port) -> Channel:
        if port.channel is None:
            raise ValueError(f"port {port.qualified_name} is unconnected")
        return port.channel

    def stats(self) -> dict[str, int]:
        """Model-size counters (the paper reports primitives/automata/queues)."""
        return {
            "primitives": len(self.primitives),
            "channels": len(self.channels),
            "queues": len(self.queues()),
            "automata": len(self.automata()),
            "sources": len(self.sources()),
            "sinks": len(self.sinks()),
        }

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` on any structural defect."""
        problems: list[str] = []
        seen_channels: set[str] = set()
        for channel in self.channels:
            if channel.name in seen_channels:
                problems.append(f"duplicate channel name {channel.name!r}")
            seen_channels.add(channel.name)
        for port in self.iter_ports():
            if port.channel is None:
                problems.append(f"unconnected port {port.qualified_name}")
            elif port.channel not in self.channels:
                problems.append(
                    f"port {port.qualified_name} wired to a foreign channel"
                )
        for automaton in self.automata():
            if not automaton.transitions:
                problems.append(f"automaton {automaton.name} has no transitions")
            unreachable = set(automaton.states) - self._reachable_states(automaton)
            if unreachable:
                problems.append(
                    f"automaton {automaton.name}: unreachable states "
                    f"{sorted(unreachable)}"
                )
        if problems:
            raise ValueError(
                f"network {self.name!r} failed validation:\n  " + "\n  ".join(problems)
            )

    @staticmethod
    def _reachable_states(automaton: Automaton) -> set[str]:
        reached = {automaton.initial}
        frontier = [automaton.initial]
        while frontier:
            state = frontier.pop()
            for t in automaton.transitions_from(state):
                if t.target not in reached:
                    reached.add(t.target)
                    frontier.append(t.target)
        return reached
