"""The eight xMAS primitives.

Following Intel's xMAS language (Chatterjee, Kishinevsky, Ogras; see also
Gotmanov et al., VMCAI'11), a communication fabric is a network of:

``Queue``      finite FIFO storage;
``Function``   stateless data transformation;
``Source``     non-deterministic, fair packet producer;
``Sink``       packet consumer (fair or dead);
``Fork``       duplicates one input to two outputs (synchronous);
``Join``       combines two inputs into one output (synchronous);
``Switch``     routes by a data predicate — generalised here to k outputs;
``Merge``      fair arbiter — generalised here to k inputs.

The k-way generalisation of switch/merge is behaviour-preserving (a k-way
switch is a cascade of binary switches, and likewise for merges) and keeps
mesh routers readable; primitive counts reported by benchmarks say which
convention they use.

Primitives are *structural* objects: ports plus parameters.  Their block /
idle / flow equations are produced by :mod:`repro.core`, their executable
behaviour by :mod:`repro.mc`.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from .channel import Direction, Port

__all__ = [
    "Primitive",
    "Queue",
    "Function",
    "Source",
    "Sink",
    "Fork",
    "Join",
    "Switch",
    "Merge",
]

Color = Hashable


class Primitive:
    """Base class: a named component with declared ports."""

    def __init__(self, name: str):
        self.name = name
        self.ports: dict[str, Port] = {}

    def _add_port(self, name: str, direction: Direction) -> Port:
        port = Port(self, name, direction)
        self.ports[name] = port
        return port

    def in_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is Direction.IN]

    def out_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction is Direction.OUT]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Queue(Primitive):
    """A FIFO buffer for ``size`` complete packets (store-and-forward).

    ``rotating=True`` marks a queue whose head may be moved back to the tail
    atomically when the consumer cannot currently accept it — the paper's
    "stalled and moved to the end of the queue" behaviour for queues feeding
    protocol automata.  The flag only affects the executable semantics
    (:mod:`repro.mc`) and, optionally, the precision of the block equation.
    """

    def __init__(self, name: str, size: int, rotating: bool = False):
        if size < 1:
            raise ValueError(f"queue {name}: size must be >= 1, got {size}")
        super().__init__(name)
        self.size = size
        self.rotating = rotating
        self.i = self._add_port("i", Direction.IN)
        self.o = self._add_port("o", Direction.OUT)


class Function(Primitive):
    """Applies ``fn`` to every passing packet."""

    def __init__(self, name: str, fn: Callable[[Color], Color]):
        super().__init__(name)
        self.fn = fn
        self.i = self._add_port("i", Direction.IN)
        self.o = self._add_port("o", Direction.OUT)


class Source(Primitive):
    """Non-deterministically and fairly emits packets drawn from ``colors``."""

    def __init__(self, name: str, colors: Iterable[Color]):
        super().__init__(name)
        self.colors = frozenset(colors)
        if not self.colors:
            raise ValueError(f"source {name}: needs at least one color")
        self.o = self._add_port("o", Direction.OUT)


class Sink(Primitive):
    """Consumes packets; ``fair=True`` means it always eventually accepts."""

    def __init__(self, name: str, fair: bool = True):
        super().__init__(name)
        self.fair = fair
        self.i = self._add_port("i", Direction.IN)


class Fork(Primitive):
    """Copies an input packet to both outputs in one synchronous transfer.

    Optional ``fn_a`` / ``fn_b`` transform the copies independently.
    """

    def __init__(
        self,
        name: str,
        fn_a: Callable[[Color], Color] | None = None,
        fn_b: Callable[[Color], Color] | None = None,
    ):
        super().__init__(name)
        self.fn_a = fn_a or (lambda d: d)
        self.fn_b = fn_b or (lambda d: d)
        self.i = self._add_port("i", Direction.IN)
        self.a = self._add_port("a", Direction.OUT)
        self.b = self._add_port("b", Direction.OUT)


class Join(Primitive):
    """Synchronises two inputs into one output packet.

    ``combine(da, db)`` produces the output packet; the default keeps the
    first input's data (the common xMAS idiom where input ``b`` is a token).
    """

    def __init__(
        self,
        name: str,
        combine: Callable[[Color, Color], Color] | None = None,
    ):
        super().__init__(name)
        self.combine = combine or (lambda da, db: da)
        self.a = self._add_port("a", Direction.IN)
        self.b = self._add_port("b", Direction.IN)
        self.o = self._add_port("o", Direction.OUT)


class Switch(Primitive):
    """Routes each packet to the output chosen by ``route(packet)``.

    ``route`` returns an output index in ``range(n_outputs)``; output ports
    are named ``o0``, ``o1``, …  Totality of ``route`` over the colors that
    can actually reach the switch is checked during color derivation.
    """

    def __init__(self, name: str, route: Callable[[Color], int], n_outputs: int = 2):
        if n_outputs < 2:
            raise ValueError(f"switch {name}: needs >= 2 outputs, got {n_outputs}")
        super().__init__(name)
        self.route = route
        self.n_outputs = n_outputs
        self.i = self._add_port("i", Direction.IN)
        self.outs = [self._add_port(f"o{k}", Direction.OUT) for k in range(n_outputs)]


class Merge(Primitive):
    """A fair k-way arbiter; input ports are named ``i0``, ``i1``, …"""

    def __init__(self, name: str, n_inputs: int = 2):
        if n_inputs < 2:
            raise ValueError(f"merge {name}: needs >= 2 inputs, got {n_inputs}")
        super().__init__(name)
        self.n_inputs = n_inputs
        self.ins = [self._add_port(f"i{k}", Direction.IN) for k in range(n_inputs)]
        self.o = self._add_port("o", Direction.OUT)
