"""Content-addressed caching primitives: hashes, atomic writes, tiers.

The service layer (PR 9) keys everything on two canonical identities —
``ScenarioSpec.key()`` for *what was asked* and
``SessionSnapshot.content_hash()`` for *what was encoded* — so the
hypothesis sections here pin the invariances those keys promise:

* ``ScenarioSpec.key()`` ignores kwarg ordering and the scheduling-only
  knobs (``query_jobs``, ``portfolio``, ``label``, rank budgets);
* ``content_hash()`` ignores scheduling hints (``max_splits``, clause
  reduction knobs) and survives pickle round-trips and rebuilds, while
  still separating genuinely different encodings.

The rest covers the storage substrate: crash-safe atomic writes (a
failed replace must leave the original intact and no temp droppings),
the cold :class:`~repro.core.cache.VerdictStore`, the warm
:class:`~repro.core.cache.SnapshotStore`, and the hot
:class:`~repro.core.cache.LruSessionCache` eviction contract.
"""

import hashlib
import json
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LruSessionCache,
    ScenarioSpec,
    SessionSpec,
    SnapshotStore,
    VerdictStore,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    sha_bytes,
    stable_hash,
    verdict_sha,
)
from repro.netlib import producer_consumer, running_example


def _network(queue_size=2):
    return running_example(queue_size=queue_size).network


# ---------------------------------------------------------------------------
# Hash helpers
# ---------------------------------------------------------------------------


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=8),
)


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.text(max_size=6), json_scalars, max_size=5))
def test_stable_hash_ignores_key_insertion_order(payload):
    reordered = dict(sorted(payload.items(), reverse=True))
    assert stable_hash(payload) == stable_hash(reordered)
    assert canonical_json(payload) == canonical_json(reordered)


def test_verdict_sha_matches_historic_bench_helper():
    # The committed BENCH_* baselines were produced by per-bench
    # ``hashlib.sha256(json.dumps(payload, separators=(",", ":")) ...``
    # helpers; the shared function must stay byte-compatible with them
    # (note: no sort_keys — list payloads carry their own order).
    payload = [["a", 1], ["b", 0], "unsat", "sat"]
    expected = hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode()
    ).hexdigest()[:16]
    assert verdict_sha(payload) == expected
    assert len(verdict_sha(payload)) == 16


def test_sha_bytes_is_full_sha256():
    data = b"verdict-bytes"
    assert sha_bytes(data) == hashlib.sha256(data).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------


def test_atomic_write_creates_parents_and_round_trips(tmp_path):
    target = tmp_path / "deep" / "nested" / "out.json"
    atomic_write_json(target, {"b": 2, "a": 1})
    assert json.loads(target.read_text()) == {"a": 1, "b": 2}
    atomic_write_text(target, "plain")
    assert target.read_text() == "plain"
    atomic_write_bytes(target, b"\x00raw")
    assert target.read_bytes() == b"\x00raw"


def test_atomic_write_failure_preserves_original(tmp_path, monkeypatch):
    target = tmp_path / "out.txt"
    target.write_text("original")

    def exploding_replace(src, dst):
        raise OSError("simulated replace failure")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        atomic_write_text(target, "clobber")
    monkeypatch.undo()
    # Original untouched, and the temp file was cleaned up.
    assert target.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


# ---------------------------------------------------------------------------
# ScenarioSpec.key(): canonical request identity
# ---------------------------------------------------------------------------


kwarg_dicts = st.dictionaries(
    st.sampled_from(["width", "height", "queue_size", "n_stations", "x"]),
    st.integers(min_value=1, max_value=9),
    min_size=1,
    max_size=4,
)


@settings(max_examples=30, deadline=None)
@given(kwargs=kwarg_dicts, data=st.data())
def test_scenario_spec_key_invariant_under_kwarg_order(kwargs, data):
    items = list(kwargs.items())
    shuffled = data.draw(st.permutations(items))
    a = ScenarioSpec(builder="abstract_mi_mesh", kwargs=kwargs)
    b = ScenarioSpec(builder="abstract_mi_mesh", kwargs=tuple(shuffled))
    assert a.key() == b.key()
    assert stable_hash(a.key()) == stable_hash(b.key())


@settings(max_examples=20, deadline=None)
@given(
    query_jobs=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    portfolio=st.booleans(),
    label=st.one_of(st.none(), st.text(max_size=10)),
)
def test_scenario_spec_key_ignores_scheduling_hints(query_jobs, portfolio, label):
    base = ScenarioSpec(builder="producer_consumer", kwargs={"queue_size": 2})
    hinted = ScenarioSpec(
        builder="producer_consumer",
        kwargs={"queue_size": 2},
        query_jobs=query_jobs,
        portfolio=portfolio,
        label=label,
    )
    assert base.key() == hinted.key()


def test_scenario_spec_key_separates_different_requests():
    a = ScenarioSpec(builder="producer_consumer", kwargs={"queue_size": 2})
    b = ScenarioSpec(builder="producer_consumer", kwargs={"queue_size": 3})
    c = ScenarioSpec(builder="token_ring", kwargs={"queue_size": 2})
    assert len({a.key(), b.key(), c.key()}) == 3


# ---------------------------------------------------------------------------
# SessionSnapshot.content_hash(): canonical encoding identity
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def reference_hash():
    spec = SessionSpec(_network(), parametric_queues=True)
    spec.generate_invariants()
    return spec.snapshot().content_hash()


@settings(max_examples=8, deadline=None)
@given(
    max_splits=st.sampled_from([1_000, 50_000, 100_000]),
    reduce_base=st.sampled_from([None, 200, 2000]),
)
def test_content_hash_ignores_scheduling_hints(
    reference_hash, max_splits, reduce_base
):
    # The hash names the *encoding* (CNF image, atoms, guards, defaults),
    # not the solver schedule: split budgets and clause-database knobs
    # must not move it, or the warm/cold tiers would miss on every
    # client-side tuning difference.
    spec = SessionSpec(_network(), parametric_queues=True)
    spec.generate_invariants()
    opts = None if reduce_base is None else {"reduce_base": reduce_base}
    snapshot = spec.snapshot(max_splits=max_splits, reduction_opts=opts)
    assert snapshot.content_hash() == reference_hash


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=3))
def test_content_hash_survives_pickle_round_trips(reference_hash, rounds):
    spec = SessionSpec(_network(), parametric_queues=True)
    spec.generate_invariants()
    snapshot = spec.snapshot()
    for _ in range(rounds):
        snapshot = pickle.loads(pickle.dumps(snapshot))
    assert snapshot.content_hash() == reference_hash


def test_content_hash_is_rebuild_stable_and_discriminating(reference_hash):
    # Two independent builds allocate different process-local uids; the
    # rank-renumbered payload must hash identically anyway.
    spec = SessionSpec(_network(), parametric_queues=True)
    spec.generate_invariants()
    assert spec.snapshot().content_hash() == reference_hash
    # ... while a genuinely different encoding must not collide.
    other = SessionSpec(producer_consumer(queue_size=2), parametric_queues=True)
    other.generate_invariants()
    assert other.snapshot().content_hash() != reference_hash
    # Invariants are part of the encoding (they strengthen the CNF).
    bare = SessionSpec(_network(), parametric_queues=True)
    assert bare.snapshot().content_hash() != reference_hash


# ---------------------------------------------------------------------------
# VerdictStore (cold tier)
# ---------------------------------------------------------------------------


def test_verdict_store_round_trip_and_counters(tmp_path):
    store = VerdictStore(tmp_path / "verdicts")
    qkey = canonical_json({"target": None, "sizes": [["q0", 2]]})
    assert store.get("ehash-a", qkey) is None
    payload = {"verdict": "deadlock-free", "unsat_core": ["cap[q0==2]"]}
    store.put("ehash-a", qkey, payload)
    assert store.get("ehash-a", qkey) == payload
    assert store.get("ehash-a", canonical_json({"other": 1})) is None
    assert store.hits == 1 and store.misses == 2
    assert len(store) == 1

    # Content-addressed on disk: a fresh instance over the same root
    # serves the verdict without recomputation.
    reopened = VerdictStore(tmp_path / "verdicts")
    assert reopened.get("ehash-a", qkey) == payload


def test_verdict_store_memory_only_mode():
    store = VerdictStore(None)
    qkey = canonical_json({"op": "verify"})
    store.put("ehash", qkey, {"verdict": "deadlock-candidate"})
    assert store.get("ehash", qkey) == {"verdict": "deadlock-candidate"}
    assert len(store) == 1


# ---------------------------------------------------------------------------
# SnapshotStore (warm tier)
# ---------------------------------------------------------------------------


def test_snapshot_store_round_trip(tmp_path):
    spec = SessionSpec(_network(), parametric_queues=True)
    spec.generate_invariants()
    snapshot = spec.snapshot()
    store = SnapshotStore(tmp_path / "snapshots")
    meta = {"builder": "running_example", "cases": []}
    ehash = store.store(snapshot, meta)
    assert ehash == snapshot.content_hash()
    assert store.has_snapshot(ehash)
    assert store.meta(ehash)["builder"] == "running_example"

    loaded = store.load(ehash)
    assert loaded.content_hash() == ehash

    # The spec-key index maps request identity -> encoding identity.
    spec_key = ScenarioSpec(
        builder="running_example", kwargs={"queue_size": 2}
    ).key()
    assert store.lookup(spec_key) is None
    store.bind(spec_key, ehash)
    assert store.lookup(spec_key) == ehash
    # Bindings persist across instances (index.json on disk).
    assert SnapshotStore(tmp_path / "snapshots").lookup(spec_key) == ehash


# ---------------------------------------------------------------------------
# LruSessionCache (hot tier)
# ---------------------------------------------------------------------------


class _FakeSession:
    def __init__(self):
        self.closed = 0

    def close(self):
        self.closed += 1


def test_lru_cache_evicts_least_recent_and_closes(tmp_path):
    cache = LruSessionCache(capacity=2)
    a, b, c = _FakeSession(), _FakeSession(), _FakeSession()
    cache.put("a", a)
    cache.put("b", b)
    assert cache.get("a") is a  # refresh: "b" is now least-recent
    cache.put("c", c)
    assert cache.evictions == 1
    assert b.closed == 1 and a.closed == 0 and c.closed == 0
    assert "b" not in cache and set(cache.keys()) == {"a", "c"}
    assert cache.get("b") is None

    cache.pop("a")
    assert a.closed == 1  # pop drops *and* closes
    cache.close_all()
    assert c.closed == 1 and len(cache) == 0
    cache.pop("missing")  # absent keys are a no-op


def test_lru_cache_put_replaces_and_closes_previous():
    cache = LruSessionCache(capacity=2)
    old, new = _FakeSession(), _FakeSession()
    cache.put("k", old)
    cache.put("k", old)  # re-putting the same entry must not close it
    assert old.closed == 0
    cache.put("k", new)
    assert old.closed == 1 and cache.get("k") is new and len(cache) == 1
