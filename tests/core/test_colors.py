"""Tests for color derivation (T-derivation)."""

import pytest

from repro.core import ColorDerivationError, derive_colors
from repro.netlib import producer_consumer, running_example
from repro.xmas import NetworkBuilder


def test_producer_consumer_colors():
    net = producer_consumer()
    colors = derive_colors(net)
    q = net["q"]
    assert colors.of(net.channel_of(q.i)) == frozenset({"pkt"})
    assert colors.of(net.channel_of(q.o)) == frozenset({"pkt"})
    # Two channels (src→q, q→snk), one color each.
    assert colors.total_pairs() == 2


def test_running_example_colors():
    example = running_example()
    net = example.network
    colors = derive_colors(net)
    assert colors.of(net.channel_of(example.q_req.i)) == frozenset({"req"})
    assert colors.of(net.channel_of(example.q_ack.i)) == frozenset({"ack"})
    token_channel = net.channel_of(example.sender.port("token"))
    assert colors.of(token_channel) == frozenset({"token"})


def test_function_transforms_colors():
    builder = NetworkBuilder()
    src = builder.source("src", colors={1, 2})
    double = builder.function("f", fn=lambda d: d * 10)
    snk = builder.sink("snk")
    builder.pipeline(src.o, double.i, double.o, snk.i)
    net = builder.build()
    colors = derive_colors(net)
    assert colors.of(net.channel_of(double.o)) == frozenset({10, 20})


def test_switch_partitions_colors():
    builder = NetworkBuilder()
    src = builder.source("src", colors={0, 1, 2, 3})
    sw = builder.switch("sw", route=lambda d: d % 2, n_outputs=2)
    a, b = builder.sink("a"), builder.sink("b")
    builder.connect(src.o, sw.i)
    builder.connect(sw.outs[0], a.i)
    builder.connect(sw.outs[1], b.i)
    net = builder.build()
    colors = derive_colors(net)
    assert colors.of(net.channel_of(sw.outs[0])) == frozenset({0, 2})
    assert colors.of(net.channel_of(sw.outs[1])) == frozenset({1, 3})


def test_merge_unions_colors():
    builder = NetworkBuilder()
    left = builder.source("left", colors={"a"})
    right = builder.source("right", colors={"b"})
    m = builder.merge("m", n_inputs=2)
    snk = builder.sink("snk")
    builder.connect(left.o, m.ins[0])
    builder.connect(right.o, m.ins[1])
    builder.connect(m.o, snk.i)
    net = builder.build()
    colors = derive_colors(net)
    assert colors.of(net.channel_of(m.o)) == frozenset({"a", "b"})


def test_fork_duplicates_with_transforms():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    f = builder.fork("f", fn_a=lambda d: (d, "left"), fn_b=lambda d: (d, "right"))
    a, b = builder.sink("a"), builder.sink("b")
    builder.connect(src.o, f.i)
    builder.connect(f.a, a.i)
    builder.connect(f.b, b.i)
    net = builder.build()
    colors = derive_colors(net)
    assert colors.of(net.channel_of(f.a)) == frozenset({("x", "left")})
    assert colors.of(net.channel_of(f.b)) == frozenset({("x", "right")})


def test_join_combines_colors():
    builder = NetworkBuilder()
    data = builder.source("data", colors={"d1", "d2"})
    token = builder.source("token", colors={"t"})
    j = builder.join("j", combine=lambda da, db: (da, db))
    snk = builder.sink("snk")
    builder.connect(data.o, j.a)
    builder.connect(token.o, j.b)
    builder.connect(j.o, snk.i)
    net = builder.build()
    colors = derive_colors(net)
    assert colors.of(net.channel_of(j.o)) == frozenset({("d1", "t"), ("d2", "t")})


def test_cyclic_network_reaches_fixpoint():
    from repro.netlib import token_ring

    net = token_ring(3)
    colors = derive_colors(net)
    for queue in net.queues():
        assert colors.of(net.channel_of(queue.i)) == frozenset({"tok"})


def test_switch_route_failure_reported():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"boom"})
    sw = builder.switch("sw", route=lambda d: d.index("x"), n_outputs=2)
    a, b = builder.sink("a"), builder.sink("b")
    builder.connect(src.o, sw.i)
    builder.connect(sw.outs[0], a.i)
    builder.connect(sw.outs[1], b.i)
    net = builder.build()
    with pytest.raises(ColorDerivationError, match="switch sw"):
        derive_colors(net)


def test_switch_route_out_of_range_reported():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"p"})
    sw = builder.switch("sw", route=lambda d: 7, n_outputs=2)
    a, b = builder.sink("a"), builder.sink("b")
    builder.connect(src.o, sw.i)
    builder.connect(sw.outs[0], a.i)
    builder.connect(sw.outs[1], b.i)
    net = builder.build()
    with pytest.raises(ColorDerivationError, match="range"):
        derive_colors(net)


def test_automaton_guard_filters_colors():
    example = running_example()
    net = example.network
    colors = derive_colors(net)
    # The receiver only ever emits acks, never reqs.
    ack_channel = net.channel_of(example.receiver.port("ack_out"))
    assert colors.of(ack_channel) == frozenset({"ack"})
