"""Unit tests for the block/idle equation compiler."""

from repro.core import VarPool, derive_colors, encode_deadlock, verify
from repro.core.deadlock import DeadlockEncoding
from repro.netlib import producer_consumer
from repro.smt import Result, Solver, ge
from repro.xmas import NetworkBuilder


def solve_encoding(network, extra=(), rotating_precision=True):
    colors = derive_colors(network)
    pool = VarPool()
    encoding = encode_deadlock(
        network, colors, pool, rotating_precision=rotating_precision
    )
    solver = Solver()
    for term in encoding.definitions + encoding.domain:
        solver.add(term)
    solver.add(encoding.assertion)
    for term in extra:
        solver.add(term)
    return solver.check(), solver, pool, encoding


def test_producer_consumer_has_no_deadlock():
    # fair sink: nothing can ever block
    verdict, *_ = solve_encoding(producer_consumer())
    assert verdict == Result.UNSAT


def test_dead_sink_creates_candidate():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    q = builder.queue("q", 2)
    snk = builder.sink("snk", fair=False)
    builder.pipeline(src.o, q.i, q.o, snk.i)
    verdict, solver, pool, _ = solve_encoding(builder.build())
    assert verdict == Result.SAT


def test_fair_merge_does_not_block():
    builder = NetworkBuilder()
    a = builder.source("a", colors={"x"})
    b = builder.source("b", colors={"y"})
    m = builder.merge("m", 2)
    q = builder.queue("q", 1)
    snk = builder.sink("snk")
    builder.connect(a.o, m.ins[0])
    builder.connect(b.o, m.ins[1])
    builder.connect(m.o, q.i)
    builder.connect(q.o, snk.i)
    verdict, *_ = solve_encoding(builder.build())
    assert verdict == Result.UNSAT


def test_fork_with_dead_branch_blocks():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    fork = builder.fork("f")
    qa = builder.queue("qa", 1)
    qb = builder.queue("qb", 1)
    good = builder.sink("good")
    dead = builder.sink("dead", fair=False)
    builder.connect(src.o, fork.i)
    builder.connect(fork.a, qa.i)
    builder.connect(fork.b, qb.i)
    builder.connect(qa.o, good.i)
    builder.connect(qb.o, dead.i)
    verdict, *_ = solve_encoding(builder.build())
    assert verdict == Result.SAT  # qb can fill and stall the fork


def test_join_starved_partner_blocks():
    builder = NetworkBuilder()
    data = builder.source("data", colors={"d"})
    q_in = builder.queue("qi", 1)
    join = builder.join("j")
    # partner side: a queue that is never fed -> token never arrives
    orphan_src = builder.source("orphan", colors={"t"})
    orphan_sink = builder.sink("osink")
    partner_q = builder.queue("pq", 1)
    feeder = builder.switch("sw", route=lambda d: 0, n_outputs=2)
    builder.connect(orphan_src.o, feeder.i)
    builder.connect(feeder.outs[0], orphan_sink.i)  # tokens all leave here
    builder.connect(feeder.outs[1], partner_q.i)  # never reached
    out_q = builder.queue("qo", 1)
    snk = builder.sink("snk")
    builder.connect(data.o, q_in.i)
    builder.connect(q_in.o, join.a)
    builder.connect(partner_q.o, join.b)
    builder.connect(join.o, out_q.i)
    builder.connect(out_q.o, snk.i)
    verdict, *_ = solve_encoding(builder.build())
    assert verdict == Result.SAT  # data packets starve at the join


def test_domain_constraints_bound_occupancies():
    net = producer_consumer(queue_size=3)
    colors = derive_colors(net)
    pool = VarPool()
    encoding = encode_deadlock(net, colors, pool)
    solver = Solver()
    for term in encoding.definitions + encoding.domain:
        solver.add(term)
    queue = net["q"]
    solver.add(ge(pool.occupancy(queue, "pkt"), 4))  # exceeds size 3
    assert solver.check() == Result.UNSAT


def test_assertion_cases_labelled():
    net = producer_consumer()
    colors = derive_colors(net)
    encoding = encode_deadlock(net, colors, VarPool())
    assert isinstance(encoding, DeadlockEncoding)
    labels = [label for label, _ in encoding.assertion_cases]
    assert any("source" in label for label in labels)
    assert any("queue" in label for label in labels)


def test_rotating_precision_is_a_refinement():
    """The stall-to-end block rule only ever removes candidates.

    For the default 2x2 protocol the invariants alone already exclude the
    configurations the refinement targets, so both precisions prove q=3;
    the refinement direction (loose free ⇒ strict free) must always hold.
    """
    from repro.protocols import abstract_mi_mesh

    network = abstract_mi_mesh(2, 2, queue_size=3).network
    strict = verify(network, rotating_precision=True)
    loose = verify(network, rotating_precision=False)
    assert strict.deadlock_free
    if loose.deadlock_free:
        assert strict.deadlock_free  # refinement direction
    # and at the deadlocking size both must report the candidate
    small = abstract_mi_mesh(2, 2, queue_size=2).network
    assert not verify(small, rotating_precision=True).deadlock_free
    assert not verify(small, rotating_precision=False).deadlock_free


def test_function_block_passes_through():
    builder = NetworkBuilder()
    src = builder.source("src", colors={1})
    fn = builder.function("f", fn=lambda d: d + 1)
    q = builder.queue("q", 1)
    snk = builder.sink("snk", fair=False)
    builder.pipeline(src.o, fn.i, fn.o, q.i, q.o, snk.i)
    verdict, *_ = solve_encoding(builder.build())
    assert verdict == Result.SAT
