"""VerificationSession: incremental verdicts must equal from-scratch ones.

The fresh baseline deliberately bypasses the session machinery: it builds a
new encoding and a new :class:`~repro.smt.Solver` per query, asserts
everything, and checks once — the seed implementation's behavior.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    VarPool,
    VerificationSession,
    derive_colors,
    encode_deadlock,
    generate_invariants,
    verify,
)
from repro.core.proof import enumerate_witnesses
from repro.netlib import running_example
from repro.smt import Result, Solver


def fresh_verdict(network, use_invariants=False, case_key=None):
    """Seed-style one-shot check; ``case_key=(kind, subject, color)``
    restricts the assertion to a single disjunct."""
    colors = derive_colors(network)
    pool = VarPool()
    encoding = encode_deadlock(network, colors, pool)
    solver = Solver()
    if use_invariants:
        for invariant in generate_invariants(network, colors, pool):
            solver.add(invariant.term())
    for term in encoding.definitions:
        solver.add(term)
    for term in encoding.domain:
        solver.add(term)
    if case_key is None:
        solver.add(encoding.assertion)
    else:
        solver.add(encoding.case_of(*case_key).term)
    return solver.check() == Result.UNSAT


def session_invariants_hold(session):
    """Every invariant evaluates true in the latest SAT model."""
    assignment = session.solver.model().int_items()
    return all(inv.evaluate(assignment) for inv in session.invariants)


# ---------------------------------------------------------------------------
# Directed equivalence checks
# ---------------------------------------------------------------------------


def test_session_matches_one_shot_verify():
    for size in (1, 2, 3):
        for parametric in (False, True):
            network = running_example(queue_size=size).network
            session = VerificationSession(network, parametric_queues=parametric)
            without = session.verify()
            assert without.deadlock_free == verify(
                network, use_invariants=False
            ).deadlock_free
            session.add_invariants()
            with_inv = session.verify()
            assert with_inv.deadlock_free == verify(
                network, use_invariants=True
            ).deadlock_free


def test_verify_channel_agrees_with_restricted_assertion():
    network = running_example().network
    session = VerificationSession(network)
    case_frees = []
    for case in session.encoding.cases:
        result = session.verify_case(case)
        expected = fresh_verdict(
            network, case_key=(case.kind, case.subject, case.color)
        )
        assert result.deadlock_free == expected, case.label
        case_frees.append(result.deadlock_free)
    # The full check fires iff some disjunct fires.
    assert session.verify().deadlock_free == all(case_frees)


def test_verify_channel_by_name():
    network = running_example().network
    session = VerificationSession(network)
    result = session.verify_channel("q0", "req")
    assert not result.deadlock_free
    assert result.witness is not None


def test_resize_queues_matches_rebuilt_network():
    session = VerificationSession(
        running_example(queue_size=1).network, parametric_queues=True
    )
    session.add_invariants()
    for size in (1, 2, 3, 4, 2, 1):  # revisits exercise guard reuse
        session.resize_queues(size)
        incremental = session.verify()
        fresh = verify(running_example(queue_size=size).network)
        assert incremental.deadlock_free == fresh.deadlock_free, f"size {size}"
        if not incremental.deadlock_free:
            assert session_invariants_hold(session)


def test_resize_queues_per_queue_mapping():
    session = VerificationSession(
        running_example(queue_size=2).network, parametric_queues=True
    )
    session.resize_queues({"q0": 3})
    assert session.queue_sizes == {"q0": 3, "q1": 2}
    assert not session.verify().deadlock_free  # block/idle only: candidates


def test_resize_requires_parametric():
    session = VerificationSession(
        running_example().network, parametric_queues=False
    )
    try:
        session.resize_queues(3)
    except RuntimeError:
        pass
    else:
        raise AssertionError("resize on a baked encoding must fail")


def test_enumeration_is_scoped_and_session_reusable():
    network = running_example().network
    session = VerificationSession(network)
    first = list(session.enumerate_witnesses(limit=16))
    wrapper = list(enumerate_witnesses(network, limit=16, use_invariants=False))
    assert len(first) == len(wrapper)
    assert len(first) >= 2  # the paper's two candidate shapes
    # Blocking clauses were popped: enumeration restarts from scratch ...
    second = list(session.enumerate_witnesses(limit=16))
    assert len(second) == len(first)
    # ... and the plain query still reports a candidate.
    assert not session.verify().deadlock_free
    session.add_invariants()
    assert session.verify().deadlock_free
    assert list(session.enumerate_witnesses(limit=4)) == []


def test_queries_mid_enumeration_stay_sound():
    # A suspended enumeration's blocking clauses must be invisible to
    # other session queries (they are guarded by the generator's own
    # assumption literal).
    session = VerificationSession(running_example().network)
    baseline = [
        session.verify_case(case).deadlock_free
        for case in session.encoding.cases
    ]
    gen = session.enumerate_witnesses(limit=10)
    next(gen)
    next(gen)  # at least one blocking clause is now in the solver
    mid = [
        session.verify_case(case).deadlock_free
        for case in session.encoding.cases
    ]
    assert mid == baseline
    assert not session.verify().deadlock_free
    gen.close()


def test_interleaved_enumerations_do_not_corrupt_scopes():
    session = VerificationSession(running_example().network)
    first = list(session.enumerate_witnesses(limit=8))
    gen_a = session.enumerate_witnesses(limit=8)
    gen_b = session.enumerate_witnesses(limit=8)
    next(gen_a)
    seen_b = [next(gen_b)]
    gen_a.close()  # must retire gen_a's scope, not gen_b's
    seen_b.extend(gen_b)
    assert len(seen_b) == len(first)  # gen_b's blocking clauses survived
    assert session.solver.scope_depth == 0
    assert not session.verify().deadlock_free  # base formula untouched


def test_sizing_preserves_non_uniform_builders():
    from repro.core import minimal_queue_size

    def build(size):
        example = running_example(queue_size=size)
        example.q_ack.size = 3  # pinned: builder is capacity-only but not uniform
        return example.network

    incremental = minimal_queue_size(build, max_size=8)
    scratch = minimal_queue_size(build, max_size=8, incremental=False)
    assert incremental.minimal_size == scratch.minimal_size
    assert incremental.probes == scratch.probes


def test_witnesses_respect_queue_domains():
    session = VerificationSession(
        running_example(queue_size=2).network, parametric_queues=True
    )
    for witness in session.enumerate_witnesses(limit=8):
        for queue in session.network.queues():
            held = sum(witness.queue_contents.get(queue.name, {}).values())
            assert 0 <= held <= session.queue_sizes[queue.name]


# ---------------------------------------------------------------------------
# Randomized differential test: any query order, any assumption order
# ---------------------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.just(("verify",)),
        st.just(("invariants",)),
        st.tuples(st.just("resize"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("case"), st.integers(min_value=0, max_value=100)),
        st.tuples(st.just("enumerate"), st.integers(min_value=1, max_value=4)),
    ),
    min_size=1,
    max_size=6,
)


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_session_equals_fresh_solver_across_op_orders(ops):
    session = VerificationSession(
        running_example(queue_size=2).network, parametric_queues=True
    )
    size = 2
    invariants_on = False

    for op in ops:
        if op[0] == "invariants":
            session.add_invariants()
            invariants_on = True
        elif op[0] == "resize":
            size = op[1]
            session.resize_queues(size)
        elif op[0] == "verify":
            network = running_example(queue_size=size).network
            expected = fresh_verdict(network, use_invariants=invariants_on)
            result = session.verify()
            assert result.deadlock_free == expected
            if not result.deadlock_free:
                assert result.witness is not None
                assert session_invariants_hold(session)
        elif op[0] == "case":
            case = session.encoding.cases[op[1] % len(session.encoding.cases)]
            network = running_example(queue_size=size).network
            expected = fresh_verdict(
                network,
                use_invariants=invariants_on,
                case_key=(case.kind, case.subject, case.color),
            )
            assert session.verify_case(case).deadlock_free == expected
        elif op[0] == "enumerate":
            witnesses = list(session.enumerate_witnesses(limit=op[1]))
            network = running_example(queue_size=size).network
            if fresh_verdict(network, use_invariants=invariants_on):
                assert witnesses == []
            else:
                assert witnesses
