"""The experiment orchestration layer must be observationally equal to the
sequential outer loop.

``Experiment.run(jobs=N)`` ships whole ``ScenarioSpec`` builds to workers,
so these tests are end-to-end checks of the chain: registry resolution →
network build → sizing search/sweep → compact result → grid-ordered,
resumable aggregation.  Thread-backend schedulers keep the hypothesis
differentials fast; the spawn-safety tests cross real process boundaries
under the strictest start method.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Experiment,
    ExperimentResult,
    ScenarioResult,
    ScenarioSpec,
    SessionSpec,
    minimal_queue_size,
    register_builder,
    registered_builders,
    resolve_builder,
    run_scenario,
    sweep_queue_sizes,
)
from repro.core.parallel import WorkerSession, _initialize_worker, _run_job
from repro.netlib import running_example


def _running_spec(**overrides) -> ScenarioSpec:
    base = dict(builder="running_example", mode="sweep", sizes=(1, 2))
    base.update(overrides)
    return ScenarioSpec(**base)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_stock_builders_are_registered():
    names = registered_builders()
    for expected in ("abstract_mi_mesh", "mi_mesh", "running_example"):
        assert expected in names


def test_resolve_unknown_builder_names_known_ones():
    with pytest.raises(KeyError, match="running_example"):
        resolve_builder("no-such-builder")


def test_reregistering_a_name_with_a_different_callable_fails():
    marker = lambda **kwargs: None  # noqa: E731
    register_builder("test-only-builder", marker)
    register_builder("test-only-builder", marker)  # same fn: idempotent
    with pytest.raises(ValueError):
        register_builder("test-only-builder", lambda **kwargs: None)


def test_register_builder_rejects_positional_only_signatures():
    """Specs carry kwargs only, so a builder that cannot be called with
    keywords is a latent grid failure — caught at registration."""

    def positional_only(width, /, queue_size=1):
        return None

    def var_positional(*args, queue_size=1):
        return None

    with pytest.raises(TypeError, match="positional-only"):
        register_builder("test-positional-only", positional_only)
    with pytest.raises(TypeError, match=r"\*args"):
        register_builder("test-var-positional", var_positional)


def test_builder_catalog_lists_families_and_params():
    from repro.core.experiments import builder_catalog

    catalog = builder_catalog()
    assert catalog["msi_mesh"]["family"] == "msi"
    assert catalog["abstract_mi_torus"]["family"] == "abstract_mi"
    assert catalog["mi_ring"]["family"] == "mi"
    assert catalog["traffic_torus"]["family"] == "fabric"
    assert catalog["running_example"]["family"] == "netlib"
    assert "queue_size" in catalog["msi_mesh"]["params"]
    # Every protocol family spans all three topologies.
    for family in ("abstract_mi", "mi", "msi"):
        members = [n for n, meta in catalog.items() if meta["family"] == family]
        assert len(members) == 3, (family, members)


def test_register_builder_default_family_is_misc():
    from repro.core.experiments import builder_catalog

    register_builder("test-family-default", lambda **kwargs: None)
    assert builder_catalog()["test-family-default"]["family"] == "misc"


def test_session_spec_from_builder_matches_direct_build():
    spec = SessionSpec.from_builder(
        "running_example", {"queue_size": 2}, parametric_queues=True
    )
    direct = SessionSpec(
        running_example(queue_size=2).network, parametric_queues=True
    )
    assert spec.initial_sizes == direct.initial_sizes
    assert len(spec.encoding.cases) == len(direct.encoding.cases)


# ---------------------------------------------------------------------------
# ScenarioSpec: canonicalisation, validation, pickling
# ---------------------------------------------------------------------------


def test_scenario_spec_canonicalises_kwargs():
    a = ScenarioSpec(
        "abstract_mi_mesh",
        {"width": 2, "height": 2, "directory_node": [0, 1]},
    )
    b = ScenarioSpec(
        "abstract_mi_mesh",
        (("height", 2), ("directory_node", (0, 1)), ("width", 2)),
    )
    assert a == b
    assert a.key() == b.key()
    assert hash(a) == hash(b)


def test_scenario_spec_key_excludes_scheduling_hints():
    plain = _running_spec()
    hinted = _running_spec(query_jobs=4, label="pretty name")
    assert plain.key() == hinted.key()


def test_scenario_spec_key_excludes_selection_schedule():
    # rank_budget/rank_growth are verdict-invariant (escalation terminates
    # at the full set), so resumes across schedules must match keys ...
    plain = _running_spec(invariants="partial")
    tuned = _running_spec(invariants="partial", rank_budget=32, rank_growth=3)
    assert plain.key() == tuned.key()
    # ... while the invariant *mode* stays part of the identity.
    assert plain.key() != _running_spec(invariants="eager").key()
    with pytest.raises(ValueError):
        _running_spec(invariants="partial", rank_budget=0)
    with pytest.raises(ValueError):
        _running_spec(invariants="partial", rank_growth=0)


def test_scenario_spec_validation():
    with pytest.raises(ValueError):
        ScenarioSpec("running_example", mode="nope")
    with pytest.raises(ValueError):
        ScenarioSpec("running_example", mode="sweep", sizes=())
    with pytest.raises(ValueError):
        ScenarioSpec("running_example", invariants="sometimes")
    with pytest.raises(TypeError):
        ScenarioSpec("running_example", {"fn": print})
    # Mapping values cannot round-trip back to the builder unambiguously.
    with pytest.raises(TypeError, match="mapping"):
        ScenarioSpec("running_example", {"assignment": {"req": 0}})


def test_run_rejects_unresolvable_builders_before_spawning_workers():
    grid = Experiment("bad", [ScenarioSpec("definitely-not-registered")])
    with pytest.raises(KeyError, match="definitely-not-registered"):
        grid.run(jobs=2, backend="thread")


def test_late_registered_builder_reaches_cached_process_pool():
    # A fork-started scenario pool created *before* a registration must
    # be retired (registry-generation epoch), or its workers would
    # resolve from a stale registry snapshot.
    from multiprocessing import get_all_start_methods

    if "fork" not in get_all_start_methods():
        pytest.skip("inherit-the-registry semantics need the fork method")
    # Materialise a pool on the stock registry first ...
    Experiment(
        "warmup", [_running_spec(), _running_spec(sizes=(2,))]
    ).run(jobs=2, backend="process")
    # ... then grow the registry and reuse the same (backend, jobs) slot.
    register_builder(
        "late-registered-example",
        lambda queue_size: running_example(queue_size=queue_size).network,
    )
    grid = Experiment(
        "late",
        [
            ScenarioSpec("late-registered-example", mode="sweep", sizes=(1, 2)),
            ScenarioSpec("late-registered-example", mode="sweep", sizes=(2, 3)),
        ],
    )
    pooled = grid.run(jobs=2, backend="process")
    inline = grid.run(jobs=1)
    assert pooled.verdict_bytes() == inline.verdict_bytes()


def test_scenario_spec_pickle_round_trip():
    spec = ScenarioSpec(
        "abstract_mi_mesh",
        {"width": 2, "height": 2, "directory_node": (1, 1)},
        mode="sweep",
        sizes=(1, 2, 3),
        invariants="lazy",
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.key() == spec.key()


def test_scenario_spec_builds_and_unwraps_instances():
    network = _running_spec().build(2)
    assert {q.name for q in network.queues()} == {"q0", "q1"}
    assert all(q.size == 2 for q in network.queues())


# ---------------------------------------------------------------------------
# Spawn-method safety: specs and session snapshots must survive the
# strictest start method (no inherited module state, pure pickling).
# ---------------------------------------------------------------------------


def test_scenario_spec_round_trips_under_spawn():
    spec = _running_spec()
    with ProcessPoolExecutor(
        max_workers=1, mp_context=get_context("spawn")
    ) as executor:
        remote = executor.submit(run_scenario, spec).result(timeout=180)
    local = run_scenario(spec)
    assert remote.probes == local.probes
    assert remote.minimal_size == local.minimal_size
    assert remote.key == local.key


def test_session_snapshot_round_trips_under_spawn():
    spec = SessionSpec(
        running_example(queue_size=2).network, parametric_queues=True
    )
    snapshot = spec.snapshot()
    assert pickle.loads(pickle.dumps(snapshot)).any_guard_name == (
        snapshot.any_guard_name
    )
    sizes = tuple(sorted(spec.initial_sizes.items()))
    job = ("check", None, sizes, False)
    with ProcessPoolExecutor(
        max_workers=1,
        mp_context=get_context("spawn"),
        initializer=_initialize_worker,
        initargs=(snapshot,),
    ) as executor:
        remote = executor.submit(_run_job, job).result(timeout=180)
    local = WorkerSession(snapshot).run(job)
    assert remote[0] == local[0]
    if remote[0] == "unsat":
        assert set(remote[1]) == set(local[1])


# ---------------------------------------------------------------------------
# Scheduler: jobs=1 ≡ jobs=N, deterministic ordering, resume
# ---------------------------------------------------------------------------


def _small_grid() -> Experiment:
    return Experiment(
        "grid",
        [
            _running_spec(sizes=(1, 2)),
            _running_spec(sizes=(1, 2, 3)),
            _running_spec(mode="search", sizes=()),
        ],
    )


def test_grid_expansion_is_deterministic_and_rejects_duplicates():
    grid = Experiment.grid(
        "g",
        "abstract_mi_mesh",
        axes={"vcs": [1, 2], "directory_node": [(0, 0), (1, 1)]},
        base={"width": 2, "height": 2},
    )
    labels = [spec.key() for spec in grid.scenarios]
    assert len(labels) == 4
    # itertools.product order: the first axis varies slowest.
    assert [dict(s.kwargs)["vcs"] for s in grid.scenarios] == [1, 1, 2, 2]
    again = Experiment.grid(
        "g",
        "abstract_mi_mesh",
        axes={"vcs": [1, 2], "directory_node": [(0, 0), (1, 1)]},
        base={"width": 2, "height": 2},
    )
    assert [s.key() for s in again.scenarios] == labels
    with pytest.raises(ValueError):
        Experiment("dup", [_running_spec(), _running_spec()])


def test_run_jobs1_matches_jobs2_thread_backend():
    grid = _small_grid()
    sequential = grid.run(jobs=1)
    threaded = grid.run(jobs=2, backend="thread")
    assert sequential.verdict_bytes() == threaded.verdict_bytes()
    assert [s.key for s in threaded.scenarios] == [
        spec.key() for spec in grid.scenarios
    ]


def test_run_process_backend_matches_inline():
    grid = Experiment("p", [_running_spec(), _running_spec(sizes=(2, 3))])
    inline = grid.run(jobs=1)
    pooled = grid.run(jobs=2, backend="process")
    assert inline.verdict_bytes() == pooled.verdict_bytes()


def test_resume_skips_completed_scenarios(tmp_path):
    grid = _small_grid()
    checkpoint = tmp_path / "partial.json"
    # First run only a sub-grid and checkpoint it.
    partial = Experiment("grid", grid.scenarios[:2]).run(
        jobs=1, save_path=checkpoint
    )
    assert partial.computed == 2
    resumed = grid.run(jobs=1, resume=checkpoint)
    assert resumed.computed == 1  # only the missing scenario was built
    assert resumed.reused == 2
    full = grid.run(jobs=1)
    assert resumed.verdict_bytes() == full.verdict_bytes()
    # A fully answered checkpoint re-builds nothing.
    resumed.save(checkpoint)
    cold = grid.run(jobs=2, backend="thread", resume=checkpoint)
    assert cold.computed == 0
    assert cold.reused == 3
    assert cold.verdict_bytes() == full.verdict_bytes()


def test_resume_warns_on_selection_policy_mismatch(tmp_path):
    # A completed key recorded under one selection schedule, resumed with
    # another: the result is reused (verdicts are schedule-invariant) but
    # the splice must be loud, not silent.
    checkpoint = tmp_path / "partial.json"
    grid = Experiment(
        "policy", [_running_spec(invariants="partial", rank_budget=8)]
    )
    grid.run(jobs=1, save_path=checkpoint)
    retuned = Experiment(
        "policy", [_running_spec(invariants="partial", rank_budget=32)]
    )
    with pytest.warns(UserWarning, match="selection policy"):
        resumed = retuned.run(jobs=1, resume=checkpoint)
    assert resumed.computed == 0
    assert resumed.reused == 1
    # Same schedule: silent reuse.
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        again = grid.run(jobs=1, resume=checkpoint)
    assert again.computed == 0


def test_partial_scenario_records_selection_policy_and_counters():
    grid = Experiment(
        "partial-record",
        [_running_spec(invariants="partial", rank_budget=4, rank_growth=2)],
    )
    scenario = grid.run(jobs=1).scenarios[0]
    assert scenario.invariants_mode == "partial"
    assert scenario.rank_budget == 4
    assert scenario.rank_growth == 2
    assert scenario.invariants_used
    assert scenario.invariants_generated >= 1
    assert sum(scenario.rank_histogram.values()) == scenario.invariants_generated
    eager = Experiment(
        "eager-record", [_running_spec(invariants="eager")]
    ).run(jobs=1).scenarios[0]
    assert scenario.probes == eager.probes
    assert scenario.invariants_generated < eager.invariants_generated
    assert eager.rank_budget is None  # policy recorded only in partial mode


def test_resume_from_missing_checkpoint_starts_fresh(tmp_path):
    # The documented `--save X --resume X` idiom: a first run that died
    # before its first checkpoint leaves no file, which must mean "empty
    # resume set", not a crash.
    checkpoint = tmp_path / "never-written.json"
    grid = Experiment("fresh", [_running_spec()])
    result = grid.run(jobs=1, resume=checkpoint, save_path=checkpoint)
    assert result.computed == 1
    assert result.reused == 0
    assert checkpoint.exists()


def test_save_path_checkpoints_every_completion(tmp_path):
    checkpoint = tmp_path / "run.json"
    seen = []

    def watch(result: ScenarioResult) -> None:
        seen.append(result.key)
        loaded = ExperimentResult.load(checkpoint)
        assert result.key in {s.key for s in loaded.scenarios}

    grid = Experiment("ckpt", [_running_spec(), _running_spec(sizes=(2,))])
    result = grid.run(jobs=1, save_path=checkpoint, progress=watch)
    assert len(seen) == 2
    assert ExperimentResult.load(checkpoint).verdict_bytes() == (
        result.verdict_bytes()
    )


def test_experiment_result_json_round_trip():
    result = _small_grid().run(jobs=1)
    clone = ExperimentResult.from_json(result.to_json())
    assert clone.verdict_bytes() == result.verdict_bytes()
    assert [s.probes for s in clone.scenarios] == [
        s.probes for s in result.scenarios
    ]
    assert isinstance(clone.scenarios[0].probes, dict)
    assert all(
        isinstance(size, int) for size in clone.scenarios[0].probes
    )


def test_env_caps_default_scenario_jobs(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "1")
    grid = Experiment("env", [_running_spec(), _running_spec(sizes=(2,))])
    result = grid.run(backend="thread")  # jobs=None → env budget of 1
    assert result.computed == 2


def test_query_jobs_auto_splits_the_budget(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "4")
    grid = Experiment("auto", [_running_spec(), _running_spec(sizes=(2,))])
    explicit = grid.run(jobs=2, query_jobs=1, backend="thread")
    auto = grid.run(jobs=2, query_jobs="auto", backend="thread")
    # nested_jobs(2) of a budget of 4 → 2 inner workers; verdicts must
    # not depend on the inner split.
    assert auto.verdict_bytes() == explicit.verdict_bytes()
    with pytest.raises(ValueError):
        grid.run(jobs=1, query_jobs=0)


# ---------------------------------------------------------------------------
# Timing split and the lazy-invariants ablation
# ---------------------------------------------------------------------------


def test_sizing_reports_build_query_split():
    sizing = minimal_queue_size(
        lambda size: running_example(queue_size=size).network
    )
    assert sizing.build_seconds > 0
    assert sizing.query_seconds > 0
    assert sizing.invariants_mode == "eager"
    assert sizing.invariants_used


def test_lazy_sweep_matches_eager_sequential_and_sharded():
    def build(size):
        return running_example(queue_size=size).network

    eager = sweep_queue_sizes(build, range(1, 4), jobs=1)
    for jobs in (1, 2):
        lazy = sweep_queue_sizes(
            build, range(1, 4), jobs=jobs, backend="thread", invariants="lazy"
        )
        assert lazy.probes == eager.probes, jobs
        assert lazy.minimal_size == eager.minimal_size
        assert lazy.invariants_mode == "lazy"


def test_lazy_never_generates_invariants_when_block_idle_suffices():
    # producer_consumer verifies under plain block/idle at every size, so
    # the lazy walk must never pay for invariant generation.
    sizing = minimal_queue_size(
        lambda size: resolve_builder("producer_consumer")(queue_size=size),
        invariants="lazy",
    )
    assert sizing.minimal_size == 1
    assert not sizing.invariants_used
    assert sizing.lazy_escalations == 0


def test_lazy_mode_recorded_per_scenario():
    grid = Experiment(
        "ablation",
        [
            _running_spec(invariants="lazy"),
            _running_spec(invariants="eager", sizes=(1, 2)),
        ],
    )
    by_mode = {
        scenario.invariants_mode: scenario
        for scenario in grid.run(jobs=1).scenarios
    }
    assert by_mode["lazy"].lazy_escalations >= 1
    assert by_mode["lazy"].invariants_used
    assert by_mode["eager"].lazy_escalations == 0
    assert by_mode["lazy"].probes == by_mode["eager"].probes


def test_none_mode_reports_plain_block_idle():
    sizing = sweep_queue_sizes(
        lambda size: running_example(queue_size=size).network,
        range(1, 3),
        invariants="none",
    )
    assert sizing.minimal_size is None  # block/idle alone: candidates
    assert not sizing.invariants_used


# ---------------------------------------------------------------------------
# Portfolio scheduling: win records, resumable defaults, leader learning
# ---------------------------------------------------------------------------


def test_scenario_spec_key_excludes_portfolio_flag():
    # Racing is verdict-invariant, so a portfolio run must resume from
    # (and be resumable by) a sequential run of the same grid point.
    assert _running_spec().key() == _running_spec(portfolio=True).key()


def test_portfolio_scenario_records_wins_and_round_trips():
    plain = run_scenario(_running_spec())
    raced = run_scenario(_running_spec(portfolio=True), query_jobs=2)
    assert raced.probes == plain.probes
    assert raced.portfolio_races == len(raced.probes)
    assert sum(raced.strategy_wins.values()) == raced.portfolio_races
    clone = ScenarioResult.from_json(raced.to_json())
    assert clone == raced
    assert clone.strategy_wins == raced.strategy_wins
    assert clone.portfolio_races == raced.portfolio_races


def test_pre_portfolio_checkpoints_load_with_default_win_fields():
    # Checkpoints written before the portfolio fields existed carry
    # neither key; loading them must not crash and must report no wins.
    payload = run_scenario(_running_spec()).to_json()
    del payload["strategy_wins"]
    del payload["portfolio_races"]
    legacy = ScenarioResult.from_json(payload)
    assert legacy.strategy_wins == {}
    assert legacy.portfolio_races == 0
    wrapped = ExperimentResult(name="old", scenarios=[legacy])
    clone = ExperimentResult.from_json(wrapped.to_json())
    assert clone.strategy_wins() == {}
    assert clone.portfolio_races == 0


def test_run_portfolio_matches_sequential_and_aggregates_wins():
    grid = Experiment("race", [_running_spec(), _running_spec(sizes=(2, 3))])
    sequential = grid.run(jobs=1)
    raced = grid.run(jobs=1, portfolio=True, query_jobs=2)
    assert raced.verdict_bytes() == sequential.verdict_bytes()
    assert raced.portfolio_races == sum(
        len(s.probes) for s in raced.scenarios
    )
    assert sum(raced.strategy_wins().values()) == raced.portfolio_races
    # The run-level override beats the specs' own (unset) flag; spec-level
    # opt-in works without the override.
    spec_raced = Experiment(
        "spec-race", [_running_spec(portfolio=True)]
    ).run(jobs=1, query_jobs=2)
    assert spec_raced.portfolio_races > 0


def test_resume_seeds_the_learned_leader(tmp_path):
    # A resumed portfolio run leads each scenario family with the
    # strategy its checkpointed wins favour — and reuses the rest.
    checkpoint = tmp_path / "race.json"
    grid = Experiment("lead", [_running_spec(), _running_spec(sizes=(2, 3))])
    first = Experiment("lead", grid.scenarios[:1]).run(
        jobs=1, portfolio=True, query_jobs=2, save_path=checkpoint
    )
    leader = max(
        sorted(first.strategy_wins()),
        key=lambda name: first.strategy_wins()[name],
    )
    seen = []
    resumed = grid.run(
        jobs=1,
        portfolio=True,
        query_jobs=2,
        resume=checkpoint,
        progress=seen.append,
    )
    assert resumed.reused == 1 and resumed.computed == 1
    # The newly computed scenario raced the learned leader first: with an
    # inline backend the leader takes the first slice, so a one-sided
    # family keeps crediting the same strategy.
    assert seen[0].strategy_wins.get(leader, 0) > 0
    assert resumed.verdict_bytes() == grid.run(jobs=1).verdict_bytes()


# ---------------------------------------------------------------------------
# Randomized differential: jobs=1 ≡ jobs=4 verdict-for-verdict
# ---------------------------------------------------------------------------

grids = st.lists(
    st.frozensets(st.integers(min_value=1, max_value=3), min_size=1, max_size=3),
    min_size=1,
    max_size=3,
    unique=True,
)


@given(
    size_sets=grids,
    invariants=st.sampled_from(["eager", "lazy", "partial", "none"]),
)
@settings(max_examples=10, deadline=None)
def test_sharded_grid_equals_sequential_grid(size_sets, invariants):
    grid = Experiment(
        "diff",
        [
            ScenarioSpec(
                "running_example",
                mode="sweep",
                sizes=tuple(sorted(sizes)),
                invariants=invariants,
            )
            for sizes in size_sets
        ],
    )
    sequential = grid.run(jobs=1)
    sharded = grid.run(jobs=4, backend="thread")
    assert sequential.verdict_bytes() == sharded.verdict_bytes()
    assert sequential.computed == len(size_sets)
    assert sharded.computed == len(size_sets)
