"""Ranked partial invariant sets: selection engine + CEGAR escalation.

The contract under test is *verdict byte-identity*: ``invariants=
"partial"`` must answer every probe exactly as eager mode does — a
deadlock-free verdict under a subset stays deadlock-free under the full
set, and a candidate is only reported once its model satisfies every
remaining row (or the full set is in force).  On top of that, the
selection ablation counters (``invariants_generated``, escalation count,
rank histogram) must aggregate correctly across shards and survive the
worker-side escalation path.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_RANK_BUDGET,
    InvariantSelector,
    Invariant,
    ParallelVerificationSession,
    SessionSpec,
    SizingResult,
    VerificationSession,
    encode_invariant_rows,
    invariant_features,
    rank_invariants,
    sweep_queue_sizes,
)
from repro.netlib import running_example
from repro.smt import intvar


def _build(size):
    return running_example(queue_size=size).network


# ---------------------------------------------------------------------------
# Static ranking
# ---------------------------------------------------------------------------


def _invariant(names_coeffs, constant=0):
    return Invariant(
        {intvar(name): coeff for name, coeff in names_coeffs}, constant
    )


def test_invariant_features_split_channels_and_automata():
    inv = _invariant([("#q0.req", 1), ("#q1.ack", 1), ("S.s0", 1), ("S.s1", -1)])
    channels, automata, total = invariant_features(inv)
    assert (channels, automata, total) == (2, 1, 4)


def test_rank_invariants_prefers_local_rows_and_is_deterministic():
    wide = _invariant([("#a.x", 1), ("#b.x", 1), ("#c.x", 1), ("T.t0", 1)])
    narrow = _invariant([("#a.x", 1), ("S.s0", -1)])
    states_only = _invariant([("S.s0", 1), ("S.s1", 1)], -1)
    ranked = rank_invariants([wide, narrow, states_only])
    assert ranked[0] == states_only  # zero channel columns
    assert ranked[1] == narrow
    assert ranked[2] == wide
    assert rank_invariants([narrow, states_only, wide]) == ranked


def test_ranked_generation_does_not_mark_the_spec_strengthened():
    spec = SessionSpec(_build(2))
    ranked = spec.ranked_invariants()
    assert len(ranked) >= 1
    assert spec.invariants is None  # partial-mode sessions stay unstrengthened
    # ... and the full-set cache is shared, not recomputed:
    assert set(spec.generate_invariants()) == set(ranked)


# ---------------------------------------------------------------------------
# The selector: violated-only batches, overlap order, budget growth
# ---------------------------------------------------------------------------


def _rows_for_selector():
    # Three rows over uids 1..3: row0 wants v1 == 1, row1 wants v2 == 0,
    # row2 wants v1 + v3 == 1.
    a = _invariant([("sel.a", 1)], -1)
    b = _invariant([("#sel.b", 1)])
    c = _invariant([("sel.a", 1), ("#sel.c", 1)], -1)
    rows = encode_invariant_rows([a, b, c])
    uids = [entry[0][0][0] for entry in rows]
    return rows, uids


def test_selector_hands_out_only_violated_rows():
    rows, _ = _rows_for_selector()
    selector = InvariantSelector(rows, rank_budget=8)
    # Model: a = 1 (row0 satisfied), b = 2 (row1 violated), c = 0 (row2 ok).
    values = {rows[0][0][0][0]: 1, rows[1][0][0][0]: 2, rows[2][0][0][0]: 1,
              rows[2][0][1][0]: 0}
    batch = selector.next_batch(lambda uid: values.get(uid, 0))
    assert batch == [1]
    assert selector.generated == 1
    assert selector.escalations == 1
    assert not selector.exhausted


def test_selector_reports_candidate_final_when_nothing_is_violated():
    rows, _ = _rows_for_selector()
    selector = InvariantSelector(rows)
    values = {rows[0][0][0][0]: 1, rows[1][0][0][0]: 0, rows[2][0][0][0]: 1,
              rows[2][0][1][0]: 0}
    assert selector.next_batch(lambda uid: values.get(uid, 0)) == []
    assert selector.generated == 0
    assert not selector.exhausted  # nothing handed out, rows remain


def test_selector_budget_grows_geometrically_and_terminates_at_full_set():
    many = [
        _invariant([(f"#m.q{i}", 1)], -1)  # wants q_i == 1; model gives 0
        for i in range(7)
    ]
    selector = InvariantSelector(
        encode_invariant_rows(rank_invariants(many)), rank_budget=1, rank_growth=2
    )
    sizes = []
    while not selector.exhausted:
        batch = selector.next_batch(lambda uid: 0)
        if not batch:
            break
        sizes.append(len(batch))
    assert sizes == [1, 2, 4]  # 1, then 2, then the remaining 4
    assert selector.exhausted
    assert selector.generated == 7
    assert sum(selector.rank_histogram.values()) == 7


def test_selector_counters_delta():
    rows, _ = _rows_for_selector()
    selector = InvariantSelector(rows, rank_budget=8)
    before = selector.counters()
    selector.next_batch(lambda uid: 5)  # everything violated
    delta = InvariantSelector.counters_delta(selector.counters(), before)
    assert delta["invariants_generated"] == 3
    assert delta["escalations"] == 1
    assert sum(delta["rank_histogram"].values()) == 3


def test_selector_validates_schedule_knobs():
    with pytest.raises(ValueError):
        InvariantSelector((), rank_budget=0)
    with pytest.raises(ValueError):
        InvariantSelector((), rank_growth=0)
    assert InvariantSelector(()).rank_budget == DEFAULT_RANK_BUDGET


# ---------------------------------------------------------------------------
# Session-level escalation: verdicts identical, strictly fewer rows
# ---------------------------------------------------------------------------


def test_partial_sweep_matches_eager_with_fewer_rows():
    eager = sweep_queue_sizes(_build, range(1, 4), jobs=1)
    partial = sweep_queue_sizes(_build, range(1, 4), jobs=1, invariants="partial")
    assert partial.probes == eager.probes
    assert partial.minimal_size == eager.minimal_size
    assert partial.invariants_mode == "partial"
    assert partial.invariants_used
    # running_example needs 1 of its rows; eager always pays the full set.
    assert 0 < partial.invariants_generated < eager.invariants_generated
    assert sum(partial.rank_histogram.values()) == partial.invariants_generated


def test_conjoin_invariants_is_idempotent_per_row():
    spec = SessionSpec(_build(1))
    session = VerificationSession(spec=spec)
    ranked = spec.ranked_invariants()
    assert session.conjoin_invariants(ranked[:1]) == 1
    assert session.conjoin_invariants(ranked[:1]) == 0
    # add_invariants tops up without re-asserting the conjoined row.
    session.add_invariants()
    assert len(session.invariants) == len(ranked)


# ---------------------------------------------------------------------------
# Differential: partial ≡ lazy ≡ eager over random small grids
# ---------------------------------------------------------------------------

size_sets = st.frozensets(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=3
)


@given(
    sizes=size_sets,
    jobs=st.sampled_from([1, 2]),
    rank_budget=st.sampled_from([1, 2, None]),
)
@settings(max_examples=12, deadline=None)
def test_partial_equals_lazy_equals_eager(sizes, jobs, rank_budget):
    probe = sorted(sizes)
    eager = sweep_queue_sizes(_build, probe, jobs=1)
    lazy = sweep_queue_sizes(
        _build, probe, jobs=jobs, backend="thread", invariants="lazy"
    )
    partial = sweep_queue_sizes(
        _build,
        probe,
        jobs=jobs,
        backend="thread",
        invariants="partial",
        rank_budget=rank_budget,
    )
    assert lazy.probes == eager.probes
    assert partial.probes == eager.probes
    assert partial.minimal_size == lazy.minimal_size == eager.minimal_size
    # Partial never encodes more rows than an escalated lazy run.
    if lazy.invariants_used:
        assert partial.invariants_generated <= lazy.invariants_generated


# ---------------------------------------------------------------------------
# Shard-level aggregation (SizingResult.merge)
# ---------------------------------------------------------------------------


def test_merge_aggregates_escalation_accounting_across_shards():
    shard_a = SizingResult(
        minimal_size=None,
        probes={1: False},
        invariants_mode="partial",
        invariants_used=True,
        lazy_escalations=2,
        invariants_generated=5,
        rank_histogram={0: 4, 1: 1},
    )
    shard_b = SizingResult(
        minimal_size=3,
        probes={3: True},
        invariants_mode="partial",
        invariants_used=False,
        lazy_escalations=1,
        invariants_generated=2,
        rank_histogram={0: 2},
    )
    merged = SizingResult.merge([shard_a, shard_b])
    assert merged.minimal_size == 3
    assert merged.invariants_used  # any shard used them
    assert merged.lazy_escalations == 3
    assert merged.invariants_generated == 7
    assert merged.rank_histogram == {0: 6, 1: 1}


def test_sharded_partial_sweep_accounts_per_worker_rows():
    # Two thread-backend shards, both hitting deadlocked sizes: every
    # worker escalates locally, and the merged record sums their rows.
    sequential = sweep_queue_sizes(
        _build, range(1, 4), jobs=1, invariants="partial"
    )
    sharded = sweep_queue_sizes(
        _build, range(1, 4), jobs=2, backend="thread", invariants="partial"
    )
    assert sharded.probes == sequential.probes
    assert sharded.invariants_used
    assert sharded.invariants_generated >= sequential.invariants_generated
    assert sharded.lazy_escalations >= sequential.lazy_escalations
    # Per-probe deltas surface on the results for experiment aggregation.
    selections = [
        result.stats.get("invariant_selection")
        for result in sharded.results.values()
    ]
    assert all(sel is not None for sel in selections)
    assert sum(sel["invariants_generated"] for sel in selections) == (
        sharded.invariants_generated
    )


# ---------------------------------------------------------------------------
# Worker-side escalation (pool snapshot carries the ranked rows)
# ---------------------------------------------------------------------------


def test_forced_pool_escalation_matches_sequential_verdicts():
    network = _build(1)
    with ParallelVerificationSession(
        network,
        jobs=2,
        backend="thread",
        force_pool=True,
        partial_invariants=True,
    ) as session:
        shards = [
            [{"q0": 1, "q1": 1}, {"q0": 3, "q1": 3}],
            [{"q0": 2, "q1": 2}],
        ]
        sharded = session.probe_shards(shards, escalation=(None, None))
    flat = {1: sharded[0][0], 3: sharded[0][1], 2: sharded[1][0]}
    eager = sweep_queue_sizes(_build, range(1, 4), jobs=1)
    for size, result in flat.items():
        assert result.deadlock_free == eager.probes[size], size
        assert "invariant_selection" in result.stats


def test_escalation_requires_partial_snapshot():
    with ParallelVerificationSession(
        _build(1), jobs=2, backend="thread", force_pool=True
    ) as session:
        with pytest.raises(RuntimeError, match="partial_invariants"):
            session.probe_shards([[{"q0": 1, "q1": 1}]], escalation=(None, None))


def test_snapshot_ships_pending_rows_only_when_asked():
    spec = SessionSpec(_build(2))
    bare = spec.snapshot()
    assert bare.pending_invariant_rows == ()
    pending = spec.snapshot(include_pending_invariants=True)
    assert len(pending.pending_invariant_rows) == len(spec.ranked_invariants())
    # A session that already conjoined a row ships one fewer pending row.
    session = VerificationSession(spec=spec)
    session.conjoin_invariants(spec.ranked_invariants()[:1])
    live = session.snapshot(include_pending_invariants=True)
    assert len(live.pending_invariant_rows) == (
        len(spec.ranked_invariants()) - 1
    )
    # Plain data end to end: every coefficient is ints + bool.
    for entries, const_num, const_den in pending.pending_invariant_rows:
        assert isinstance(const_num, int) and isinstance(const_den, int)
        for uid, num, den, is_channel in entries:
            assert isinstance(uid, int)
            assert isinstance(num, int) and isinstance(den, int)
            assert isinstance(is_channel, bool)


def test_encode_rows_round_trips_fraction_coefficients():
    inv = Invariant({intvar("#frac.q"): Fraction(3, 2)}, Fraction(-1, 2))
    ((entries, const_num, const_den),) = encode_invariant_rows([inv])
    assert entries[0][1:] == (3, 2, True)
    assert (const_num, const_den) == (-1, 2)
