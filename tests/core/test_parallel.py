"""ParallelVerificationSession must be observationally equal to the
sequential VerificationSession.

The parallel session re-routes every query through serialized session
snapshots and worker rehydration, so these tests are really end-to-end
checks of the whole chain: spec build → snapshot → worker restore →
guard-name query → payload merge.  Thread-backend pools keep the
hypothesis differentials fast (same code path, no fork cost); a couple of
directed tests cross real process boundaries.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ParallelVerificationSession,
    SessionSpec,
    VerificationSession,
    default_jobs,
    nested_jobs,
    sweep_queue_sizes,
)
from repro.core.engine import ANY_CASE_LABEL
from repro.core.parallel import WorkerSession
from repro.core.sizing import SizingResult
from repro.netlib import running_example


def _network(queue_size=2):
    return running_example(queue_size=queue_size).network


# ---------------------------------------------------------------------------
# Directed equivalence
# ---------------------------------------------------------------------------


def test_verify_all_cases_matches_sequential_across_job_counts():
    spec = SessionSpec(_network(), parametric_queues=True)
    sequential = VerificationSession(spec=spec)
    expected = sequential.verify_all_cases()
    for jobs in (1, 2, 4):
        with ParallelVerificationSession(
            spec=spec, jobs=jobs, backend="thread"
        ) as pool:
            got = pool.verify_all_cases()
            assert [r.verdict for r in got] == [r.verdict for r in expected]
            # Witnesses are rebuilt parent-side from worker value slices;
            # shape (not model identity) must match the sequential path.
            for seq_r, par_r in zip(expected, got):
                assert (seq_r.witness is None) == (par_r.witness is None)
                if par_r.witness is not None:
                    assert set(par_r.witness.queue_contents) == set(
                        seq_r.witness.queue_contents
                    )


def test_process_backend_matches_thread_backend():
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="process"
    ) as pool:
        process_results = pool.verify_all_cases()
        pool.resize_queues(3)
        process_resized = pool.verify()
    sequential = VerificationSession(spec=spec)
    assert [r.verdict for r in process_results] == [
        r.verdict for r in sequential.verify_all_cases()
    ]
    sequential.resize_queues(3)
    assert process_resized.verdict == sequential.verify().verdict


def test_single_query_api_parity():
    spec = SessionSpec(_network(), parametric_queues=True)
    sequential = VerificationSession(spec=spec)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread"
    ) as pool:
        assert pool.verify().verdict == sequential.verify().verdict
        assert (
            pool.verify_channel("q0", "req").verdict
            == sequential.verify_channel("q0", "req").verdict
        )
        for case in spec.encoding.cases:
            assert (
                pool.verify_case(case).verdict
                == sequential.verify_case(case).verdict
            ), case.label


def test_enumeration_delegates_and_stays_consistent():
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread"
    ) as pool:
        witnesses = list(pool.enumerate_witnesses(limit=8))
    expected = list(
        VerificationSession(spec=spec).enumerate_witnesses(limit=8)
    )
    assert len(witnesses) == len(expected) >= 2


def test_add_invariants_restarts_workers_with_strengthened_encoding():
    with ParallelVerificationSession(
        _network(), jobs=2, backend="thread"
    ) as pool:
        assert not pool.verify().deadlock_free  # block/idle only: candidate
        pool.add_invariants()
        result = pool.verify()
        assert result.deadlock_free  # workers rehydrated with invariants
        assert result.stats["invariant_count"] == len(pool.invariants) > 0


# ---------------------------------------------------------------------------
# Unsat-core surfacing (satellite)
# ---------------------------------------------------------------------------


def test_unsat_core_names_responsible_guards_sequential_and_parallel():
    spec = SessionSpec(_network(), parametric_queues=True)
    sequential = VerificationSession(spec=spec)
    sequential.add_invariants()
    result = sequential.verify()
    assert result.deadlock_free
    assert result.unsat_core  # non-empty: the assumptions were involved
    assert ANY_CASE_LABEL in result.unsat_core
    assert result.stats["formula_unsat"] is False
    valid_labels = (
        {ANY_CASE_LABEL}
        | {case.label for case in spec.encoding.cases}
        | {f"cap[{q}=={s}]" for q in sequential.queue_sizes for s in range(10)}
    )
    assert set(result.unsat_core) <= valid_labels

    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread"
    ) as pool:
        par = pool.verify()
    assert par.deadlock_free
    assert ANY_CASE_LABEL in par.unsat_core
    assert set(par.unsat_core) <= valid_labels

    # Per-case query: the responsible case is named.
    case = spec.encoding.cases[0]
    case_result = sequential.verify_case(case)
    assert case_result.deadlock_free
    assert case.label in case_result.unsat_core


def test_sat_results_carry_no_core():
    result = VerificationSession(_network()).verify()
    assert not result.deadlock_free
    assert result.unsat_core is None


# ---------------------------------------------------------------------------
# Session snapshot round-trip (satellite): snapshot → rehydrate →
# identical verdict, across sizes
# ---------------------------------------------------------------------------

sizes_lists = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=3
)


@given(sizes=sizes_lists, with_invariants=st.booleans())
@settings(max_examples=15, deadline=None)
def test_session_snapshot_rehydration_matches_session(sizes, with_invariants):
    spec = SessionSpec(_network(), parametric_queues=True)
    session = VerificationSession(spec=spec)
    if with_invariants:
        session.add_invariants()
    worker = WorkerSession(spec.snapshot())
    # A bare snapshot answers the as-built configuration with no parent
    # involvement (target None = master guard, default sizes).
    as_built = worker.check(None, want_witness=False)
    assert (as_built[0] == "unsat") == session.verify().deadlock_free
    for size in sizes:
        session.resize_queues(size)
        expected = session.verify()
        payload = worker.check(
            None,
            tuple(sorted(session.queue_sizes.items())),
            want_witness=False,
        )
        assert (payload[0] == "unsat") == expected.deadlock_free
        if payload[0] == "unsat":
            # Worker cores name the same guard vocabulary.
            labels = {
                spec.encoding.any_guard.name,
                *(case.guard.name for case in spec.encoding.cases),
                *(f"cap[{q}=={s}]" for q in session.queue_sizes for s in range(6)),
            }
            assert set(payload[1]) <= labels


# ---------------------------------------------------------------------------
# Randomized differential: any op order, any job count
# ---------------------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.just(("verify",)),
        st.just(("invariants",)),
        st.just(("all_cases",)),
        st.tuples(st.just("resize"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("case"), st.integers(min_value=0, max_value=100)),
    ),
    min_size=1,
    max_size=5,
)


@given(ops=operations, jobs=st.sampled_from([1, 2, 4]))
@settings(max_examples=20, deadline=None)
def test_parallel_equals_sequential_across_op_orders(ops, jobs):
    spec = SessionSpec(_network(), parametric_queues=True)
    sequential = VerificationSession(spec=spec)
    with ParallelVerificationSession(
        spec=spec, jobs=jobs, backend="thread"
    ) as pool:
        for op in ops:
            if op[0] == "invariants":
                sequential.add_invariants()
                pool.add_invariants()
            elif op[0] == "resize":
                sequential.resize_queues(op[1])
                pool.resize_queues(op[1])
                assert pool.queue_sizes == sequential.queue_sizes
            elif op[0] == "verify":
                seq_r, par_r = sequential.verify(), pool.verify()
                assert par_r.verdict == seq_r.verdict
                assert (par_r.witness is None) == (seq_r.witness is None)
            elif op[0] == "case":
                case = spec.encoding.cases[op[1] % len(spec.encoding.cases)]
                assert (
                    pool.verify_case(case).verdict
                    == sequential.verify_case(case).verdict
                )
            elif op[0] == "all_cases":
                seq_all = sequential.verify_all_cases()
                par_all = pool.verify_all_cases()
                assert [r.verdict for r in par_all] == [
                    r.verdict for r in seq_all
                ]


# ---------------------------------------------------------------------------
# Sharded sweeps
# ---------------------------------------------------------------------------


def test_sharded_sweep_matches_sequential_sweep():
    def build(size):
        return running_example(queue_size=size).network

    sequential = sweep_queue_sizes(build, range(1, 5), jobs=1)
    for jobs in (2, 3):
        sharded = sweep_queue_sizes(
            build, range(1, 5), jobs=jobs, backend="thread"
        )
        assert sharded.probes == sequential.probes
        assert sharded.minimal_size == sequential.minimal_size
        assert set(sharded.results) == set(sequential.results)


def test_sweep_without_invariants_differs_and_still_merges():
    def build(size):
        return running_example(queue_size=size).network

    plain = sweep_queue_sizes(
        build, range(1, 4), jobs=2, backend="thread", use_invariants=False
    )
    # Block/idle alone reports candidates everywhere on this example.
    assert plain.minimal_size is None
    assert set(plain.probes) == {1, 2, 3}
    assert "no deadlock-free queue size" in plain.pretty()


def test_jobs_retargeting_sticks_without_pool_thrash():
    with ParallelVerificationSession(
        _network(), jobs=4, backend="thread"
    ) as pool:
        pool.verify_all_cases(jobs=2)
        assert pool.jobs == 2
        executor = pool._executor
        pool.verify()  # default-jobs query must reuse the re-targeted pool
        assert pool._executor is executor


def test_worker_fork_answers_like_the_template():
    spec = SessionSpec(_network(), parametric_queues=True)
    template = WorkerSession(spec.snapshot())
    forked = template.fork()
    for target in (None, 0, len(spec.encoding.cases) - 1):
        for size in (1, 2, 3):
            sizes = tuple(sorted({q: size for q in spec.initial_sizes}.items()))
            assert (
                forked.check(target, sizes, want_witness=False)[0]
                == template.check(target, sizes, want_witness=False)[0]
            )


def test_sweep_want_witness_is_consistent_across_job_counts():
    def build(size):
        return running_example(queue_size=size).network

    for jobs in (1, 2):
        swept = sweep_queue_sizes(
            build, range(1, 3), jobs=jobs, backend="thread",
            use_invariants=False, want_witness=False,
        )
        assert all(r.witness is None for r in swept.results.values()), jobs


# ---------------------------------------------------------------------------
# Jobs budgeting: ADVOCAT_JOBS precedence and the nested-jobs split
# ---------------------------------------------------------------------------


def test_default_jobs_env_override_beats_cpu_count(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.delenv("ADVOCAT_JOBS")
    assert default_jobs() == max(1, os.cpu_count() or 1)


def test_default_jobs_rejects_invalid_env(monkeypatch):
    for bad in ("0", "-2", "banana"):
        monkeypatch.setenv("ADVOCAT_JOBS", bad)
        with pytest.raises(ValueError):
            default_jobs()
    monkeypatch.setenv("ADVOCAT_JOBS", "")  # empty: treated as unset
    assert default_jobs() == max(1, os.cpu_count() or 1)


def test_explicit_jobs_argument_beats_env(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "1")
    # The env cap shapes defaults only: it must not demote an explicit
    # jobs=2 request to the inline fallback at dispatch time (simulate a
    # multi-core machine so the physical-CPU fallback stays out of play).
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    with ParallelVerificationSession(
        _network(), jobs=2, backend="thread"
    ) as pool:
        assert pool.jobs == 2
        pool.verify()
        assert pool._executor is not None  # real pool, not inline fallback


def test_env_supplies_the_default_job_count(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "2")
    with ParallelVerificationSession(_network(), backend="thread") as pool:
        assert pool.jobs == 2


def test_nested_jobs_splits_the_budget():
    assert nested_jobs(2, budget=8) == 4
    assert nested_jobs(3, budget=8) == 2
    assert nested_jobs(8, budget=4) == 1  # never below 1
    with pytest.raises(ValueError):
        nested_jobs(0)


def test_nested_jobs_defaults_to_env_budget(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "6")
    assert nested_jobs(2) == 3


def test_sizing_merge_rejects_conflicting_verdicts():
    free = SizingResult(minimal_size=2, probes={2: True})
    stuck = SizingResult(minimal_size=None, probes={2: False})
    try:
        SizingResult.merge([free, stuck])
    except ValueError:
        pass
    else:
        raise AssertionError("merge must reject conflicting probe verdicts")
