"""PortfolioSession must be observationally equal to a sequential eager
session — whichever strategy wins the race.

The portfolio races diverse strategy configurations from one shared cold
snapshot, exchanging glue-capped learned clauses between slices.  The
contracts under test: verdict byte-identity with racing/sharing on or
off, exports filtered to the shared base numbering (and imports across
diverged numberings rejected loudly), the jobs-budget routing that keeps
portfolio(N) × scenario workers inside the machine budget, and warm
reuse across resizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PortfolioSession,
    SessionSpec,
    StrategyConfig,
    VerificationSession,
    default_strategies,
    nested_jobs,
    racer_budget,
)
from repro.core.parallel import WorkerSession
from repro.core.portfolio import Racer
from repro.netlib import running_example


def _network(queue_size=2):
    return running_example(queue_size=queue_size).network


def _eager_reference(queue_size=2):
    session = VerificationSession(_network(queue_size))
    session.add_invariants()
    return session.verify()


# ---------------------------------------------------------------------------
# Satellite: jobs-budget accounting
# ---------------------------------------------------------------------------


def test_racer_budget_env_and_precedence(monkeypatch):
    monkeypatch.setenv("ADVOCAT_JOBS", "2")
    assert racer_budget(6) == 2  # env caps the default
    assert racer_budget(6, jobs=4) == 4  # explicit jobs beats the env
    assert racer_budget(1, jobs=8) == 1  # never more racers than strategies
    with pytest.raises(ValueError):
        racer_budget(0)
    with pytest.raises(ValueError):
        racer_budget(3, jobs=0)


def test_portfolio_nested_under_scenario_workers_stays_in_budget(monkeypatch):
    # The oversubscription guard: N scenario workers × their nested-jobs
    # share, each spent on racers, must not exceed the machine budget.
    monkeypatch.setenv("ADVOCAT_JOBS", "4")
    outer = 2
    inner = nested_jobs(outer)
    racers = racer_budget(len(default_strategies()), inner)
    assert outer * racers <= 4
    assert racers == 2


def test_budget_of_one_trims_the_roster_and_goes_inline():
    with PortfolioSession(network=_network(), jobs=1) as session:
        assert session.backend == "inline"
        assert len(session.strategies) == 1
        assert session.strategies[0].name == "eager"


def test_force_race_keeps_the_whole_roster():
    with PortfolioSession(
        network=_network(), jobs=1, force_race=True
    ) as session:
        assert len(session.strategies) == len(default_strategies())
        assert session.backend == "inline"  # budget 1 still serialises


# ---------------------------------------------------------------------------
# Roster and validation
# ---------------------------------------------------------------------------


def test_strategy_config_rejects_the_none_mode():
    with pytest.raises(ValueError, match="excluded by design"):
        StrategyConfig("no-invariants", "none")


def test_portfolio_rejects_strengthened_specs():
    spec = SessionSpec(_network())
    spec.generate_invariants()  # conjoin the rows into the shared image
    with pytest.raises(ValueError, match="without conjoined"):
        PortfolioSession(spec=spec)


def test_lead_reorders_and_unknown_lead_is_ignored():
    roster = default_strategies(lead="lazy")
    assert roster[0].name == "lazy"
    assert {s.name for s in roster} == {
        s.name for s in default_strategies()
    }
    assert default_strategies(lead="no-such") == default_strategies()
    with PortfolioSession(
        network=_network(), jobs=2, lead="partial"
    ) as session:
        assert session.strategies[0].name == "partial"


def test_duplicate_strategy_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        PortfolioSession(
            network=_network(),
            strategies=[
                StrategyConfig("same", "eager"),
                StrategyConfig("same", "lazy"),
            ],
        )


# ---------------------------------------------------------------------------
# Verdict identity: racing must not change answers
# ---------------------------------------------------------------------------


def test_inline_portfolio_matches_sequential_eager_across_resizes():
    expected = {size: _eager_reference(size) for size in (2, 3)}
    with PortfolioSession(
        network=_network(),
        backend="inline",
        jobs=4,
        slice_conflicts=20,  # force multi-round races with exchanges
    ) as session:
        for size in (2, 3):
            session.resize_queues(size)
            got = session.race()
            assert got.verdict == expected[size].verdict, size
            assert (got.witness is None) == (expected[size].witness is None)
            if got.witness is not None:
                assert set(got.witness.queue_contents) == set(
                    expected[size].witness.queue_contents
                )
            portfolio = got.stats["portfolio"]
            assert portfolio["winner"] in session.strategy_wins
            assert portfolio["backend"] == "inline"
        assert session.races == 2
        assert sum(session.strategy_wins.values()) == 2


def test_process_backend_matches_inline_and_cancels_losers():
    with PortfolioSession(
        network=_network(),
        backend="process",
        jobs=3,
        slice_conflicts=30,
    ) as session:
        first = session.race()
        second = session.race()  # children stay warm across races
        racers = first.stats["portfolio"]["racers"]
    reference = _eager_reference(2)
    assert first.verdict == reference.verdict
    assert second.verdict == reference.verdict
    # Every loser was cancelled cooperatively or simply never re-sliced;
    # cancellation is observable as the cancelled counter on some racer
    # whenever a slice was aborted mid-flight.
    assert len(racers) == 3
    assert all("strategy" in summary for summary in racers)


@given(
    queue_size=st.integers(min_value=1, max_value=3),
    slice_conflicts=st.sampled_from([10, 50, 3000]),
    share=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_sharing_on_off_verdict_identity(queue_size, slice_conflicts, share):
    # Satellite: clause exchange must never flip a verdict — racing with
    # sharing enabled, disabled, or any slice schedule is byte-identical
    # to the sequential eager answer.
    reference = _eager_reference(queue_size)
    with PortfolioSession(
        network=_network(queue_size),
        backend="inline",
        jobs=4,
        slice_conflicts=slice_conflicts,
        share_clauses=share,
    ) as session:
        got = session.race()
    assert got.verdict == reference.verdict
    assert (got.witness is None) == (reference.witness is None)


# ---------------------------------------------------------------------------
# Clause exchange: base-numbering filter and diverged-import rejection
# ---------------------------------------------------------------------------


def _base_snapshot():
    return SessionSpec(_network()).snapshot(include_pending_invariants=True)


def test_exports_are_filtered_to_the_base_numbering():
    snapshot = _base_snapshot()
    racer = Racer(snapshot, StrategyConfig("eager", "eager"))
    # Eager mode minted invariant-row atoms above the base image; burn a
    # few slices so there is learnt state worth exporting.
    for _ in range(5):
        final, _ = racer.slice(None, None, False, 10)
        if final:
            break
    exports = racer.export_clauses(cap=10_000, max_lbd=10_000)
    assert all(
        abs(lit) <= racer.base_n_vars
        for _, lits in exports
        for lit in lits
    )
    # Re-export returns nothing new (the dedup side of the contract).
    assert racer.export_clauses(cap=10_000, max_lbd=10_000) == ()


def test_import_rejects_clauses_over_a_diverged_numbering():
    # Satellite: a restored peer must refuse clauses referencing variables
    # it never minted — silent acceptance would be unsound.
    peer = WorkerSession(_base_snapshot())
    peer.solver.check(conflict_limit=0)  # settle the CNF image (sync)
    beyond = peer.solver._sat.n_vars + 7
    with pytest.raises(ValueError, match="never minted"):
        peer.solver.import_learned([(2, (beyond, -1))])


def test_imported_clauses_round_trip_between_restored_peers():
    snapshot = _base_snapshot()
    exporter = Racer(snapshot, StrategyConfig("eager", "eager"))
    importer = Racer(snapshot, StrategyConfig("lazy", "lazy"))
    for _ in range(5):
        final, _ = exporter.slice(None, None, False, 10)
        if final:
            break
    exports = exporter.export_clauses(cap=64, max_lbd=4)
    before = importer.worker.solver._sat.stats["imported_rounds"]
    importer.import_clauses(exports)
    if exports:
        assert (
            importer.worker.solver._sat.stats["imported_rounds"] == before + 1
        )
        # Imported clauses never ping-pong back out of the importer.
        keys = {frozenset(lits) for _, lits in exports}
        echoed = {
            frozenset(lits)
            for _, lits in importer.export_clauses(cap=10_000, max_lbd=10_000)
        }
        assert not (keys & echoed)
